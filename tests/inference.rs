//! Bit-exactness of the tape-free inference engine.
//!
//! Evaluation runs through reusable [`refil::nn::InferenceSession`]s that
//! record no backward closures and recycle forward buffers across batches.
//! The contract is that this is purely an execution detail: for every
//! strategy, predictions and end-to-end accuracies under the tape-free path
//! must be *byte-identical* to the taped path (`force_taped`), and the
//! parallel evaluation sweep inside `FdilRunner` must match the serial one
//! at any thread count.

use std::sync::Mutex;

use refil::continual::{
    FedDualPrompt, FedEwc, FedL2p, FedLwf, FedProx, Finetune, MethodConfig, RehearsalOracle,
};
use refil::core::{RefFiL, RefFiLConfig};
use refil::data::{DatasetSpec, DomainSpec, FdilDataset};
use refil::fed::{
    evaluate_domain, FdilRunner, FdilStrategy, IncrementConfig, RunConfig, RunResult,
};
use refil::nn::models::{BackboneConfig, ExtractorKind};
use refil::nn::{force_taped, Tensor};

/// `force_taped` is process-global; tests that flip it hold this lock so a
/// concurrently running test never observes a half-toggled state.
static TAPED_FLAG: Mutex<()> = Mutex::new(());

fn dataset() -> FdilDataset {
    DatasetSpec {
        name: "infer".into(),
        classes: 3,
        feature_dim: 8,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 120, 0.15, 0.05),
            DomainSpec::new("d1", 120, 0.3, 0.4),
        ],
    }
    .generate(17)
}

fn method() -> MethodConfig {
    MethodConfig {
        backbone: BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    }
}

fn run_cfg(seed: u64) -> RunConfig {
    RunConfig {
        increment: IncrementConfig {
            initial_clients: 4,
            select_per_round: 3,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 2,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 32,
        dropout_prob: 0.0,
        seed,
        threads: 0,
        net: Default::default(),
        wire: Default::default(),
    }
}

/// Everything evaluation produces: raw predictions for every (domain, batch)
/// plus the per-domain accuracies computed through `evaluate_domain`.
#[derive(Debug, PartialEq)]
struct EvalSnapshot {
    preds: Vec<Vec<usize>>,
    accs: Vec<f32>,
}

fn snapshot(
    strategy: &dyn FdilStrategy,
    global: &[f32],
    ds: &FdilDataset,
    batch: usize,
) -> EvalSnapshot {
    let ctx = strategy.eval_ctx(global);
    let mut evaluator = ctx.evaluator();
    let mut preds = Vec::new();
    for d in 0..ds.num_domains() {
        for chunk in ds.domains[d].test.chunks(batch) {
            let dim = chunk[0].features.len();
            let mut data = Vec::with_capacity(chunk.len() * dim);
            for s in chunk {
                data.extend_from_slice(&s.features);
            }
            let x = Tensor::from_vec(data, &[chunk.len(), dim]);
            preds.push(evaluator.predict_domain(&x, d));
        }
    }
    let accs = (0..ds.num_domains())
        .map(|d| evaluate_domain(strategy, global, ds, d, batch))
        .collect();
    EvalSnapshot { preds, accs }
}

/// Trains one tiny run per seed, then evaluates the final global model twice
/// — taped and tape-free — and asserts both paths agree exactly.
fn assert_taped_matches_tape_free<F>(name: &str, mk: F)
where
    F: Fn() -> Box<dyn FdilStrategy>,
{
    let ds = dataset();
    for seed in [13u64, 29] {
        let cfg = run_cfg(seed);
        let mut strat = mk();
        let res: RunResult = FdilRunner::new(cfg).run(&ds, strat.as_mut());

        let _guard = TAPED_FLAG.lock().expect("taped-flag lock poisoned");
        force_taped(true);
        let taped = snapshot(strat.as_ref(), &res.final_global, &ds, cfg.eval_batch);
        force_taped(false);
        let free = snapshot(strat.as_ref(), &res.final_global, &ds, cfg.eval_batch);

        assert_eq!(
            taped.preds, free.preds,
            "{name} seed {seed}: predictions diverged between taped and tape-free"
        );
        assert_eq!(
            taped.accs, free.accs,
            "{name} seed {seed}: accuracies diverged between taped and tape-free"
        );
    }
}

#[test]
fn finetune_taped_matches_tape_free() {
    assert_taped_matches_tape_free("Finetune", || Box::new(Finetune::new(method())));
}

#[test]
fn fedprox_taped_matches_tape_free() {
    assert_taped_matches_tape_free("FedProx", || Box::new(FedProx::new(method(), 0.1)));
}

#[test]
fn lwf_taped_matches_tape_free() {
    assert_taped_matches_tape_free("FedLwF", || Box::new(FedLwf::new(method())));
}

#[test]
fn ewc_taped_matches_tape_free() {
    assert_taped_matches_tape_free("FedEWC", || Box::new(FedEwc::new(method())));
}

#[test]
fn rehearsal_taped_matches_tape_free() {
    assert_taped_matches_tape_free("Rehearsal", || Box::new(RehearsalOracle::new(method(), 8)));
}

#[test]
fn l2p_taped_matches_tape_free() {
    // The pooled (†) variant exercises query building + top-N selection on
    // the inference graph.
    assert_taped_matches_tape_free("FedL2P+pool", || Box::new(FedL2p::new(method(), true)));
}

#[test]
fn dualprompt_taped_matches_tape_free() {
    assert_taped_matches_tape_free("FedDualPrompt+pool", || {
        Box::new(FedDualPrompt::new(method(), true))
    });
}

#[test]
fn reffil_taped_matches_tape_free() {
    assert_taped_matches_tape_free("RefFiL", || {
        Box::new(RefFiL::new(RefFiLConfig::new(method())))
    });
}

#[test]
fn reffil_task_free_inference_taped_matches_tape_free() {
    // The confidence-max sweep runs one forward per task key through the
    // same reused session; both paths must pick identical predictions.
    let ds = dataset();
    let cfg = run_cfg(13);
    let mut strat = RefFiL::new(RefFiLConfig::new(method()));
    let res = FdilRunner::new(cfg).run(&ds, &mut strat);
    let test = &ds.domains[1].test;
    let dim = test[0].features.len();
    let mut data = Vec::with_capacity(test.len() * dim);
    for s in test {
        data.extend_from_slice(&s.features);
    }
    let x = Tensor::from_vec(data, &[test.len(), dim]);

    let _guard = TAPED_FLAG.lock().expect("taped-flag lock poisoned");
    force_taped(true);
    let taped = strat.predict_task_free(&res.final_global, &x);
    force_taped(false);
    let free = strat.predict_task_free(&res.final_global, &x);
    assert_eq!(taped, free, "task-free predictions diverged");
}

#[test]
fn parallel_eval_matches_serial_at_any_thread_count() {
    let ds = dataset();
    let cfg = run_cfg(13);
    let mut strat = RefFiL::new(RefFiLConfig::new(method()));
    let res = FdilRunner::new(cfg).run(&ds, &mut strat);
    let last = ds.num_domains() - 1;
    let serial =
        FdilRunner::new(cfg)
            .threads(1)
            .evaluate_task(&strat, &res.final_global, &ds, last);
    for threads in [2usize, 4] {
        let par = FdilRunner::new(cfg).threads(threads).evaluate_task(
            &strat,
            &res.final_global,
            &ds,
            last,
        );
        assert_eq!(serial, par, "eval diverged at threads={threads}");
    }
    // The sweep also reproduces the row the run itself recorded.
    assert_eq!(
        &serial,
        res.domain_acc.last().expect("at least one task"),
        "evaluate_task disagrees with the run's recorded accuracies"
    );
}
