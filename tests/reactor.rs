//! Reactor thread-shape regression tests.
//!
//! The served federation path is a single-threaded reactor: one poll loop
//! accepts peers, drives handshakes, distributes rounds, and collects
//! results without spawning a thread per connection. This file pins the two
//! properties that make that claim checkable from the outside:
//!
//! 1. **No stale threads.** A served run leaves the process thread count
//!    exactly where it found it — there are no per-peer collector threads
//!    to leak in the first place.
//! 2. **Flat peak.** The peak thread count during a run is independent of
//!    the peer count: serving 256 clients uses exactly as many threads as
//!    serving 4.
//!
//! Both runs fold into one `#[test]` so the harness contributes a constant
//! number of its own threads to every measurement.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use refil::continual::{Finetune, MethodConfig};
use refil::data::{DatasetSpec, DomainSpec, FdilDataset};
use refil::fed::{
    client_handshake, connect, process_thread_count, run_clients_pumped, ClientOptions,
    ClientReport, Endpoint, FdilRunner, FdilStrategy, IncrementConfig, Link, NetListener,
    RunConfig, RunResult, Telemetry,
};
use refil::nn::models::{BackboneConfig, ExtractorKind};

fn dataset() -> FdilDataset {
    DatasetSpec {
        name: "reactor".into(),
        classes: 3,
        feature_dim: 6,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 60, 0.15, 0.05),
            DomainSpec::new("d1", 60, 0.3, 0.4),
        ],
    }
    .generate(7)
}

fn build_strategy() -> Box<dyn FdilStrategy> {
    Box::new(Finetune::new(MethodConfig {
        backbone: BackboneConfig {
            in_dim: 6,
            extractor_width: 8,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    }))
}

fn run_cfg() -> RunConfig {
    RunConfig {
        increment: IncrementConfig {
            initial_clients: 6,
            select_per_round: 4,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 2,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 128,
        dropout_prob: 0.0,
        seed: 41,
        threads: 1,
        net: Default::default(),
        wire: Default::default(),
    }
}

/// Serves one run with `n_clients` in-process clients all pumped from a
/// single thread, sampling the process thread count throughout. Returns the
/// run result, every client report, and the thread counts
/// `(before, peak, after)`.
fn served_thread_shape(n_clients: usize) -> (RunResult, Vec<ClientReport>, (usize, usize, usize)) {
    let before = process_thread_count().expect("/proc/self/task readable");
    let listener = NetListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind");
    let addr = listener.local_endpoint().to_string();

    // Sampler thread: tracks the peak thread count while the run is live.
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicUsize::new(0));
    let sampler = {
        let (stop, peak) = (Arc::clone(&stop), Arc::clone(&peak));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(n) = process_thread_count() {
                    peak.fetch_max(n, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    // Pump thread: connects and handshakes every client, then drives all of
    // their replica loops from one reactor of its own.
    let pump = std::thread::spawn(move || {
        let ds = dataset();
        let cfg = run_cfg();
        let endpoint = Endpoint::parse(&addr).expect("pump address");
        let deadline = Instant::now() + Duration::from_secs(120);
        let mut links: Vec<Box<dyn Link>> = Vec::with_capacity(n_clients);
        let mut peer_ids = Vec::with_capacity(n_clients);
        for nonce in 0..n_clients {
            let link = connect(&endpoint, deadline).expect("pump connect");
            let (peer_id, _spec, _token, _compression) =
                client_handshake(&link, nonce as u64, None, deadline).expect("pump handshake");
            links.push(Box::new(link));
            peer_ids.push(peer_id);
        }
        let mut strategies: Vec<Box<dyn FdilStrategy>> =
            (0..n_clients).map(|_| build_strategy()).collect();
        run_clients_pumped(
            &links,
            &peer_ids,
            &mut strategies,
            &ds,
            &cfg,
            &ClientOptions::default(),
            &Telemetry::disabled(),
        )
        .into_iter()
        .map(|r| r.expect("client replica"))
        .collect::<Vec<ClientReport>>()
    });

    let ds = dataset();
    let mut cfg = run_cfg();
    cfg.net.min_peers = n_clients;
    let mut strat = build_strategy();
    let result =
        FdilRunner::new(cfg)
            .threads(1)
            .serve(&ds, strat.as_mut(), &listener, "reactor-test");
    let reports = pump.join().expect("pump thread");
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler thread");
    let after = process_thread_count().expect("/proc/self/task readable");
    (
        result,
        reports,
        (before, peak.load(Ordering::Relaxed), after),
    )
}

#[test]
fn reactor_thread_shape_is_flat_and_leak_free() {
    let ds = dataset();
    let mut local_strat = build_strategy();
    let local = FdilRunner::new(run_cfg())
        .threads(1)
        .run(&ds, local_strat.as_mut());

    let (small, small_reports, (small_before, small_peak, small_after)) = served_thread_shape(4);
    let (big, big_reports, (big_before, big_peak, big_after)) = served_thread_shape(256);

    // No stale threads: a served run restores the thread count exactly —
    // the reactor never spawned per-peer collectors to begin with.
    assert_eq!(
        small_after, small_before,
        "4-client run leaked threads ({small_before} before, {small_after} after)"
    );
    assert_eq!(
        big_after, big_before,
        "256-client run leaked threads ({big_before} before, {big_after} after)"
    );

    // Flat peak: both runs add exactly the two threads this test spawned
    // (pump + sampler), regardless of peer count.
    let small_delta = small_peak - small_before;
    let big_delta = big_peak - big_before;
    assert_eq!(
        small_delta, big_delta,
        "peak thread count must be independent of peer count \
         (4 clients: +{small_delta}, 256 clients: +{big_delta})"
    );
    assert_eq!(small_delta, 2, "expected exactly pump + sampler threads");

    // Every client finished COMPLETE, and both served runs match the
    // loopback run byte-for-byte.
    assert_eq!(small_reports.len(), 4);
    assert_eq!(big_reports.len(), 256);
    for report in small_reports.iter().chain(&big_reports) {
        assert_eq!(
            report.reason, 0,
            "client {} did not complete",
            report.peer_id
        );
    }
    for served in [&small, &big] {
        assert_eq!(
            served.final_global, local.final_global,
            "final_global diverged"
        );
        assert_eq!(served.domain_acc, local.domain_acc, "domain_acc diverged");
        assert_eq!(served.traffic, local.traffic, "traffic diverged");
    }
}
