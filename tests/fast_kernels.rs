//! Determinism of full federated runs under `KernelPolicy::Fast`.
//!
//! The fast FMA/SIMD kernels trade bit-equality *with the bit-exact
//! oracle* for speed, but they keep the determinism contract: a fixed
//! shape always takes the same instruction sequence, so a Fast-mode run
//! must be byte-identical run-to-run AND across worker-thread counts.
//! These tests pin that at threads {1, 4} — with core clamping disabled
//! so the 4-thread leg exercises the real worker pool even on small CI
//! hosts — for the full RefFiL method and a baseline.
//!
//! This file is its own test binary because the kernel policy is
//! process-global; flipping it inside another suite would poison the
//! default-policy (bit-exact) pins there.

use std::sync::Mutex;

use refil::continual::{Finetune, MethodConfig};
use refil::core::{RefFiL, RefFiLConfig};
use refil::data::{DatasetSpec, DomainSpec, FdilDataset};
use refil::fed::{FdilRunner, FdilStrategy, IncrementConfig, RunConfig, RunResult};
use refil::nn::models::{BackboneConfig, ExtractorKind};
use refil::nn::{set_kernel_policy, KernelPolicy};

/// Serializes the tests in this binary: each flips the process-global
/// kernel policy for its duration.
static POLICY_LOCK: Mutex<()> = Mutex::new(());

fn with_fast_policy<R>(f: impl FnOnce() -> R) -> R {
    let _lock = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel_policy(KernelPolicy::BitExact);
        }
    }
    let _restore = Restore;
    set_kernel_policy(KernelPolicy::Fast);
    f()
}

fn dataset() -> FdilDataset {
    DatasetSpec {
        name: "fastdet".into(),
        classes: 3,
        feature_dim: 8,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 150, 0.15, 0.05),
            DomainSpec::new("d1", 150, 0.3, 0.4).with_collision(1.0),
        ],
    }
    .generate(11)
}

fn method() -> MethodConfig {
    MethodConfig {
        backbone: BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    }
}

fn run_cfg(seed: u64) -> RunConfig {
    RunConfig {
        increment: IncrementConfig {
            initial_clients: 4,
            select_per_round: 3,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 3,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 128,
        dropout_prob: 0.0,
        seed,
        threads: 0,
        net: Default::default(),
        wire: Default::default(),
    }
}

/// Runs at `threads` with clamping off, so requesting 4 workers spawns 4
/// workers regardless of the host's core count.
fn run_at(threads: usize, ds: &FdilDataset, strat: &mut dyn FdilStrategy) -> RunResult {
    FdilRunner::new(run_cfg(13))
        .threads(threads)
        .clamp_threads(false)
        .run(ds, strat)
}

fn assert_byte_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(
        a.final_global, b.final_global,
        "{what}: final_global diverged"
    );
    assert_eq!(a.domain_acc, b.domain_acc, "{what}: domain_acc diverged");
    assert_eq!(a.traffic, b.traffic, "{what}: traffic stats diverged");
}

#[test]
fn fast_mode_reffil_is_stable_across_runs_and_thread_counts() {
    let ds = dataset();
    with_fast_policy(|| {
        let mut runs = Vec::new();
        for threads in [1usize, 4, 1, 4] {
            let mut strat = RefFiL::new(RefFiLConfig::new(method()));
            runs.push((threads, run_at(threads, &ds, &mut strat)));
        }
        let (_, first_t1) = &runs[0];
        let (_, first_t4) = &runs[1];
        assert_byte_identical(first_t1, &runs[2].1, "Fast RefFiL repeat at threads=1");
        assert_byte_identical(first_t4, &runs[3].1, "Fast RefFiL repeat at threads=4");
        assert_byte_identical(first_t1, first_t4, "Fast RefFiL threads 1 vs 4");
    });
}

#[test]
fn fast_mode_finetune_is_stable_across_runs_and_thread_counts() {
    let ds = dataset();
    with_fast_policy(|| {
        let mut s1a = Finetune::new(method());
        let r1a = run_at(1, &ds, &mut s1a);
        let mut s1b = Finetune::new(method());
        let r1b = run_at(1, &ds, &mut s1b);
        let mut s4a = Finetune::new(method());
        let r4a = run_at(4, &ds, &mut s4a);
        let mut s4b = Finetune::new(method());
        let r4b = run_at(4, &ds, &mut s4b);
        assert_byte_identical(&r1a, &r1b, "Fast finetune repeat at threads=1");
        assert_byte_identical(&r4a, &r4b, "Fast finetune repeat at threads=4");
        assert_byte_identical(&r1a, &r4a, "Fast finetune threads 1 vs 4");
    });
}
