//! Cross-thread determinism of the federated runner.
//!
//! The `FdilRunner` contract is that worker-thread count is an execution
//! detail: all per-round randomness is pre-drawn on the driver thread and
//! session outputs are merged in client-id order, so a parallel run must be
//! *byte-identical* to a sequential one — same final global model, same
//! accuracy matrix, same traffic accounting. These tests pin that contract
//! for the full RefFiL method and a baseline, across seeds and under
//! client dropout.

use refil::continual::{Finetune, MethodConfig};
use refil::core::{RefFiL, RefFiLConfig};
use refil::data::{DatasetSpec, DomainSpec, FdilDataset};
use refil::fed::{
    FdilRunner, FdilStrategy, IncrementConfig, RunConfig, RunResult, WireConfig, WireQuant,
};
use refil::nn::models::{BackboneConfig, ExtractorKind};

fn dataset() -> FdilDataset {
    DatasetSpec {
        name: "det".into(),
        classes: 3,
        feature_dim: 8,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 150, 0.15, 0.05),
            DomainSpec::new("d1", 150, 0.3, 0.4).with_collision(1.0),
        ],
    }
    .generate(11)
}

fn method() -> MethodConfig {
    MethodConfig {
        backbone: BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    }
}

fn run_cfg(seed: u64, dropout: f32) -> RunConfig {
    RunConfig {
        increment: IncrementConfig {
            initial_clients: 4,
            select_per_round: 3,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 3,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 128,
        dropout_prob: dropout,
        seed,
        threads: 0,
        net: Default::default(),
        wire: Default::default(),
    }
}

fn run_at(
    threads: usize,
    cfg: RunConfig,
    ds: &FdilDataset,
    strat: &mut dyn FdilStrategy,
) -> RunResult {
    FdilRunner::new(cfg).threads(threads).run(ds, strat)
}

fn assert_byte_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.final_global, b.final_global, "final_global diverged");
    assert_eq!(a.domain_acc, b.domain_acc, "domain_acc diverged");
    assert_eq!(a.traffic, b.traffic, "traffic stats diverged");
}

#[test]
fn reffil_parallel_matches_sequential_across_seeds() {
    let ds = dataset();
    for seed in [13u64, 29] {
        let cfg = run_cfg(seed, 0.0);
        let mut s1 = RefFiL::new(RefFiLConfig::new(method()));
        let r1 = run_at(1, cfg, &ds, &mut s1);
        let mut s4 = RefFiL::new(RefFiLConfig::new(method()));
        let r4 = run_at(4, cfg, &ds, &mut s4);
        assert_byte_identical(&r1, &r4);
        // The post-round merge path (prompt uploads) must also converge to
        // the same server state.
        assert_eq!(
            s1.prompt_store().total_reps(),
            s4.prompt_store().total_reps(),
            "prompt store diverged at seed {seed}"
        );
    }
}

#[test]
fn finetune_parallel_matches_sequential_across_seeds() {
    let ds = dataset();
    for seed in [13u64, 29] {
        let cfg = run_cfg(seed, 0.0);
        let mut s1 = Finetune::new(method());
        let r1 = run_at(1, cfg, &ds, &mut s1);
        let mut s4 = Finetune::new(method());
        let r4 = run_at(4, cfg, &ds, &mut s4);
        assert_byte_identical(&r1, &r4);
    }
}

#[test]
fn wire_path_matches_direct_path_across_seeds() {
    // Routing every exchange through encoded frames over the loopback
    // transport (the default) must be byte-identical to bypassing the codec
    // (`.direct(true)`), for both the full RefFiL protocol (which adds
    // GlobalPromptBroadcast / PromptUpload frames) and a plain baseline —
    // while both paths account identical encoded-frame traffic.
    let ds = dataset();
    for seed in [13u64, 29] {
        let cfg = run_cfg(seed, 0.0);

        let mut s_wire = RefFiL::new(RefFiLConfig::new(method()));
        let r_wire = FdilRunner::new(cfg).run(&ds, &mut s_wire);
        let mut s_direct = RefFiL::new(RefFiLConfig::new(method()));
        let r_direct = FdilRunner::new(cfg).direct(true).run(&ds, &mut s_direct);
        assert_byte_identical(&r_wire, &r_direct);
        assert_eq!(
            s_wire.prompt_store().total_reps(),
            s_direct.prompt_store().total_reps(),
            "prompt store diverged between wire and direct paths at seed {seed}"
        );

        let mut f_wire = Finetune::new(method());
        let f_r_wire = FdilRunner::new(cfg).run(&ds, &mut f_wire);
        let mut f_direct = Finetune::new(method());
        let f_r_direct = FdilRunner::new(cfg).direct(true).run(&ds, &mut f_direct);
        assert_byte_identical(&f_r_wire, &f_r_direct);
    }
}

#[test]
fn lossless_wire_spec_matches_direct_path() {
    // `WireConfig { delta: false, quant: None, topk_fraction: 1.0 }` is the
    // identity spec: the compression layer must never engage, so the run is
    // byte-identical to bypassing the frame codec entirely (`.direct(true)`)
    // — the same guarantee the default config gives, stated explicitly for
    // the spec's lossless corner.
    let ds = dataset();
    for seed in [13u64, 29] {
        let mut cfg = run_cfg(seed, 0.0);
        cfg.wire = WireConfig {
            delta: false,
            quant: WireQuant::None,
            topk_fraction: 1.0,
        };
        let mut s_wire = RefFiL::new(RefFiLConfig::new(method()));
        let r_wire = FdilRunner::new(cfg).run(&ds, &mut s_wire);
        let mut s_direct = RefFiL::new(RefFiLConfig::new(method()));
        let r_direct = FdilRunner::new(cfg).direct(true).run(&ds, &mut s_direct);
        assert_byte_identical(&r_wire, &r_direct);
        // The identity spec must not have routed updates through the
        // compressed frame kind: raw == encoded on every round.
        for r in &r_wire.rounds {
            assert_eq!(r.uplink_raw_bytes, r.uplink_encoded_bytes);
            assert!(!r.wire_bytes.contains_key("compressed_model_update"));
        }
    }
}

#[test]
fn compressed_runs_are_thread_count_invariant() {
    // Lossy compression (delta + int8 + top-k) is still deterministic: all
    // randomness is pre-drawn and quantization/tie-breaking are fixed-order,
    // so worker count stays an execution detail with the codec active.
    let ds = dataset();
    let mut cfg = run_cfg(13, 0.0);
    cfg.wire = WireConfig {
        delta: true,
        quant: WireQuant::Int8,
        topk_fraction: 0.5,
    };
    let mut s1 = RefFiL::new(RefFiLConfig::new(method()));
    let r1 = run_at(1, cfg, &ds, &mut s1);
    let mut s4 = RefFiL::new(RefFiLConfig::new(method()));
    let r4 = run_at(4, cfg, &ds, &mut s4);
    assert_byte_identical(&r1, &r4);
    // And the codec genuinely engaged: encoded uplink well under dense.
    let raw: u64 = r1.rounds.iter().map(|r| r.uplink_raw_bytes).sum();
    let encoded: u64 = r1.rounds.iter().map(|r| r.uplink_encoded_bytes).sum();
    assert!(raw > 0 && encoded > 0);
    assert!(
        encoded * 2 < raw,
        "compression should have engaged (raw {raw}, encoded {encoded})"
    );
}

#[test]
fn parallel_matches_sequential_under_dropout() {
    // Dropout draws are part of the pre-drawn randomness; simulated client
    // failures must hit the same clients at any thread count.
    let ds = dataset();
    let cfg = run_cfg(13, 0.4);
    let mut s1 = Finetune::new(method());
    let r1 = run_at(1, cfg, &ds, &mut s1);
    let mut s4 = Finetune::new(method());
    let r4 = run_at(4, cfg, &ds, &mut s4);
    assert_byte_identical(&r1, &r4);
}
