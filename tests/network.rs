//! Networked federation equivalence: a server driving real client
//! *processes* over TCP and Unix sockets must be byte-identical, in every
//! semantic `RunResult` field, to the same-seed in-process loopback run.
//!
//! Client processes are spawned by re-executing this test binary: the
//! `net_client_child` test below is a no-op under a normal `cargo test`,
//! but becomes a federation client when `REFIL_NET_CHILD_ADDR` is set.
//! The straggler tests pin the failure paths: a crashed client's sessions
//! are reassigned to surviving peers (and a rejoining process catches up
//! from the replay log); only when no live peer remains — or a client
//! trains slower than the round deadline — are sessions stranded as
//! `clients_late`, and the run still completes deterministically.

use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use refil::continual::{Finetune, MethodConfig};
use refil::core::{RefFiL, RefFiLConfig};
use refil::data::{DatasetSpec, DomainSpec, FdilDataset};
use refil::fed::{
    client_handshake, connect, run_client, ClientOptions, Endpoint, FdilRunner, FdilStrategy,
    IncrementConfig, NetListener, RunConfig, RunResult, Telemetry, WireConfig, WireQuant,
};
use refil::nn::models::{BackboneConfig, ExtractorKind};

fn dataset() -> FdilDataset {
    DatasetSpec {
        name: "net".into(),
        classes: 3,
        feature_dim: 8,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 150, 0.15, 0.05),
            DomainSpec::new("d1", 150, 0.3, 0.4).with_collision(1.0),
        ],
    }
    .generate(11)
}

fn method_cfg() -> MethodConfig {
    MethodConfig {
        backbone: BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    }
}

fn build_strategy(name: &str) -> Box<dyn FdilStrategy> {
    match name {
        "reffil" => Box::new(RefFiL::new(RefFiLConfig::new(method_cfg()))),
        "reffil+prompt" => Box::new(RefFiL::new(
            RefFiLConfig::new(method_cfg()).with_prompt_only(true),
        )),
        "finetune" => Box::new(Finetune::new(method_cfg())),
        other => panic!("unknown strategy {other:?}"),
    }
}

fn run_cfg(seed: u64) -> RunConfig {
    RunConfig {
        increment: IncrementConfig {
            initial_clients: 4,
            select_per_round: 3,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 3,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 128,
        dropout_prob: 0.0,
        seed,
        threads: 0,
        net: Default::default(),
        wire: Default::default(),
    }
}

/// Spawns a client process by re-executing this test binary with the
/// child-mode environment set. `extra` adds straggler knobs.
fn spawn_client(addr: &str, method: &str, seed: u64, extra: &[(&str, String)]) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.args(["net_client_child", "--exact"])
        .env("REFIL_NET_CHILD_ADDR", addr)
        .env("REFIL_NET_CHILD_METHOD", method)
        .env("REFIL_NET_CHILD_SEED", seed.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in extra {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn client process")
}

/// Serves one full run on `endpoint` with `clients` freshly spawned client
/// processes, waits for them to exit, and returns the server's result.
fn serve_run(
    endpoint: &Endpoint,
    method: &str,
    mut cfg: RunConfig,
    clients: usize,
    extra: &[(&str, String)],
    require_client_success: bool,
) -> RunResult {
    let ds = dataset();
    cfg.net.min_peers = clients;
    let listener = NetListener::bind(endpoint).expect("bind");
    let addr = listener.local_endpoint().to_string();
    let children: Vec<Child> = (0..clients)
        .map(|_| spawn_client(&addr, method, cfg.seed, extra))
        .collect();
    let mut strat = build_strategy(method);
    let result = FdilRunner::new(cfg).serve(&ds, strat.as_mut(), &listener, "net-test");
    for mut child in children {
        let status = child.wait().expect("wait for client");
        if require_client_success {
            assert!(status.success(), "client process failed: {status}");
        }
    }
    result
}

fn assert_semantically_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.final_global, b.final_global, "final_global diverged");
    assert_eq!(a.domain_acc, b.domain_acc, "domain_acc diverged");
    assert_eq!(a.traffic, b.traffic, "traffic stats diverged");
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(x.wire_bytes, y.wire_bytes, "per-round wire bytes diverged");
        assert_eq!(x.clients_trained, y.clients_trained);
        assert_eq!(x.clients_dropped, y.clients_dropped);
        assert_eq!(x.clients_late, y.clients_late);
        assert_eq!(x.clients_sampled_out, y.clients_sampled_out);
        assert_eq!(x.uplink_raw_bytes, y.uplink_raw_bytes);
        assert_eq!(x.uplink_encoded_bytes, y.uplink_encoded_bytes);
    }
}

#[test]
fn reffil_over_tcp_matches_loopback_across_seeds() {
    let ds = dataset();
    for seed in [13u64, 29] {
        let mut local_strat = build_strategy("reffil");
        let local = FdilRunner::new(run_cfg(seed)).run(&ds, local_strat.as_mut());
        let served = serve_run(
            &Endpoint::Tcp("127.0.0.1:0".into()),
            "reffil",
            run_cfg(seed),
            2,
            &[],
            true,
        );
        assert_semantically_identical(&local, &served);
        assert!(
            served.rounds.iter().all(|r| r.clients_late == 0),
            "healthy run reported late sessions at seed {seed}"
        );
    }
}

#[test]
fn compressed_reffil_over_tcp_matches_loopback() {
    // A lossy spec (delta + int8 + top-k) negotiated through `Hello`/
    // `Welcome`: remote clients compress against the broadcast they decoded,
    // the server reconstructs from its history, and the whole run must stay
    // byte-identical to the in-process loopback run under the same spec —
    // including the per-kind wire ledger and raw-vs-encoded columns.
    let ds = dataset();
    let mut cfg = run_cfg(13);
    cfg.wire = WireConfig {
        delta: true,
        quant: WireQuant::Int8,
        topk_fraction: 0.5,
    };
    let mut local_strat = build_strategy("reffil");
    let local = FdilRunner::new(cfg).run(&ds, local_strat.as_mut());
    let served = serve_run(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        "reffil",
        cfg,
        2,
        &[],
        true,
    );
    assert_semantically_identical(&local, &served);
    // The codec genuinely ran: every round's updates travelled as
    // `CompressedModelUpdate` frames at well under the dense cost.
    let raw: u64 = served.rounds.iter().map(|r| r.uplink_raw_bytes).sum();
    let encoded: u64 = served.rounds.iter().map(|r| r.uplink_encoded_bytes).sum();
    assert!(raw > 0 && encoded * 2 < raw, "raw {raw}, encoded {encoded}");
    for r in &served.rounds {
        assert!(r.wire_bytes.contains_key("compressed_model_update"));
        assert!(!r.wire_bytes.contains_key("client_model_update"));
    }
}

#[test]
fn prompt_only_reffil_over_tcp_matches_loopback() {
    // Masked (prompt-only) exchange under the *identity* spec: task 0 goes
    // up dense, later tasks as sparse frames — and remote clients must make
    // exactly the same per-task compressed-or-plain choice as the loopback
    // driver, or the byte ledgers diverge.
    let ds = dataset();
    let cfg = run_cfg(13);
    let mut local_strat = build_strategy("reffil+prompt");
    let local = FdilRunner::new(cfg).run(&ds, local_strat.as_mut());
    let served = serve_run(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        "reffil+prompt",
        cfg,
        2,
        &[],
        true,
    );
    assert_semantically_identical(&local, &served);
    for r in &served.rounds {
        if r.task == 0 {
            assert!(!r.wire_bytes.contains_key("compressed_model_update"));
            assert_eq!(r.uplink_raw_bytes, r.uplink_encoded_bytes);
        } else {
            assert!(r.wire_bytes.contains_key("compressed_model_update"));
            assert!(r.uplink_encoded_bytes < r.uplink_raw_bytes);
        }
    }
}

#[cfg(unix)]
#[test]
fn finetune_over_unix_socket_matches_loopback_across_seeds() {
    let ds = dataset();
    let dir = std::env::temp_dir().join(format!("refil-net-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create socket dir");
    for seed in [13u64, 29] {
        let sock = dir.join(format!("run-{seed}.sock"));
        let mut local_strat = build_strategy("finetune");
        let local = FdilRunner::new(run_cfg(seed)).run(&ds, local_strat.as_mut());
        let served = serve_run(
            &Endpoint::Unix(sock),
            "finetune",
            run_cfg(seed),
            2,
            &[],
            true,
        );
        assert_semantically_identical(&local, &served);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sampled_participation_matches_loopback() {
    // Per-round client sampling draws from its own seeded RNG stream on the
    // shared planning path, so a networked run samples exactly the sessions
    // the loopback run samples — and stays byte-identical.
    let ds = dataset();
    let mut cfg = run_cfg(29);
    cfg.net.sample_fraction = 0.5;
    cfg.net.min_sample = 1;
    let mut local_strat = build_strategy("finetune");
    let local = FdilRunner::new(cfg).run(&ds, local_strat.as_mut());
    let sampled_out: u64 = local.rounds.iter().map(|r| r.clients_sampled_out).sum();
    assert!(
        sampled_out > 0,
        "half sampling must leave some sessions out"
    );
    let served = serve_run(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        "finetune",
        cfg,
        2,
        &[],
        true,
    );
    assert_semantically_identical(&local, &served);
}

#[test]
fn crashed_client_is_reassigned_and_a_rejoiner_catches_up() {
    // One client crashes (drops its connection without notice) on its second
    // RoundStart. The reactor reassigns the stranded sessions to the
    // surviving peer, so nothing goes late and the run stays byte-identical
    // to the loopback run. A replacement process then joins mid-run, catches
    // up from the server's full replay log, and finishes COMPLETE.
    let ds = dataset();
    let mut cfg = run_cfg(13);
    cfg.net.min_peers = 2;
    cfg.net.round_deadline_ms = 4_000;
    let mut local_strat = build_strategy("finetune");
    let local = FdilRunner::new(cfg).run(&ds, local_strat.as_mut());

    let listener = NetListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).expect("bind");
    let addr = listener.local_endpoint().to_string();
    let crash = [("REFIL_NET_CHILD_ABORT", "2".to_string())];
    // The stayer trains with a small delay so the run is still in flight
    // when the replacement process connects.
    let slow = [("REFIL_NET_CHILD_DELAY", "200".to_string())];
    let mut crasher = spawn_client(&addr, "finetune", 13, &crash);
    let mut stayer = spawn_client(&addr, "finetune", 13, &slow);
    let rejoin_addr = addr.clone();
    let rejoiner = std::thread::spawn(move || {
        let status = crasher.wait().expect("wait for crasher");
        assert!(status.success(), "crasher child failed: {status}");
        let mut child = spawn_client(&rejoin_addr, "finetune", 13, &[]);
        child.wait().expect("wait for rejoiner")
    });
    let mut strat = build_strategy("finetune");
    let served = FdilRunner::new(cfg).serve(&ds, strat.as_mut(), &listener, "net-test");
    let rejoin_status = rejoiner.join().expect("rejoiner thread");
    assert!(rejoin_status.success(), "rejoiner child failed");
    let stayer_status = stayer.wait().expect("wait for stayer");
    assert!(stayer_status.success(), "stayer child failed");

    assert_semantically_identical(&local, &served);
    assert!(
        served.rounds.iter().all(|r| r.clients_late == 0),
        "crashed peer's sessions must be reassigned, not stranded"
    );
}

#[test]
fn straggler_dropout_completes_deterministically() {
    // Both clients crash (drop the connection without notice) on their
    // third RoundStart. Every round from then on completes all-late via
    // the deadline/disconnect path — and because session results depend
    // only on the replicated state, not on which peer trains them, two
    // such runs are byte-identical in every semantic field.
    let abort = [("REFIL_NET_CHILD_ABORT", "3".to_string())];
    let run = || {
        let mut cfg = run_cfg(13);
        cfg.net.round_deadline_ms = 2_000;
        cfg.net.join_grace_ms = 100;
        serve_run(
            &Endpoint::Tcp("127.0.0.1:0".into()),
            "finetune",
            cfg,
            2,
            &abort,
            true,
        )
    };
    let a = run();
    let b = run();
    assert_semantically_identical(&a, &b);

    // The run completed every planned round and task despite losing every
    // peer mid-run...
    assert_eq!(a.traffic.rounds, 6);
    assert_eq!(a.domain_acc.len(), 2);
    // ...with the stranded sessions recorded as late, not lost.
    let late: u64 = a.rounds.iter().map(|r| r.clients_late).sum();
    let trained: u64 = a.rounds.iter().map(|r| r.clients_trained).sum();
    assert!(late > 0, "aborting both clients must strand sessions");
    assert!(trained > 0, "rounds before the abort must train normally");
    // Once both peers are gone nothing mixes trained and late sessions:
    // each round is either fully trained (before the crash) or fully late.
    assert!(a
        .rounds
        .iter()
        .all(|r| r.clients_trained == 0 || r.clients_late == 0));
}

#[test]
fn slow_client_misses_deadline_but_run_completes() {
    // A single client that sleeps longer than the round deadline: its
    // results always arrive after the server sealed the round (and are
    // discarded as stale), so every session is late — but the server
    // never hangs and still walks the full task schedule.
    let delay = [("REFIL_NET_CHILD_DELAY", "700".to_string())];
    let mut cfg = run_cfg(13);
    cfg.increment.rounds_per_task = 2;
    cfg.net.round_deadline_ms = 150;
    cfg.net.join_grace_ms = 100;
    let started = Instant::now();
    // The slow client may die on a send into the closed socket after the
    // server finishes; its exit status is not part of the contract.
    let result = serve_run(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        "finetune",
        cfg,
        1,
        &delay,
        false,
    );
    assert_eq!(result.traffic.rounds, 4, "run must complete all rounds");
    assert_eq!(result.domain_acc.len(), 2);
    let late: u64 = result.rounds.iter().map(|r| r.clients_late).sum();
    let planned: u64 = result
        .rounds
        .iter()
        .map(|r| r.clients_trained + r.clients_late)
        .sum();
    assert_eq!(late, planned, "every session should miss the deadline");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "deadline path must not hang"
    );
}

/// Child-mode entry point: a no-op test normally, a federation client when
/// re-executed by the tests above with `REFIL_NET_CHILD_ADDR` set.
#[test]
fn net_client_child() {
    let Ok(addr) = std::env::var("REFIL_NET_CHILD_ADDR") else {
        return;
    };
    let method = std::env::var("REFIL_NET_CHILD_METHOD").expect("child method");
    let seed: u64 = std::env::var("REFIL_NET_CHILD_SEED")
        .expect("child seed")
        .parse()
        .expect("child seed parses");
    let mut opts = ClientOptions::default();
    if let Ok(n) = std::env::var("REFIL_NET_CHILD_ABORT") {
        opts.abort_after_round_starts = Some(n.parse().expect("abort count"));
    }
    if let Ok(ms) = std::env::var("REFIL_NET_CHILD_DELAY") {
        opts.train_delay_ms = ms.parse().expect("delay ms");
    }
    let endpoint = Endpoint::parse(&addr).expect("child address");
    let deadline = Instant::now() + Duration::from_secs(60);
    let link = connect(&endpoint, deadline).expect("child connect");
    let (peer_id, _spec, _token, compression) =
        client_handshake(&link, seed, None, deadline).expect("child handshake");
    opts.compression = compression;
    let ds = dataset();
    let mut strat = build_strategy(&method);
    run_client(
        &link,
        peer_id,
        &ds,
        strat.as_mut(),
        &run_cfg(seed),
        &opts,
        &Telemetry::disabled(),
    )
    .expect("child replica loop");
}
