//! The profiling layer's cross-crate contracts.
//!
//! Two things are pinned here: the Chrome trace exporter writes valid
//! trace-event JSON whose spans are strictly nested within each worker
//! track, and every strategy's run emits one `RoundReport` per round whose
//! *semantic* fields (ids, counts, wire bytes, accuracies — everything
//! except wall times) are byte-identical across worker-thread counts.

use refil::continual::{FedDualPrompt, FedEwc, FedL2p, FedLwf, Finetune, MethodConfig};
use refil::core::{RefFiL, RefFiLConfig};
use refil::data::{DatasetSpec, DomainSpec, FdilDataset};
use refil::fed::{FdilRunner, FdilStrategy, IncrementConfig, RoundReport, RunConfig, Telemetry};
use refil::nn::models::{BackboneConfig, ExtractorKind};

fn dataset() -> FdilDataset {
    DatasetSpec {
        name: "prof".into(),
        classes: 3,
        feature_dim: 8,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 100, 0.15, 0.05),
            DomainSpec::new("d1", 100, 0.3, 0.4),
        ],
    }
    .generate(11)
}

fn method() -> MethodConfig {
    MethodConfig {
        backbone: BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    }
}

fn run_cfg(seed: u64) -> RunConfig {
    RunConfig {
        increment: IncrementConfig {
            initial_clients: 4,
            select_per_round: 3,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 2,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 64,
        dropout_prob: 0.0,
        seed,
        threads: 0,
        net: Default::default(),
        wire: Default::default(),
    }
}

/// The paper's eight methods, as the bench harness builds them
/// (prompt-based ones on the stable-backbone regime).
fn strategies() -> Vec<(&'static str, Box<dyn FdilStrategy>)> {
    let cfg = method();
    let prompt = MethodConfig {
        stable_after_first_task: true,
        ..cfg
    };
    vec![
        (
            "finetune",
            Box::new(Finetune::new(cfg)) as Box<dyn FdilStrategy>,
        ),
        ("lwf", Box::new(FedLwf::new(cfg))),
        ("ewc", Box::new(FedEwc::new(cfg))),
        ("l2p", Box::new(FedL2p::new(prompt, false))),
        ("l2p+pool", Box::new(FedL2p::new(prompt, true))),
        ("dualprompt", Box::new(FedDualPrompt::new(prompt, false))),
        (
            "dualprompt+pool",
            Box::new(FedDualPrompt::new(prompt, true)),
        ),
        ("reffil", Box::new(RefFiL::new(RefFiLConfig::new(prompt)))),
    ]
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

fn unique_tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("refil_profiling_{}_{name}", std::process::id()))
}

#[test]
fn chrome_trace_is_valid_json_with_strictly_nested_tracks() {
    let path = unique_tmp("trace.json");
    {
        let telemetry = Telemetry::chrome(&path).expect("create chrome sink");
        let mut strat = Finetune::new(method());
        FdilRunner::new(run_cfg(13))
            .threads(2)
            .telemetry(&telemetry)
            .run(&dataset(), &mut strat);
        telemetry.flush();
    }
    let text = std::fs::read_to_string(&path).expect("read trace");
    let doc = serde_json::parse_value(&text).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_seq())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");

    // Collect complete ("X") spans per track and the track-name metadata.
    let mut tracks: std::collections::BTreeMap<u64, Vec<(f64, f64, String)>> = Default::default();
    let mut named_tracks = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph field");
        let tid = e.get("tid").and_then(|v| v.as_u64()).expect("tid field");
        match ph {
            "X" => {
                let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
                let dur = e.get("dur").and_then(|v| v.as_f64()).expect("dur");
                let name = e
                    .get("name")
                    .and_then(|v| v.as_str())
                    .expect("name")
                    .to_string();
                assert!(ts >= 0.0 && dur >= 0.0, "negative ts/dur on {name}");
                tracks.entry(tid).or_default().push((ts, dur, name));
            }
            "M" => {
                assert_eq!(
                    e.get("name").and_then(|v| v.as_str()),
                    Some("thread_name"),
                    "unexpected metadata event"
                );
                named_tracks.insert(tid);
            }
            _ => {}
        }
    }
    assert!(!tracks.is_empty(), "no complete spans in trace");
    // Track 0 is the driver (round/phase spans); workers follow.
    assert!(tracks.contains_key(&0), "driver track missing");
    assert!(
        tracks.len() >= 2,
        "expected worker tracks beside the driver"
    );
    for tid in tracks.keys() {
        assert!(named_tracks.contains(tid), "track {tid} has no thread_name");
    }

    // Strict nesting per track: sweeping spans by start (ties: longest
    // first), every span must fit entirely inside the enclosing open span.
    for (tid, spans) in &mut tracks {
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut open: Vec<(f64, String)> = Vec::new(); // (end, name)
        for (ts, dur, name) in spans.iter() {
            while let Some((end, _)) = open.last() {
                if *end <= *ts {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some((end, outer)) = open.last() {
                assert!(
                    ts + dur <= *end + 1e-9,
                    "track {tid}: span {name} [{ts}, {}) overflows enclosing {outer} ending {end}",
                    ts + dur
                );
            }
            open.push((ts + dur, name.clone()));
        }
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// RoundReport golden coverage
// ---------------------------------------------------------------------------

/// The thread-count-independent projection of a round report.
fn semantic_projection(r: &RoundReport) -> String {
    format!(
        "task={} round={} wire={:?} trained={} dropped={} late={} sampled_out={} sessions={:?} eval={:?}",
        r.task,
        r.round,
        r.wire_bytes,
        r.clients_trained,
        r.clients_dropped,
        r.clients_late,
        r.clients_sampled_out,
        r.sessions.iter().map(|s| s.client_id).collect::<Vec<_>>(),
        r.eval_domain_acc
    )
}

#[test]
fn round_reports_are_semantically_identical_across_thread_counts() {
    let ds = dataset();
    for seed in [13u64, 29] {
        for ((name, mut s1), (_, mut s4)) in strategies().into_iter().zip(strategies()) {
            let cfg = run_cfg(seed);
            let t1 = Telemetry::collecting();
            let r1 = FdilRunner::new(cfg)
                .threads(1)
                .telemetry(&t1)
                .run(&ds, s1.as_mut());
            let t4 = Telemetry::collecting();
            let r4 = FdilRunner::new(cfg)
                .threads(4)
                .telemetry(&t4)
                .run(&ds, s4.as_mut());

            assert_eq!(
                r1.rounds.len() as u64,
                r1.traffic.rounds,
                "{name}@{seed}: report count != executed rounds"
            );
            assert_eq!(
                r1.rounds.len(),
                r4.rounds.len(),
                "{name}@{seed}: round counts diverged across thread counts"
            );
            for (a, b) in r1.rounds.iter().zip(&r4.rounds) {
                assert_eq!(
                    semantic_projection(a),
                    semantic_projection(b),
                    "{name}@{seed}: semantic round fields diverged across thread counts"
                );
            }
            // Every task boundary carries exactly one eval row.
            let evals = r1.rounds.iter().filter(|r| r.eval_domain_acc.is_some());
            assert_eq!(
                evals.count(),
                ds.num_domains(),
                "{name}@{seed}: expected one eval per task"
            );
        }
    }
}

#[test]
fn round_report_json_pins_field_presence() {
    // The report schema downstream tooling depends on: every field name
    // must be present in the serialized form of a real report, for every
    // strategy. A field rename or removal fails here before it breaks
    // dashboards parsing `RunResult::rounds`.
    let ds = dataset();
    const FIELDS: &[&str] = &[
        "task",
        "round",
        "wall_ns",
        "phases",
        "broadcast",
        "train",
        "aggregate",
        "merge",
        "eval",
        "sessions",
        "train_pool",
        "eval_pool",
        "wire_bytes",
        "clients_trained",
        "clients_dropped",
        "clients_late",
        "clients_sampled_out",
        "eval_domain_acc",
        "scratch",
        "reserved_bytes",
        "reserved_count",
        "reused_bytes",
        "reused_count",
        "peak_pool_bytes",
    ];
    const POOL_FIELDS: &[&str] = &[
        "wall_ns", "workers", "track", "busy_ns", "idle_ns", "items", "steals",
    ];
    const SESSION_FIELDS: &[&str] = &["client_id", "track", "duration_ns"];
    for (name, mut strat) in strategies() {
        let telemetry = Telemetry::collecting();
        let res = FdilRunner::new(run_cfg(13))
            .threads(2)
            .telemetry(&telemetry)
            .run(&ds, strat.as_mut());
        assert!(!res.rounds.is_empty(), "{name}: no round reports");
        let json = serde_json::to_string(&res.rounds).expect("serialize rounds");
        for field in FIELDS {
            assert!(
                json.contains(&format!("\"{field}\"")),
                "{name}: field {field} missing from serialized rounds"
            );
        }
        // With collecting telemetry at threads > 1, pool and session
        // sub-objects must be populated somewhere in the run.
        let trained: Vec<&RoundReport> = res
            .rounds
            .iter()
            .filter(|r| r.clients_trained > 0)
            .collect();
        assert!(!trained.is_empty(), "{name}: no round trained any client");
        let pooled = trained
            .iter()
            .find(|r| r.train_pool.is_some())
            .unwrap_or_else(|| panic!("{name}: collecting telemetry produced no train pool stats"));
        let pool_json =
            serde_json::to_string(pooled.train_pool.as_ref().expect("pool")).expect("serialize");
        for field in POOL_FIELDS {
            assert!(
                pool_json.contains(&format!("\"{field}\"")),
                "{name}: pool field {field} missing"
            );
        }
        let session_json = serde_json::to_string(&pooled.sessions).expect("serialize sessions");
        for field in SESSION_FIELDS {
            assert!(
                session_json.contains(&format!("\"{field}\"")),
                "{name}: session field {field} missing"
            );
        }
        // Arena accounting must have observed real buffer traffic.
        let total_scratch: u64 = res
            .rounds
            .iter()
            .map(|r| r.scratch.reserved_count + r.scratch.reused_count)
            .sum();
        assert!(total_scratch > 0, "{name}: scratch arena saw no requests");
    }
}
