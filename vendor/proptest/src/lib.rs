//! Offline vendored mini property-testing harness.
//!
//! Implements the slice of the `proptest` macro/API surface this workspace
//! uses — `proptest!` with an optional `#![proptest_config(...)]` header,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range strategies,
//! and `prop::collection::vec` — on top of the vendored `rand` crate.
//!
//! Compared to upstream proptest there is no shrinking: a failing case
//! panics with the case index and seed, which together with the
//! deterministic per-test RNG is enough to reproduce it exactly.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Harness configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!` failures) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not count.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection with a message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// A strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Length specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-imported surface, mirroring `proptest::prelude::*`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    pub mod prop {
        //! Strategy constructors namespace (`prop::collection::vec`, ...).
        pub use crate::collection;
    }
}

/// Runs one property: repeatedly samples inputs and evaluates `body`.
///
/// Called by the generated code of [`proptest!`]; not public API upstream,
/// but kept as a plain function here so the macro stays small.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Deterministic per-test seed so failures reproduce across runs.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while accepted < config.cases {
        case += 1;
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property {name}: too many rejected cases \
                         ({rejected} rejects, {accepted} accepted)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case #{case} (seed {seed:#x}): {msg}");
            }
        }
    }
}

/// Property-test harness macro: a `proptest!`-compatible subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident (
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &config, |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0u64..100, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn nested_vecs_work(m in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 3..=3), 0..4)) {
            for row in &m {
                prop_assert_eq!(row.len(), 3);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
