//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal, dependency-free implementation of the
//! surface the RefFiL crates actually use: [`rngs::StdRng`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen`,
//! `gen_range`, and `gen_bool`.
//!
//! The generator core is xoshiro256\*\* seeded through SplitMix64 —
//! deterministic, fast, and statistically solid for simulation work. The
//! streams differ from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine for this repo: every consumer seeds explicitly and asserts
//! behavioural properties, not exact draw values.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Fixed-width seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types producible by [`Rng::gen`] (a stand-in for `rand`'s `Standard`
/// distribution).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

signed_range!(i64, i32, i16, i8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Convenience extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value of type `T` (uniform over the type's standard range).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256\*\*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(2..17);
            assert!((2..17).contains(&x));
            let y: f32 = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z: usize = rng.gen_range(0..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
    }
}
