//! Offline vendored subset of the `serde` API.
//!
//! The build environment cannot reach crates.io, so the workspace ships a
//! minimal serde replacement built around an owned value tree ([`Value`])
//! instead of upstream's visitor-based zero-copy model:
//!
//! * [`Serialize`] converts `&self` into a [`Value`],
//! * [`Deserialize`] reconstructs `Self` from a [`&Value`](Value),
//! * `#[derive(Serialize, Deserialize)]` is provided by the sibling
//!   hand-rolled `serde_derive` proc-macro crate and supports the shapes
//!   used in this repo: named-field structs (with `#[serde(skip)]`), tuple
//!   structs, and enums with unit / newtype / struct variants using the
//!   externally-tagged representation.
//!
//! The companion vendored `serde_json` crate prints and parses [`Value`]
//! as JSON. Round-tripping within the workspace is exact; compatibility
//! with upstream serde wire formats is a non-goal.

pub use serde_derive::{Deserialize, Serialize};

/// Owned, self-describing data-model value (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (used when negative).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if it fits.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// A short name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Builds a type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self {
            message: format!("expected {what}, found {}", got.kind()),
        }
    }

    /// Builds a missing-field error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self {
            message: format!("missing field `{field}` while deserializing {ty}"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the serde data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn ser(&self) -> Value;
}

/// Reconstruction from the serde data model.
pub trait Deserialize: Sized {
    /// Deserializes `Self` from a [`Value`].
    fn de(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!(
                    "{u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                if *self < 0 { Value::Int(*self as i64) } else { Value::UInt(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "{i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn ser(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn de(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("f32", v))
    }
}

impl Serialize for f64 {
    fn ser(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn de(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("f64", v))
    }
}

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for char {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn de(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, found {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn de(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn ser(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        self.as_slice().ser()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", v))?
            .iter()
            .map(T::de)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser(&self) -> Value {
        self.as_slice().ser()
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn de(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::de(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(t) => t.ser(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::de(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        T::de(v).map(Box::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn ser(&self) -> Value {
                Value::Seq(vec![$(self.$idx.ser()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn de(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| Error::expected("tuple", v))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "expected tuple of {expect}, found sequence of {}", items.len()
                    )));
                }
                Ok(($($name::de(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Map keys must print to / parse from strings.
pub trait MapKey: Sized {
    /// Key as a JSON object key.
    fn to_key(&self) -> String;
    /// Key parsed back from a JSON object key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! numeric_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom(format!(
                    "invalid {} map key {s:?}", stringify!($t)
                )))
            }
        }
    )*};
}

numeric_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Ord,
    V: Serialize,
{
    fn ser(&self) -> Value {
        // Deterministic key order so equal maps serialize identically.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.ser()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn de(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::de(val)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn ser(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.ser())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn de(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::de(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn ser(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn de(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive-support helpers (called by serde_derive-generated code)
// ---------------------------------------------------------------------------

/// Extracts and deserializes field `name` of struct `ty` from map `v`.
pub fn struct_field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::de(field),
        None => Err(Error::missing_field(ty, name)),
    }
}

/// Like [`struct_field`], but a missing key yields `T::default()` instead of
/// an error — the deserialization half of `#[serde(default)]`, used for
/// fields added after data was serialized.
pub fn struct_field_or_default<T: Deserialize + Default>(
    v: &Value,
    name: &str,
) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::de(field),
        None => Ok(T::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::de(&42u32.ser()).unwrap(), 42);
        assert_eq!(i64::de(&(-7i64).ser()).unwrap(), -7);
        assert_eq!(f32::de(&1.5f32.ser()).unwrap(), 1.5);
        assert_eq!(bool::de(&true.ser()).unwrap(), true);
        assert_eq!(String::de(&"hi".to_string().ser()).unwrap(), "hi");
    }

    #[test]
    fn composites_roundtrip() {
        let v = vec![1.0f32, -2.5, 3.25];
        assert_eq!(Vec::<f32>::de(&v.ser()).unwrap(), v);
        let t = (1usize, "x".to_string(), 2.0f64);
        assert_eq!(<(usize, String, f64)>::de(&t.ser()).unwrap(), t);
        let a = [(1usize, 2usize, 3usize); 3];
        assert_eq!(<[(usize, usize, usize); 3]>::de(&a.ser()).unwrap(), a);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::de(&o.ser()).unwrap(), None);
    }

    #[test]
    fn maps_roundtrip_with_sorted_keys() {
        let mut m = std::collections::HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let v = m.ser();
        assert_eq!(
            v,
            Value::Map(vec![
                ("a".into(), Value::UInt(1)),
                ("b".into(), Value::UInt(2)),
            ])
        );
        let back: std::collections::HashMap<String, u64> = Deserialize::de(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u32::de(&Value::Str("nope".into())).is_err());
        assert!(Vec::<f32>::de(&Value::Bool(true)).is_err());
    }
}
