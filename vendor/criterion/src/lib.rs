//! Offline vendored micro-benchmark harness.
//!
//! Implements the `criterion` call surface used by `benches/micro.rs`
//! (`Criterion::default()`, builder knobs, `bench_function`, `Bencher::iter`
//! / `iter_batched`, `criterion_group!`, `criterion_main!`) with a simple
//! warm-up + timed-samples loop. Results (mean / median / min per
//! iteration) print to stdout, one line per benchmark.

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`]; only a marker here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the timed-measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmarks `routine` called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates how many iterations fit in one sample.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (budget / per_iter.max(1e-9)).max(1.0) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    /// Benchmarks `routine` with a fresh `setup()` input per call, timing
    /// only the routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut timed_ns = 0.0f64;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed_ns += t.elapsed().as_secs_f64() * 1e9;
            warm_iters += 1;
        }
        let per_iter_ns = timed_ns / warm_iters.max(1) as f64;
        let budget_ns = self.measurement_time.as_secs_f64() * 1e9 / self.sample_size as f64;
        let iters_per_sample = (budget_ns / per_iter_ns.max(1.0)).max(1.0) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut sample_ns = 0.0f64;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                sample_ns += t.elapsed().as_secs_f64() * 1e9;
            }
            self.samples_ns.push(sample_ns / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{name:<40} mean {:>12} median {:>12} min {:>12} ({} samples)",
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); this harness
            // runs every group unconditionally.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(10))
    }

    #[test]
    fn iter_collects_samples() {
        let mut c = quick();
        let mut calls = 0u64;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        let mut c = quick();
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
