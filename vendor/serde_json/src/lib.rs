//! Offline vendored subset of the `serde_json` API.
//!
//! Prints and parses the vendored [`serde::Value`] tree as JSON. Supports
//! the call surface the workspace uses: [`to_string`], [`to_string_pretty`],
//! [`to_vec`], [`to_writer`], [`from_str`], [`from_slice`], and an [`Error`]
//! type usable with `?` and `std::error::Error`.

pub use serde::Value;

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Upstream serde_json rejects non-finite floats; emitting null keeps
        // traces parseable instead of aborting a whole run export.
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // Keep floats floats on re-parse.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::de(&value).map_err(Error::from)
}

/// Deserializes a `T` from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Parses a JSON string into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for trace data;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?} at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for json in ["null", "true", "false", "0", "-17", "3.5", "1e3"] {
            let v = parse_value(json).unwrap();
            let back = parse_value(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "roundtrip of {json}");
        }
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&2.0f32).unwrap();
        assert_eq!(s, "2.0");
        let v = parse_value(&s).unwrap();
        assert!(matches!(v, Value::Float(f) if f == 2.0));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let json = r#"{"a": [1, 2.5, "x\ny"], "b": {"inner": null}, "c": [[true]]}"#;
        let v = parse_value(json).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "quote \" slash \\ newline \n tab \t unicode \u{1F600}".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<u32>("\"no\"").is_err());
    }

    #[test]
    fn f32_vec_roundtrips_exactly() {
        let xs: Vec<f32> = vec![0.1, -3.25e-8, 1234.5678, f32::MIN_POSITIVE];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }
}
