//! Offline vendored shim mapping the `crossbeam::thread::scope` API onto
//! `std::thread::scope` (stable since Rust 1.63), so the workspace needs no
//! external crate for scoped parallelism.

pub mod thread {
    //! Scoped threads with the crossbeam calling convention.

    use std::any::Any;

    /// Panic payload of a crashed worker.
    pub type Payload = Box<dyn Any + Send + 'static>;

    /// Scope handle passed to spawned closures (crossbeam convention: every
    /// closure receives a `&Scope` even if unused). `Copy`, so each worker
    /// closure owns its own handle and nothing dangles.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped worker thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result, or the panic payload.
        pub fn join(self) -> Result<T, Payload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a worker inside the scope. The closure receives the scope
        /// (crossbeam-style), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&me)),
            }
        }
    }

    /// Runs `f` with a scope in which threads borrowing local data can be
    /// spawned; all workers are joined before this returns.
    ///
    /// Mirrors `crossbeam::thread::scope`'s signature. The `Err` case (a
    /// worker panicked and was never joined) is surfaced as a panic by
    /// `std::thread::scope` instead, so this always returns `Ok` — callers'
    /// `.expect(...)` / `.unwrap()` compose the same way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawns_compile() {
        let n = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().expect("inner") * 2
            });
            h.join().expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
