//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! subset.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate parses the derive input token stream directly (no `syn`/`quote`)
//! and emits impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits. Supported shapes — the full set used in this workspace:
//!
//! * structs with named fields, honouring `#[serde(skip)]` (omitted when
//!   serializing, defaulted when deserializing) and `#[serde(default)]`
//!   (serialized normally, defaulted when the key is absent — the
//!   backward-compatibility knob for newly added fields),
//! * tuple structs (newtype structs serialize transparently),
//! * unit structs,
//! * enums with unit, tuple/newtype, and struct variants, in serde's
//!   externally-tagged representation,
//! * lifetime-generic types (`struct Out<'a> { ... }`).
//!
//! Unsupported serde attributes are rejected with a compile error rather
//! than silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    generics: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: deserialize to `Default::default()` when the
    /// key is missing instead of erroring.
    default: bool,
}

/// Field-level serde attributes the vendored derive understands.
#[derive(Debug, Default, Clone, Copy)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consumes leading `#[...]` attributes, returning which supported
    /// `#[serde(...)]` markers were present. Any other `#[serde(...)]`
    /// content is an error: the vendored derive must not silently change
    /// semantics.
    fn eat_attributes(&mut self) -> Result<FieldAttrs, String> {
        let mut attrs = FieldAttrs::default();
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(head)) = inner.first() {
                        if head.to_string() == "serde" {
                            let args = match inner.get(1) {
                                Some(TokenTree::Group(args))
                                    if args.delimiter() == Delimiter::Parenthesis =>
                                {
                                    args.stream().to_string()
                                }
                                _ => String::new(),
                            };
                            match args.trim() {
                                "skip" => attrs.skip = true,
                                "default" => attrs.default = true,
                                other => {
                                    return Err(format!(
                                        "unsupported serde attribute `#[serde({other})]` \
                                         (vendored derive supports only `skip` and `default`)"
                                    ));
                                }
                            }
                        }
                    }
                }
                other => return Err(format!("malformed attribute, found {other:?}")),
            }
        }
        Ok(attrs)
    }

    /// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes a `<...>` generics list if present, returning it verbatim.
    fn eat_generics(&mut self) -> String {
        if !matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return String::new();
        }
        let mut depth = 0usize;
        let mut out = String::new();
        while let Some(t) = self.next() {
            let s = t.to_string();
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            out.push_str(&s);
            if !matches!(&t, TokenTree::Punct(p) if p.as_char() == '\'') {
                out.push(' ');
            }
            if depth == 0 {
                break;
            }
        }
        out
    }

    /// Skips a type (the tokens up to a top-level `,` or the end),
    /// tracking angle-bracket depth.
    fn skip_type(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => return,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(input);
    c.eat_attributes()?;
    c.eat_visibility();

    let kind_kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    let generics = c.eat_generics();

    match kind_kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                generics,
                kind: Kind::Named(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                generics,
                kind: Kind::Tuple(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                generics,
                kind: Kind::Unit,
            }),
            other => Err(format!("unsupported struct body, found {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                generics,
                kind: Kind::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("expected struct or enum, found `{other}`")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let attrs = c.eat_attributes()?;
        if c.at_end() {
            break;
        }
        c.eat_visibility();
        let name = c.expect_ident()?;
        if !c.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.skip_type();
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
        if !c.eat_punct(',') {
            break;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0usize;
    loop {
        let _ = c.eat_attributes();
        c.eat_visibility();
        if c.at_end() {
            break;
        }
        c.skip_type();
        count += 1;
        if !c.eat_punct(',') {
            break;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.eat_attributes()?;
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        if !c.eat_punct(',') {
            break;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(trait_name: &str, item: &Input) -> String {
    format!(
        "impl {g} ::serde::{t} for {n} {g}",
        g = item.generics,
        t = trait_name,
        n = item.name
    )
}

fn gen_serialize(item: &Input) -> String {
    let body = match &item.kind {
        Kind::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "m.push(({n:?}.to_string(), ::serde::Serialize::ser(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}\
                 ::serde::Value::Map(m)"
            )
        }
        Kind::Tuple(1) => "::serde::Serialize::ser(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::ser(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let path = format!("{}::{}", item.name, v.name);
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{path} => ::serde::Value::Str({:?}.to_string()),\n",
                        v.name
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{path}(f0) => ::serde::Value::Map(vec![({:?}.to_string(), \
                         ::serde::Serialize::ser(f0))]),\n",
                        v.name
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let sers: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::ser({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{path}({binds}) => ::serde::Value::Map(vec![({name:?}.to_string(), \
                             ::serde::Value::Seq(vec![{sers}]))]),\n",
                            binds = binds.join(", "),
                            name = v.name,
                            sers = sers.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "({n:?}.to_string(), ::serde::Serialize::ser({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{path} {{ {binds} }} => ::serde::Value::Map(vec![({name:?}.to_string(), \
                             ::serde::Value::Map(vec![{pushes}]))]),\n",
                            binds = binds.join(", "),
                            name = v.name,
                            pushes = pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn ser(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        header = impl_header("Serialize", item)
    )
}

fn gen_named_constructor(path: &str, ty_label: &str, source: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            inits.push_str(&format!(
                "{n}: ::serde::struct_field_or_default({source}, {n:?})?,\n",
                n = f.name
            ));
        } else {
            inits.push_str(&format!(
                "{n}: ::serde::struct_field({source}, {ty:?}, {n:?})?,\n",
                n = f.name,
                ty = ty_label
            ));
        }
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let ctor = gen_named_constructor(name, name, "v", fields);
            format!(
                "if v.as_map().is_none() {{\n\
                     return Err(::serde::Error::expected(\"map\", v));\n\
                 }}\n\
                 Ok({ctor})"
            )
        }
        Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::de(v)?))"),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::de(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", v))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::Error::custom(format!(\
                         \"expected {n} fields for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::Unit => format!(
            "match v {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 other => Err(::serde::Error::expected(\"null\", other)),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            for v in variants.iter().filter(|v| matches!(v.shape, Shape::Unit)) {
                unit_arms.push_str(&format!(
                    "{:?} => Ok({name}::{v_name}),\n",
                    v.name,
                    v_name = v.name
                ));
            }
            let mut tagged_arms = String::new();
            for v in variants {
                let path = format!("{name}::{}", v.name);
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "{tag:?} => Ok({path}(::serde::Deserialize::de(inner)?)),\n",
                        tag = v.name
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::de(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{tag:?} => {{\n\
                                 let items = inner.as_seq().ok_or_else(|| \
                                     ::serde::Error::expected(\"sequence\", inner))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(::serde::Error::custom(format!(\
                                         \"expected {n} fields for variant {tag}, found {{}}\", \
                                         items.len())));\n\
                                 }}\n\
                                 Ok({path}({items}))\n\
                             }}\n",
                            tag = v.name,
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let label = format!("{name}::{}", v.name);
                        let ctor = gen_named_constructor(&path, &label, "inner", fields);
                        tagged_arms.push_str(&format!("{tag:?} => Ok({ctor}),\n", tag = v.name));
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::Error::custom(format!(\
                             \"unknown unit variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => Err(::serde::Error::custom(format!(\
                                 \"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::Error::expected(\"enum representation\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n\
         fn de(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}",
        header = impl_header("Deserialize", item)
    )
}
