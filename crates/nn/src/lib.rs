//! # refil-nn
//!
//! A minimal, dependency-light neural-network substrate written for the
//! RefFiL reproduction: dense `f32` tensors, a reverse-mode autograd tape,
//! the layers the paper's backbone needs (linear, layer norm, multi-head
//! attention, FiLM, embeddings, a residual feature extractor, a frozen patch
//! tokenizer), SGD/Adam optimizers, and composite losses (knowledge
//! distillation, EWC penalty).
//!
//! Everything is deterministic given a seeded [`rand::Rng`]; gradients are
//! validated against finite differences in the test suite.
//!
//! # Examples
//!
//! Train a tiny classifier:
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use refil_nn::{layers::Linear, Graph, Params, Sgd, Tensor};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let model = Linear::new(&mut params, "clf", 2, 2, true, &mut rng);
//! let mut opt = Sgd::new(0.1);
//!
//! for _ in 0..50 {
//!     params.zero_grad();
//!     let g = Graph::new();
//!     let x = g.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]));
//!     let logits = model.forward(&g, &params, x);
//!     let loss = g.cross_entropy(logits, &[0, 1]);
//!     g.backward(loss, &mut params);
//!     opt.step(&mut params);
//! }
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
mod conv;
pub mod gemm;
pub mod gemm_fast;
mod graph;
pub mod infer;
pub mod init;
pub mod layers;
pub mod losses;
pub mod models;
mod optim;
mod params;
#[cfg(test)]
mod proptests;
mod schedule;
mod tensor;

pub use gemm::{kernel_policy, set_kernel_policy, KernelPolicy};
pub use gemm_fast::fast_kernels_available;
pub use graph::{take_scratch_stats, Graph, ScratchStats, Var};
pub use infer::{force_taped, taped_forced, InferenceSession};
pub use optim::{clip_grad_norm, Adam, Sgd};
pub use params::{ParamEntry, ParamId, Params};
pub use schedule::LrSchedule;
pub use tensor::{gaussian, Tensor};
