//! Reverse-mode automatic differentiation on a per-forward-pass tape.
//!
//! A [`Graph`] is a tape of [`Node`]s created by operator methods. Calling
//! [`Graph::backward`] walks the tape in reverse, accumulating gradients into
//! the [`Params`] store for every leaf created with [`Graph::param`].
//!
//! The op set is exactly what the RefFiL models need: dense linear algebra,
//! token-sequence reshaping, layer norm, softmax/cross-entropy and the
//! multi-positive InfoNCE used by the DPCL loss.
//!
//! # Examples
//!
//! ```
//! use refil_nn::{Graph, Params, Tensor};
//!
//! let mut params = Params::new();
//! let w = params.insert("w", Tensor::from_vec(vec![2.0], &[1]), true);
//! let g = Graph::new();
//! let wv = g.param(&params, w);
//! let y = g.mul(wv, wv); // y = w^2, dy/dw = 2w = 4
//! g.backward(y, &mut params);
//! assert_eq!(params.grad(w).data(), &[4.0]);
//! ```

use std::cell::{Cell, RefCell};

use crate::gemm::{dispatch, gemm, gemm_nt, gemm_tn};
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Per-thread scratch-arena accounting: how many buffer-request bytes were
/// served fresh from the allocator vs recycled from a pool, and the
/// high-water mark of bytes parked across all pools on this thread.
///
/// Counters are cumulative per window: harvest-and-reset with
/// [`take_scratch_stats`]. All byte figures count `f32` payload bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Bytes newly allocated because no pooled buffer was available.
    pub reserved_bytes: u64,
    /// Number of fresh allocations behind `reserved_bytes`.
    pub reserved_count: u64,
    /// Bytes served by recycling a pooled buffer.
    pub reused_bytes: u64,
    /// Number of pool hits behind `reused_bytes`.
    pub reused_count: u64,
    /// High-water mark of bytes parked in pools during the window.
    pub peak_pool_bytes: u64,
}

#[derive(Clone, Copy, Default)]
struct StatCell {
    stats: ScratchStats,
    /// Bytes currently parked across all live pools on this thread;
    /// survives [`take_scratch_stats`] so the next window's peak starts
    /// from reality, not zero.
    cur_pool_bytes: u64,
}

thread_local! {
    static SCRATCH_STATS: Cell<StatCell> = const { Cell::new(StatCell {
        stats: ScratchStats {
            reserved_bytes: 0,
            reserved_count: 0,
            reused_bytes: 0,
            reused_count: 0,
            peak_pool_bytes: 0,
        },
        cur_pool_bytes: 0,
    }) };
}

/// Snapshots and resets this thread's [`ScratchStats`] window. The returned
/// peak is at least the bytes still parked in live pools, and the new
/// window's peak starts from that figure.
pub fn take_scratch_stats() -> ScratchStats {
    SCRATCH_STATS.with(|cell| {
        let mut c = cell.get();
        c.stats.peak_pool_bytes = c.stats.peak_pool_bytes.max(c.cur_pool_bytes);
        let snapshot = c.stats;
        c.stats = ScratchStats {
            peak_pool_bytes: c.cur_pool_bytes,
            ..ScratchStats::default()
        };
        cell.set(c);
        snapshot
    })
}

fn note_take(reused: bool, len: usize) {
    SCRATCH_STATS.with(|cell| {
        let mut c = cell.get();
        let bytes = (len * std::mem::size_of::<f32>()) as u64;
        if reused {
            c.stats.reused_bytes += bytes;
            c.stats.reused_count += 1;
        } else {
            c.stats.reserved_bytes += bytes;
            c.stats.reserved_count += 1;
        }
        cell.set(c);
    });
}

fn note_pool_delta(parked_more: bool, cap: usize) {
    SCRATCH_STATS.with(|cell| {
        let mut c = cell.get();
        let bytes = (cap * std::mem::size_of::<f32>()) as u64;
        if parked_more {
            c.cur_pool_bytes += bytes;
            c.stats.peak_pool_bytes = c.stats.peak_pool_bytes.max(c.cur_pool_bytes);
        } else {
            c.cur_pool_bytes = c.cur_pool_bytes.saturating_sub(bytes);
        }
        cell.set(c);
    });
}

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var {
    id: usize,
}

/// Per-graph scratch arena for backward-pass buffers.
///
/// Gradient tensors are consumed as the tape is walked in reverse, so their
/// backing `Vec<f32>`s can be recycled for the gradients of earlier nodes
/// instead of hitting the allocator once per node. Buffers cycle
/// `take_* -> grad tensor -> consumed by the walk -> recycle`, so a steady
/// state backward pass allocates only when a node needs a larger buffer
/// than any freed so far.
#[derive(Default)]
pub(crate) struct Scratch {
    pool: Vec<Vec<f32>>,
}

impl Scratch {
    /// A zero-filled buffer of `len` elements, recycled when possible.
    pub(crate) fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        match self.pool.pop() {
            Some(mut v) => {
                note_pool_delta(false, v.capacity());
                note_take(true, len);
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => {
                note_take(false, len);
                vec![0.0; len]
            }
        }
    }

    /// A buffer holding a copy of `src`, recycled when possible.
    pub(crate) fn take_copied(&mut self, src: &[f32]) -> Vec<f32> {
        match self.pool.pop() {
            Some(mut v) => {
                note_pool_delta(false, v.capacity());
                note_take(true, src.len());
                v.clear();
                v.extend_from_slice(src);
                v
            }
            None => {
                note_take(false, src.len());
                src.to_vec()
            }
        }
    }

    /// An empty buffer with room for `cap` elements (for extend-style
    /// fills), recycled when possible.
    pub(crate) fn take_cleared(&mut self, cap: usize) -> Vec<f32> {
        match self.pool.pop() {
            Some(mut v) => {
                note_pool_delta(false, v.capacity());
                note_take(true, cap);
                v.clear();
                v.reserve(cap);
                v
            }
            None => {
                note_take(false, cap);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub(crate) fn recycle(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 {
            note_pool_delta(true, v.capacity());
            self.pool.push(v);
        }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        // Keep the thread's parked-bytes figure exact when a graph (and its
        // pools) goes away.
        for v in &self.pool {
            note_pool_delta(false, v.capacity());
        }
    }
}

pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[&Tensor], &Tensor, &mut Scratch) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
    param: Option<ParamId>,
}

/// A reverse-mode autodiff tape.
///
/// Build one per forward pass; ops append nodes and [`Graph::backward`]
/// replays them in reverse.
///
/// A graph created with [`Graph::inference`] is a *forward-only plan*: ops
/// compute identical values but record no parent edges and never construct
/// backward closures, and every node's value buffer comes out of a pool
/// refilled by [`Graph::reset`] — so replaying same-shaped batches through
/// one inference graph allocates nothing in steady state.
#[derive(Default)]
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
    scratch: RefCell<Scratch>,
    /// Forward-only mode: no backward closures, pooled value buffers.
    inference: bool,
    /// Pool backing node *values* on inference graphs (distinct from
    /// `scratch`, which backs backward-pass gradient buffers).
    fwd: RefCell<Scratch>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} nodes)", self.nodes.borrow().len())
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a forward-only graph: ops record values but no parent edges
    /// or backward closures, [`Graph::backward`] panics, and
    /// [`Graph::reset`] recycles every node's buffer into a pool reused by
    /// the next forward pass. This is the core of the tape-free inference
    /// engine (see [`crate::infer::InferenceSession`]).
    pub fn inference() -> Self {
        Self {
            inference: true,
            ..Self::default()
        }
    }

    /// Whether this graph is a forward-only (inference) plan.
    pub fn is_inference(&self) -> bool {
        self.inference
    }

    /// Clears the tape so the graph can replay another forward pass. On an
    /// inference graph every node's value buffer is recycled into the
    /// forward pool first, so a replay of the same batch shape allocates
    /// nothing; on a training graph the nodes are simply dropped.
    pub fn reset(&self) {
        let mut nodes = self.nodes.borrow_mut();
        if self.inference {
            let mut fwd = self.fwd.borrow_mut();
            for node in nodes.drain(..) {
                fwd.recycle(node.value.into_vec());
            }
        } else {
            nodes.clear();
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Wraps a backward-closure constructor, skipping it entirely (no box,
    /// no capture) on inference graphs.
    pub(crate) fn bw(&self, f: impl FnOnce() -> BackwardFn) -> Option<BackwardFn> {
        if self.inference {
            None
        } else {
            Some(f())
        }
    }

    /// Parent edges for a new node; empty (non-allocating) on inference
    /// graphs, where no backward walk will ever read them.
    fn deps(&self, ids: &[usize]) -> Vec<usize> {
        if self.inference {
            Vec::new()
        } else {
            ids.to_vec()
        }
    }

    /// A zero-filled forward buffer of `len` elements: pooled on inference
    /// graphs, freshly allocated otherwise.
    pub(crate) fn out_zeroed(&self, len: usize) -> Vec<f32> {
        if self.inference {
            self.fwd.borrow_mut().take_zeroed(len)
        } else {
            vec![0.0; len]
        }
    }

    /// A forward buffer pre-filled with a copy of `src`.
    pub(crate) fn out_copied(&self, src: &[f32]) -> Vec<f32> {
        if self.inference {
            self.fwd.borrow_mut().take_copied(src)
        } else {
            src.to_vec()
        }
    }

    /// An empty forward buffer with room for `cap` elements (for
    /// extend-style fills).
    fn out_cleared(&self, cap: usize) -> Vec<f32> {
        if self.inference {
            self.fwd.borrow_mut().take_cleared(cap)
        } else {
            Vec::with_capacity(cap)
        }
    }

    /// Pooled elementwise map of `a`'s value (same arithmetic and traversal
    /// order as [`Tensor::map`], so results are bit-identical).
    fn unary_value(&self, a: Var, f: impl Fn(f32) -> f32) -> Tensor {
        let nodes = self.nodes.borrow();
        let av = &nodes[a.id].value;
        let mut out = self.out_cleared(av.numel());
        out.extend(av.data().iter().map(|&x| f(x)));
        Tensor::from_vec(out, av.shape())
    }

    /// Pooled elementwise combination of two same-shape values (bit-identical
    /// to [`Tensor::zip`]).
    fn zip_value(&self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let nodes = self.nodes.borrow();
        let (av, bv) = (&nodes[a.id].value, &nodes[b.id].value);
        assert_eq!(av.shape(), bv.shape(), "zip shape mismatch");
        let mut out = self.out_cleared(av.numel());
        out.extend(av.data().iter().zip(bv.data()).map(|(&x, &y)| f(x, y)));
        Tensor::from_vec(out, av.shape())
    }

    /// Pooled row-broadcast combination (bit-identical to the free
    /// `rows_broadcast` helper used by the backward closures).
    fn rows_broadcast_value(&self, x: Var, a: Var, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let nodes = self.nodes.borrow();
        let (xv, av) = (&nodes[x.id].value, &nodes[a.id].value);
        assert_eq!(xv.ndim(), 3, "rows_broadcast expects 3-D x");
        assert_eq!(av.ndim(), 2, "rows_broadcast expects 2-D a");
        let (b, r, c) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
        assert_eq!(av.shape(), [b, c], "rows_broadcast shape mismatch");
        let mut out = self.out_zeroed(xv.numel());
        for bi in 0..b {
            let arow = &av.data()[bi * c..(bi + 1) * c];
            for ri in 0..r {
                let base = (bi * r + ri) * c;
                for ci in 0..c {
                    out[base + ci] = f(xv.data()[base + ci], arow[ci]);
                }
            }
        }
        Tensor::from_vec(out, xv.shape())
    }

    fn push(
        &self,
        value: Tensor,
        parents: Vec<usize>,
        backward: Option<BackwardFn>,
        param: Option<ParamId>,
    ) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node {
            value,
            parents,
            backward,
            param,
        });
        Var { id }
    }

    /// Crate-internal: appends a node whose backward closure (if any) the
    /// caller has already gated through [`Graph::bw`] (used by op extension
    /// modules such as `conv`).
    pub(crate) fn push_node(
        &self,
        value: Tensor,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
    ) -> Var {
        let parents = if self.inference {
            Vec::new()
        } else {
            parents.into_iter().map(|v| v.id).collect()
        };
        self.push(value, parents, backward, None)
    }

    /// Creates a leaf tied to a parameter; gradients flow into `params` on
    /// [`Graph::backward`].
    pub fn param(&self, params: &Params, id: ParamId) -> Var {
        let t = params.value(id);
        let v = if self.inference {
            Tensor::from_vec(self.out_copied(t.data()), t.shape())
        } else {
            t.clone()
        };
        self.push(v, vec![], None, Some(id))
    }

    /// Creates a constant leaf (no gradient).
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(value, vec![], None, None)
    }

    /// Creates a constant leaf holding a copy of `value`. Equivalent to
    /// `constant(value.clone())` but the copy comes out of the forward pool
    /// on inference graphs — use this for per-batch inputs on hot paths.
    pub fn input(&self, value: &Tensor) -> Var {
        let v = Tensor::from_vec(self.out_copied(value.data()), value.shape());
        self.push(v, vec![], None, None)
    }

    /// A copy of the value held by `v`.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.id].value.clone()
    }

    /// Runs `f` against the value of `v` without cloning it.
    pub fn with_value<R>(&self, v: Var, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.nodes.borrow()[v.id].value)
    }

    /// Argmax over the last axis of `v`'s value (no clone of the value).
    pub fn argmax_last(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.id].value.argmax_last()
    }

    /// The shape of `v`.
    pub fn shape(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.id].value.shape().to_vec()
    }

    /// Runs reverse-mode autodiff from the scalar `root`, accumulating
    /// parameter gradients into `params`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a single-element tensor.
    pub fn backward(&self, root: Var, params: &mut Params) {
        assert!(
            !self.inference,
            "backward called on a forward-only inference graph"
        );
        let nodes = self.nodes.borrow();
        let mut scratch = self.scratch.borrow_mut();
        assert_eq!(
            nodes[root.id].value.numel(),
            1,
            "backward root must be scalar, got shape {:?}",
            nodes[root.id].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = Vec::with_capacity(root.id + 1);
        grads.resize_with(root.id + 1, || None);
        grads[root.id] = Some(Tensor::ones(nodes[root.id].value.shape()));
        for i in (0..=root.id).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &nodes[i];
            if let Some(pid) = node.param {
                params.grad_mut(pid).axpy(1.0, &g);
            }
            if let Some(bw) = &node.backward {
                let pvals: Vec<&Tensor> = node.parents.iter().map(|&p| &nodes[p].value).collect();
                let pgrads = bw(&g, &pvals, &node.value, &mut scratch);
                debug_assert_eq!(pgrads.len(), node.parents.len());
                for (&p, pg) in node.parents.iter().zip(pgrads) {
                    match &mut grads[p] {
                        Some(acc) => {
                            acc.axpy(1.0, &pg);
                            scratch.recycle(pg.into_vec());
                        }
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            // The node's own upstream gradient is fully consumed; recycle
            // its buffer for earlier nodes on the tape.
            scratch.recycle(g.into_vec());
        }
    }

    // ---------------------------------------------------------------------
    // Elementwise arithmetic
    // ---------------------------------------------------------------------

    /// Elementwise `a + b` (same shapes).
    pub fn add(&self, a: Var, b: Var) -> Var {
        let v = self.zip_value(a, b, |x, y| x + y);
        self.push(
            v,
            self.deps(&[a.id, b.id]),
            self.bw(|| {
                Box::new(|g, _, _, scr| {
                    vec![
                        Tensor::from_vec(scr.take_copied(g.data()), g.shape()),
                        Tensor::from_vec(scr.take_copied(g.data()), g.shape()),
                    ]
                })
            }),
            None,
        )
    }

    /// Elementwise `a - b` (same shapes).
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let v = self.zip_value(a, b, |x, y| x - y);
        self.push(
            v,
            self.deps(&[a.id, b.id]),
            self.bw(|| {
                Box::new(|g, _, _, scr| {
                    let mut db = scr.take_copied(g.data());
                    for x in &mut db {
                        *x = -*x;
                    }
                    vec![
                        Tensor::from_vec(scr.take_copied(g.data()), g.shape()),
                        Tensor::from_vec(db, g.shape()),
                    ]
                })
            }),
            None,
        )
    }

    /// Elementwise `a * b` (same shapes).
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let v = self.zip_value(a, b, |x, y| x * y);
        self.push(
            v,
            self.deps(&[a.id, b.id]),
            self.bw(|| {
                Box::new(|g, p, _, _scr| {
                    vec![g.zip(p[1], |gi, bi| gi * bi), g.zip(p[0], |gi, ai| gi * ai)]
                })
            }),
            None,
        )
    }

    /// Elementwise `a / b` (same shapes).
    pub fn div(&self, a: Var, b: Var) -> Var {
        let v = self.zip_value(a, b, |x, y| x / y);
        self.push(
            v,
            self.deps(&[a.id, b.id]),
            self.bw(|| {
                Box::new(|g, p, _, _scr| {
                    let da = g.zip(p[1], |gi, bi| gi / bi);
                    let mut db = g.zip(p[0], |gi, ai| gi * ai);
                    db = db.zip(p[1], |x, bi| -x / (bi * bi));
                    vec![da, db]
                })
            }),
            None,
        )
    }

    /// Elementwise negation.
    pub fn neg(&self, a: Var) -> Var {
        let v = self.unary_value(a, |x| -x);
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(|g, _, _, _scr| vec![g.map(|x| -x)])),
            None,
        )
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&self, a: Var, c: f32) -> Var {
        let v = self.unary_value(a, |x| x * c);
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(move |g, _, _, _scr| vec![g.map(|x| x * c)])),
            None,
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, a: Var, c: f32) -> Var {
        let v = self.unary_value(a, |x| x + c);
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| {
                Box::new(|g, _, _, scr| {
                    vec![Tensor::from_vec(scr.take_copied(g.data()), g.shape())]
                })
            }),
            None,
        )
    }

    // ---------------------------------------------------------------------
    // Activations and pointwise nonlinearities
    // ---------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let v = self.unary_value(a, |x| x.max(0.0));
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| {
                Box::new(
                    |g, p, _, _scr| vec![g.zip(p[0], |gi, xi| if xi > 0.0 { gi } else { 0.0 })],
                )
            }),
            None,
        )
    }

    /// Gaussian error linear unit (tanh approximation). Under
    /// [`crate::KernelPolicy::Fast`] the forward value routes to the
    /// vectorized rational-tanh kernel in [`crate::gemm_fast::gelu_fast`]
    /// (libm `tanhf` dominates backbone inference otherwise); the backward
    /// closure keeps the exact derivative in both policies.
    pub fn gelu(&self, a: Var) -> Var {
        let v = if crate::gemm::fast_enabled() {
            let nodes = self.nodes.borrow();
            let av = &nodes[a.id].value;
            let mut out = self.out_cleared(av.numel());
            crate::gemm_fast::gelu_fast(av.data(), &mut out);
            Tensor::from_vec(out, av.shape())
        } else {
            self.unary_value(a, gelu_fwd)
        };
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(|g, p, _, _scr| vec![g.zip(p[0], |gi, xi| gi * gelu_bwd(xi))])),
            None,
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let v = self.unary_value(a, f32::tanh);
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(|g, _, y, _scr| vec![g.zip(y, |gi, yi| gi * (1.0 - yi * yi))])),
            None,
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let v = self.unary_value(a, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(|g, _, y, _scr| vec![g.zip(y, |gi, yi| gi * yi * (1.0 - yi))])),
            None,
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self, a: Var) -> Var {
        let v = self.unary_value(a, f32::exp);
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(|g, _, y, _scr| vec![g.zip(y, |gi, yi| gi * yi)])),
            None,
        )
    }

    /// Elementwise natural log.
    pub fn ln(&self, a: Var) -> Var {
        let v = self.unary_value(a, f32::ln);
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(|g, p, _, _scr| vec![g.zip(p[0], |gi, xi| gi / xi)])),
            None,
        )
    }

    /// Elementwise square root.
    pub fn sqrt(&self, a: Var) -> Var {
        let v = self.unary_value(a, f32::sqrt);
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(|g, _, y, _scr| vec![g.zip(y, |gi, yi| gi / (2.0 * yi))])),
            None,
        )
    }

    // ---------------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------------

    /// 2-D matrix product `a [m,k] x b [k,n]`.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let (av, bv) = (&nodes[a.id].value, &nodes[b.id].value);
            assert_eq!(av.ndim(), 2, "matmul lhs must be 2-D, got {:?}", av.shape());
            assert_eq!(bv.ndim(), 2, "matmul rhs must be 2-D, got {:?}", bv.shape());
            let (m, k) = (av.shape()[0], av.shape()[1]);
            let (k2, n) = (bv.shape()[0], bv.shape()[1]);
            assert_eq!(
                k,
                k2,
                "matmul inner dim mismatch: {:?} x {:?}",
                av.shape(),
                bv.shape()
            );
            let mut out = self.out_zeroed(m * n);
            dispatch(av.data(), bv.data(), &mut out, m, k, n);
            Tensor::from_vec(out, &[m, n])
        };
        self.push(
            v,
            self.deps(&[a.id, b.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    // da = g · bᵀ and db = aᵀ · g through the layout-aware
                    // kernels: no transposed copies, same accumulation order.
                    let (m, k) = (p[0].shape()[0], p[0].shape()[1]);
                    let n = p[1].shape()[1];
                    let mut da = scr.take_zeroed(m * k);
                    gemm_nt(g.data(), p[1].data(), &mut da, m, n, k);
                    let mut db = scr.take_zeroed(k * n);
                    gemm_tn(p[0].data(), g.data(), &mut db, k, m, n);
                    vec![
                        Tensor::from_vec(da, p[0].shape()),
                        Tensor::from_vec(db, p[1].shape()),
                    ]
                })
            }),
            None,
        )
    }

    /// 2-D product with the right operand read transposed in place:
    /// `a [m,k] x bt [n,k] -> [m,n]` without materializing `btᵀ`.
    ///
    /// Byte-identical to `matmul(a, transpose_last(bt))` — per-element
    /// accumulation order is unchanged — but skips the transpose copy and
    /// its tape node. Used for similarity matrices (`x · cᵀ`).
    pub fn matmul_nt(&self, a: Var, bt: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let (av, bv) = (&nodes[a.id].value, &nodes[bt.id].value);
            assert_eq!(av.ndim(), 2, "matmul_nt lhs must be 2-D");
            assert_eq!(bv.ndim(), 2, "matmul_nt rhs must be 2-D");
            let (m, k) = (av.shape()[0], av.shape()[1]);
            let (n, k2) = (bv.shape()[0], bv.shape()[1]);
            assert_eq!(k, k2, "matmul_nt inner dim mismatch");
            let mut out = self.out_zeroed(m * n);
            gemm_nt(av.data(), bv.data(), &mut out, m, k, n);
            Tensor::from_vec(out, &[m, n])
        };
        self.push(
            v,
            self.deps(&[a.id, bt.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    let (m, k) = (p[0].shape()[0], p[0].shape()[1]);
                    let n = p[1].shape()[0];
                    // da = g · bt (plain product); dbt = gᵀ · a.
                    let mut da = scr.take_zeroed(m * k);
                    gemm(g.data(), p[1].data(), &mut da, m, n, k);
                    let mut dbt = scr.take_zeroed(n * k);
                    gemm_tn(g.data(), p[0].data(), &mut dbt, n, m, k);
                    vec![
                        Tensor::from_vec(da, p[0].shape()),
                        Tensor::from_vec(dbt, p[1].shape()),
                    ]
                })
            }),
            None,
        )
    }

    /// Batched 3-D matrix product `a [b,m,k] x b [b,k,n]`.
    pub fn bmm(&self, a: Var, b: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let (av, bv) = (&nodes[a.id].value, &nodes[b.id].value);
            assert_eq!(av.ndim(), 3, "bmm lhs must be 3-D, got {:?}", av.shape());
            assert_eq!(bv.ndim(), 3, "bmm rhs must be 3-D, got {:?}", bv.shape());
            let (bb, m, k) = (av.shape()[0], av.shape()[1], av.shape()[2]);
            let (bb2, k2, n) = (bv.shape()[0], bv.shape()[1], bv.shape()[2]);
            assert_eq!(bb, bb2, "bmm batch mismatch");
            assert_eq!(k, k2, "bmm inner dim mismatch");
            let mut out = self.out_zeroed(bb * m * n);
            for bi in 0..bb {
                dispatch(
                    &av.data()[bi * m * k..(bi + 1) * m * k],
                    &bv.data()[bi * k * n..(bi + 1) * k * n],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            Tensor::from_vec(out, &[bb, m, n])
        };
        self.push(
            v,
            self.deps(&[a.id, b.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    let (bb, m, k) = (p[0].shape()[0], p[0].shape()[1], p[0].shape()[2]);
                    let n = p[1].shape()[2];
                    let mut da = scr.take_zeroed(bb * m * k);
                    let mut db = scr.take_zeroed(bb * k * n);
                    for bi in 0..bb {
                        let gs = &g.data()[bi * m * n..(bi + 1) * m * n];
                        let avs = &p[0].data()[bi * m * k..(bi + 1) * m * k];
                        let bvs = &p[1].data()[bi * k * n..(bi + 1) * k * n];
                        gemm_nt(gs, bvs, &mut da[bi * m * k..(bi + 1) * m * k], m, n, k);
                        gemm_tn(avs, gs, &mut db[bi * k * n..(bi + 1) * k * n], k, m, n);
                    }
                    vec![
                        Tensor::from_vec(da, p[0].shape()),
                        Tensor::from_vec(db, p[1].shape()),
                    ]
                })
            }),
            None,
        )
    }

    /// Batched product with the right operand read transposed in place:
    /// `a [b,m,k] x bt [b,n,k] -> [b,m,n]` without materializing `btᵀ`.
    ///
    /// Byte-identical to `bmm(a, transpose_last(bt))`; used for attention
    /// scores `q · kᵀ` so no transposed copy of `k` is ever built.
    pub fn bmm_nt(&self, a: Var, bt: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let (av, bv) = (&nodes[a.id].value, &nodes[bt.id].value);
            assert_eq!(av.ndim(), 3, "bmm_nt lhs must be 3-D");
            assert_eq!(bv.ndim(), 3, "bmm_nt rhs must be 3-D");
            let (bb, m, k) = (av.shape()[0], av.shape()[1], av.shape()[2]);
            let (bb2, n, k2) = (bv.shape()[0], bv.shape()[1], bv.shape()[2]);
            assert_eq!(bb, bb2, "bmm_nt batch mismatch");
            assert_eq!(k, k2, "bmm_nt inner dim mismatch");
            let mut out = self.out_zeroed(bb * m * n);
            for bi in 0..bb {
                gemm_nt(
                    &av.data()[bi * m * k..(bi + 1) * m * k],
                    &bv.data()[bi * n * k..(bi + 1) * n * k],
                    &mut out[bi * m * n..(bi + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            Tensor::from_vec(out, &[bb, m, n])
        };
        self.push(
            v,
            self.deps(&[a.id, bt.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    let (bb, m, k) = (p[0].shape()[0], p[0].shape()[1], p[0].shape()[2]);
                    let n = p[1].shape()[1];
                    let mut da = scr.take_zeroed(bb * m * k);
                    let mut dbt = scr.take_zeroed(bb * n * k);
                    for bi in 0..bb {
                        let gs = &g.data()[bi * m * n..(bi + 1) * m * n];
                        let avs = &p[0].data()[bi * m * k..(bi + 1) * m * k];
                        let bvs = &p[1].data()[bi * n * k..(bi + 1) * n * k];
                        gemm(gs, bvs, &mut da[bi * m * k..(bi + 1) * m * k], m, n, k);
                        gemm_tn(gs, avs, &mut dbt[bi * n * k..(bi + 1) * n * k], n, m, k);
                    }
                    vec![
                        Tensor::from_vec(da, p[0].shape()),
                        Tensor::from_vec(dbt, p[1].shape()),
                    ]
                })
            }),
            None,
        )
    }

    /// Applies the same matrix to every token: `x [b,t,d] x w [d,e] -> [b,t,e]`.
    pub fn matmul_tokens(&self, x: Var, w: Var) -> Var {
        let (b, t, d) = {
            let s = self.shape(x);
            assert_eq!(s.len(), 3, "matmul_tokens expects 3-D input, got {s:?}");
            (s[0], s[1], s[2])
        };
        let e = self.shape(w)[1];
        let flat = self.reshape(x, &[b * t, d]);
        let out = self.matmul(flat, w);
        self.reshape(out, &[b, t, e])
    }

    /// Applies the same matrix to every *last-axis-transposed* token slice:
    /// `x [b,s,d] x w [s,h] -> [b,d,h]`, computing `x_bᵀ · w` per batch via
    /// `gemm_tn` without materializing the `[b,d,s]` transpose.
    ///
    /// Byte-identical to `matmul_tokens(transpose_last(x), w)` in both the
    /// forward and backward passes: every output (and gradient) element is
    /// accumulated over the same ascending-k chain the explicit-transpose
    /// composite runs, just read through a strided layout.
    pub fn matmul_tn_tokens(&self, x: Var, w: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let (xv, wv) = (&nodes[x.id].value, &nodes[w.id].value);
            assert_eq!(
                xv.ndim(),
                3,
                "matmul_tn_tokens expects 3-D input, got {:?}",
                xv.shape()
            );
            assert_eq!(wv.ndim(), 2, "matmul_tn_tokens weight must be 2-D");
            let (b, s, d) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
            let (s2, h) = (wv.shape()[0], wv.shape()[1]);
            assert_eq!(
                s,
                s2,
                "matmul_tn_tokens inner dim mismatch: {:?} x {:?}",
                xv.shape(),
                wv.shape()
            );
            let mut out = self.out_zeroed(b * d * h);
            for bi in 0..b {
                gemm_tn(
                    &xv.data()[bi * s * d..(bi + 1) * s * d],
                    wv.data(),
                    &mut out[bi * d * h..(bi + 1) * d * h],
                    d,
                    s,
                    h,
                );
            }
            Tensor::from_vec(out, &[b, d, h])
        };
        self.push(
            v,
            self.deps(&[x.id, w.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    let (b, s, d) = (p[0].shape()[0], p[0].shape()[1], p[0].shape()[2]);
                    let h = p[1].shape()[1];
                    let mut dx = scr.take_zeroed(b * s * d);
                    let mut dw = scr.take_zeroed(s * h);
                    for bi in 0..b {
                        let gs = &g.data()[bi * d * h..(bi + 1) * d * h];
                        let xs = &p[0].data()[bi * s * d..(bi + 1) * s * d];
                        // dx_b = w · g_bᵀ  (layout-aware, no transposed copy);
                        // dw  += x_b · g_b, accumulated batch-by-batch in the
                        // same (batch, row) order as the flattened composite.
                        gemm_nt(
                            p[1].data(),
                            gs,
                            &mut dx[bi * s * d..(bi + 1) * s * d],
                            s,
                            h,
                            d,
                        );
                        gemm(xs, gs, &mut dw[..], s, d, h);
                    }
                    vec![
                        Tensor::from_vec(dx, p[0].shape()),
                        Tensor::from_vec(dw, p[1].shape()),
                    ]
                })
            }),
            None,
        )
    }

    /// Transposes the last two axes.
    pub fn transpose_last(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let av = &nodes[a.id].value;
            assert!(av.ndim() >= 2, "transpose requires >= 2 dims");
            let nd = av.ndim();
            let (r, c) = (av.shape()[nd - 2], av.shape()[nd - 1]);
            let batch: usize = av.shape()[..nd - 2].iter().product();
            // Output-major fill: sequential writes (no zero-fill pass), the
            // strided accesses land on the read side where they are cheaper.
            let mut data = self.out_cleared(av.numel());
            for bi in 0..batch {
                let src = &av.data()[bi * r * c..(bi + 1) * r * c];
                for j in 0..c {
                    data.extend((0..r).map(|i| src[i * c + j]));
                }
            }
            let mut shape = av.shape().to_vec();
            shape.swap(nd - 2, nd - 1);
            Tensor::from_vec(data, &shape)
        };
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(|g, _, _, _scr| vec![g.transpose_last()])),
            None,
        )
    }

    /// Reshapes (element order unchanged).
    pub fn reshape(&self, a: Var, shape: &[usize]) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let av = &nodes[a.id].value;
            let numel: usize = shape.iter().product();
            assert_eq!(
                numel,
                av.numel(),
                "reshape numel mismatch: {:?} -> {:?}",
                av.shape(),
                shape
            );
            Tensor::from_vec(self.out_copied(av.data()), shape)
        };
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    vec![Tensor::from_vec(scr.take_copied(g.data()), p[0].shape())]
                })
            }),
            None,
        )
    }

    /// Swaps axes 1 and 2 of a 4-D tensor (`[a,b,c,d] -> [a,c,b,d]`);
    /// used to split/merge attention heads. Self-inverse.
    pub fn permute_0213(&self, a: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let av = &nodes[a.id].value;
            let s = av.shape();
            let (sa, sb, sc, sd) = (s[0], s[1], s[2], s[3]);
            // Output-major fill: sequential writes of contiguous `d`-runs
            // with no zero-fill pass (the permutation keeps the last axis
            // contiguous on both sides).
            let mut out = self.out_cleared(av.numel());
            for ai in 0..sa {
                for ci in 0..sc {
                    for bi in 0..sb {
                        let src = ((ai * sb + bi) * sc + ci) * sd;
                        out.extend_from_slice(&av.data()[src..src + sd]);
                    }
                }
            }
            Tensor::from_vec(out, &[sa, sc, sb, sd])
        };
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| Box::new(|g, _, _, _scr| vec![permute_0213_tensor(g)])),
            None,
        )
    }

    // ---------------------------------------------------------------------
    // Broadcasting helpers
    // ---------------------------------------------------------------------

    /// Adds a `[d]` bias to every trailing row of `x [..., d]`.
    pub fn add_bias(&self, x: Var, bias: Var) -> Var {
        let v = {
            let nodes = self.nodes.borrow();
            let xv = &nodes[x.id].value;
            let bv = &nodes[bias.id].value;
            let d = *xv.shape().last().expect("add_bias on 0-d tensor");
            assert_eq!(bv.shape(), [d], "bias shape mismatch");
            // Single-pass fill (same adds as copy-then-accumulate, so
            // bit-identical) instead of a full copy traversal followed by a
            // read-modify-write one.
            let mut out = self.out_cleared(xv.numel());
            for row in xv.data().chunks(d) {
                out.extend(row.iter().zip(bv.data()).map(|(&x, &b)| x + b));
            }
            Tensor::from_vec(out, xv.shape())
        };
        self.push(
            v,
            self.deps(&[x.id, bias.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    let d = *p[1].shape().last().expect("bias shape");
                    let mut db = scr.take_zeroed(d);
                    for row in g.data().chunks(d) {
                        for (acc, &gi) in db.iter_mut().zip(row) {
                            *acc += gi;
                        }
                    }
                    vec![
                        Tensor::from_vec(scr.take_copied(g.data()), g.shape()),
                        Tensor::from_vec(db, &[d]),
                    ]
                })
            }),
            None,
        )
    }

    /// FiLM-style scaling: `x [b,r,c] * a [b,c]`, broadcasting `a` over rows.
    pub fn mul_rows_broadcast(&self, x: Var, a: Var) -> Var {
        let v = self.rows_broadcast_value(x, a, |xi, ai| xi * ai);
        self.push(
            v,
            self.deps(&[x.id, a.id]),
            self.bw(|| {
                Box::new(|g, p, _, _scr| {
                    let dx = rows_broadcast(g, p[1], |gi, ai| gi * ai);
                    let da = rows_broadcast_reduce(g, p[0], |gi, xi| gi * xi);
                    vec![dx, da]
                })
            }),
            None,
        )
    }

    /// FiLM-style shifting: `x [b,r,c] + a [b,c]`, broadcasting `a` over rows.
    pub fn add_rows_broadcast(&self, x: Var, a: Var) -> Var {
        let v = self.rows_broadcast_value(x, a, |xi, ai| xi + ai);
        self.push(
            v,
            self.deps(&[x.id, a.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    let da = rows_broadcast_reduce(g, p[0], |gi, _| gi);
                    vec![Tensor::from_vec(scr.take_copied(g.data()), g.shape()), da]
                })
            }),
            None,
        )
    }

    // ---------------------------------------------------------------------
    // Shape surgery
    // ---------------------------------------------------------------------

    /// Concatenates same-rank tensors along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty, ranks differ, or non-`axis` dims differ.
    pub fn concat(&self, items: &[Var], axis: usize) -> Var {
        assert!(!items.is_empty(), "concat of zero vars");
        let (value, sizes) = {
            let nodes = self.nodes.borrow();
            let first = nodes[items[0].id].value.shape().to_vec();
            let rank = first.len();
            assert!(
                axis < rank,
                "concat axis {axis} out of range for rank {rank}"
            );
            let mut axis_total = 0usize;
            let mut sizes = Vec::with_capacity(items.len());
            for &it in items {
                let s = nodes[it.id].value.shape();
                assert_eq!(s.len(), rank, "concat rank mismatch");
                for (d, (&a, &b)) in s.iter().zip(&first).enumerate() {
                    if d != axis {
                        assert_eq!(a, b, "concat non-axis dim mismatch at dim {d}");
                    }
                }
                sizes.push(s[axis]);
                axis_total += s[axis];
            }
            let outer: usize = first[..axis].iter().product();
            let inner: usize = first[axis + 1..].iter().product();
            let mut shape = first.clone();
            shape[axis] = axis_total;
            let mut data = self.out_zeroed(outer * axis_total * inner);
            let mut offset = 0usize;
            for (&it, &sz) in items.iter().zip(&sizes) {
                let src = nodes[it.id].value.data();
                for o in 0..outer {
                    let dst_start = (o * axis_total + offset) * inner;
                    let src_start = o * sz * inner;
                    data[dst_start..dst_start + sz * inner]
                        .copy_from_slice(&src[src_start..src_start + sz * inner]);
                }
                offset += sz;
            }
            (Tensor::from_vec(data, &shape), sizes)
        };
        let axis_c = axis;
        let parent_ids: Vec<usize> = items.iter().map(|v| v.id).collect();
        self.push(
            value,
            self.deps(&parent_ids),
            self.bw(move || {
                Box::new(move |g, p, _, scr| {
                    let gshape = g.shape();
                    let outer: usize = gshape[..axis_c].iter().product();
                    let inner: usize = gshape[axis_c + 1..].iter().product();
                    let axis_total = gshape[axis_c];
                    let mut grads = Vec::with_capacity(sizes.len());
                    let mut offset = 0usize;
                    for (i, &sz) in sizes.iter().enumerate() {
                        let mut data = scr.take_zeroed(outer * sz * inner);
                        for o in 0..outer {
                            let src_start = (o * axis_total + offset) * inner;
                            let dst_start = o * sz * inner;
                            data[dst_start..dst_start + sz * inner]
                                .copy_from_slice(&g.data()[src_start..src_start + sz * inner]);
                        }
                        grads.push(Tensor::from_vec(data, p[i].shape()));
                        offset += sz;
                    }
                    grads
                })
            }),
            None,
        )
    }

    /// Slices `len` elements starting at `start` along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, x: Var, axis: usize, start: usize, len: usize) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let xv = &nodes[x.id].value;
            let shape = xv.shape();
            assert!(axis < shape.len(), "slice axis out of range");
            assert!(start + len <= shape[axis], "slice range out of bounds");
            let outer: usize = shape[..axis].iter().product();
            let inner: usize = shape[axis + 1..].iter().product();
            let ax = shape[axis];
            let mut out_shape = shape.to_vec();
            out_shape[axis] = len;
            let mut data = self.out_zeroed(outer * len * inner);
            for o in 0..outer {
                let src_start = (o * ax + start) * inner;
                let dst_start = o * len * inner;
                data[dst_start..dst_start + len * inner]
                    .copy_from_slice(&xv.data()[src_start..src_start + len * inner]);
            }
            Tensor::from_vec(data, &out_shape)
        };
        self.push(
            value,
            self.deps(&[x.id]),
            self.bw(|| {
                Box::new(move |g, p, _, scr| {
                    let shape = p[0].shape();
                    let outer: usize = shape[..axis].iter().product();
                    let inner: usize = shape[axis + 1..].iter().product();
                    let ax = shape[axis];
                    let mut data = scr.take_zeroed(p[0].numel());
                    for o in 0..outer {
                        let dst_start = (o * ax + start) * inner;
                        let src_start = o * len * inner;
                        data[dst_start..dst_start + len * inner]
                            .copy_from_slice(&g.data()[src_start..src_start + len * inner]);
                    }
                    vec![Tensor::from_vec(data, shape)]
                })
            }),
            None,
        )
    }

    /// Gathers rows of a `[v, d]` matrix by index (embedding lookup).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not 2-D or any index is out of bounds.
    pub fn embedding(&self, weight: Var, indices: &[usize]) -> Var {
        let idx: Vec<usize> = indices.to_vec();
        let value = {
            let nodes = self.nodes.borrow();
            let w = &nodes[weight.id].value;
            assert_eq!(w.ndim(), 2, "embedding weight must be 2-D");
            let (v, d) = (w.shape()[0], w.shape()[1]);
            let mut data = self.out_cleared(idx.len() * d);
            for &i in &idx {
                assert!(i < v, "embedding index {i} out of bounds for vocab {v}");
                data.extend_from_slice(&w.data()[i * d..(i + 1) * d]);
            }
            Tensor::from_vec(data, &[idx.len(), d])
        };
        self.push(
            value,
            self.deps(&[weight.id]),
            self.bw(|| {
                Box::new(move |g, p, _, scr| {
                    let d = p[0].shape()[1];
                    let mut dw = scr.take_zeroed(p[0].numel());
                    for (row, &i) in idx.iter().enumerate() {
                        let grow = &g.data()[row * d..(row + 1) * d];
                        let dwrow = &mut dw[i * d..(i + 1) * d];
                        for (a, &b) in dwrow.iter_mut().zip(grow) {
                            *a += b;
                        }
                    }
                    vec![Tensor::from_vec(dw, p[0].shape())]
                })
            }),
            None,
        )
    }

    // ---------------------------------------------------------------------
    // Reductions and normalizations
    // ---------------------------------------------------------------------

    /// Sum of all elements, as a `[1]` tensor.
    pub fn sum_all(&self, a: Var) -> Var {
        let v = {
            let sum = self.nodes.borrow()[a.id].value.sum();
            let mut d = self.out_cleared(1);
            d.push(sum);
            Tensor::from_vec(d, &[1])
        };
        self.push(
            v,
            self.deps(&[a.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    let mut d = scr.take_zeroed(p[0].numel());
                    d.fill(g.data()[0]);
                    vec![Tensor::from_vec(d, p[0].shape())]
                })
            }),
            None,
        )
    }

    /// Mean of all elements, as a `[1]` tensor.
    pub fn mean_all(&self, a: Var) -> Var {
        let n = self.nodes.borrow()[a.id].value.numel() as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }

    /// Mean over the token axis: `x [b,t,d] -> [b,d]`.
    pub fn mean_tokens(&self, x: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let xv = &nodes[x.id].value;
            assert_eq!(xv.ndim(), 3, "mean_tokens expects 3-D input");
            let (b, t, d) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
            let mut data = self.out_zeroed(b * d);
            for bi in 0..b {
                for ti in 0..t {
                    let row = &xv.data()[(bi * t + ti) * d..(bi * t + ti + 1) * d];
                    let acc = &mut data[bi * d..(bi + 1) * d];
                    for (a, &r) in acc.iter_mut().zip(row) {
                        *a += r;
                    }
                }
            }
            let inv = 1.0 / t as f32;
            for a in &mut data {
                *a *= inv;
            }
            Tensor::from_vec(data, &[b, d])
        };
        self.push(
            value,
            self.deps(&[x.id]),
            self.bw(|| {
                Box::new(|g, p, _, scr| {
                    let (b, t, d) = (p[0].shape()[0], p[0].shape()[1], p[0].shape()[2]);
                    let inv = 1.0 / t as f32;
                    let mut data = scr.take_zeroed(b * t * d);
                    for bi in 0..b {
                        let grow = &g.data()[bi * d..(bi + 1) * d];
                        for ti in 0..t {
                            let dst = &mut data[(bi * t + ti) * d..(bi * t + ti + 1) * d];
                            for (a, &r) in dst.iter_mut().zip(grow) {
                                *a = r * inv;
                            }
                        }
                    }
                    vec![Tensor::from_vec(data, p[0].shape())]
                })
            }),
            None,
        )
    }

    /// Numerically-stable softmax over the last axis.
    pub fn softmax_last(&self, a: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let xv = &nodes[a.id].value;
            let mut out = self.out_zeroed(xv.numel());
            softmax_last_into(xv, &mut out);
            Tensor::from_vec(out, xv.shape())
        };
        self.push(
            value,
            self.deps(&[a.id]),
            self.bw(|| {
                Box::new(|g, _, y, scr| {
                    let d = *y.shape().last().expect("softmax 0-d");
                    let mut out = scr.take_zeroed(y.numel());
                    for ((orow, grow), yrow) in out
                        .chunks_mut(d)
                        .zip(g.data().chunks(d))
                        .zip(y.data().chunks(d))
                    {
                        let dot: f32 = grow.iter().zip(yrow).map(|(gi, yi)| gi * yi).sum();
                        for ((o, &gi), &yi) in orow.iter_mut().zip(grow).zip(yrow) {
                            *o = (gi - dot) * yi;
                        }
                    }
                    vec![Tensor::from_vec(out, y.shape())]
                })
            }),
            None,
        )
    }

    /// Numerically-stable log-softmax over the last axis.
    pub fn log_softmax_last(&self, a: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let xv = &nodes[a.id].value;
            let d = *xv.shape().last().expect("log_softmax 0-d");
            let mut out = self.out_zeroed(xv.numel());
            for (orow, xrow) in out.chunks_mut(d).zip(xv.data().chunks(d)) {
                let m = xrow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = m + xrow.iter().map(|x| (x - m).exp()).sum::<f32>().ln();
                for (o, &x) in orow.iter_mut().zip(xrow) {
                    *o = x - lse;
                }
            }
            Tensor::from_vec(out, xv.shape())
        };
        self.push(
            value,
            self.deps(&[a.id]),
            self.bw(|| {
                Box::new(|g, _, y, scr| {
                    let d = *y.shape().last().expect("log_softmax 0-d");
                    let mut out = scr.take_zeroed(y.numel());
                    for ((orow, grow), yrow) in out
                        .chunks_mut(d)
                        .zip(g.data().chunks(d))
                        .zip(y.data().chunks(d))
                    {
                        let gsum: f32 = grow.iter().sum();
                        for ((o, &gi), &yi) in orow.iter_mut().zip(grow).zip(yrow) {
                            *o = gi - yi.exp() * gsum;
                        }
                    }
                    vec![Tensor::from_vec(out, y.shape())]
                })
            }),
            None,
        )
    }

    /// Layer normalization over the last axis with learned gain and bias.
    ///
    /// `x [..., d]`, `gain [d]`, `bias [d]`.
    pub fn layer_norm(&self, x: Var, gain: Var, bias: Var, eps: f32) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let xv = &nodes[x.id].value;
            let gv = &nodes[gain.id].value;
            let bv = &nodes[bias.id].value;
            let d = *xv.shape().last().expect("layer_norm 0-d");
            assert_eq!(gv.shape(), [d], "layer_norm gain shape");
            assert_eq!(bv.shape(), [d], "layer_norm bias shape");
            let mut out = self.out_zeroed(xv.numel());
            for (orow, xrow) in out.chunks_mut(d).zip(xv.data().chunks(d)) {
                let mu = xrow.iter().sum::<f32>() / d as f32;
                let var = xrow.iter().map(|x| (x - mu) * (x - mu)).sum::<f32>() / d as f32;
                let inv = 1.0 / (var + eps).sqrt();
                for (j, (o, &x)) in orow.iter_mut().zip(xrow).enumerate() {
                    *o = gv.data()[j] * (x - mu) * inv + bv.data()[j];
                }
            }
            Tensor::from_vec(out, xv.shape())
        };
        self.push(
            value,
            self.deps(&[x.id, gain.id, bias.id]),
            self.bw(|| {
                Box::new(move |g, p, _, scr| {
                    let xv = p[0];
                    let gv = p[1];
                    let d = *xv.shape().last().expect("layer_norm 0-d");
                    let df = d as f32;
                    let mut dx = scr.take_zeroed(xv.numel());
                    let mut dgain = scr.take_zeroed(d);
                    let mut dbias = scr.take_zeroed(d);
                    // Per-row work buffers, reused across rows (fully overwritten).
                    let mut xhat = scr.take_zeroed(d);
                    let mut dxhat = scr.take_zeroed(d);
                    for (rowi, (xrow, grow)) in
                        xv.data().chunks(d).zip(g.data().chunks(d)).enumerate()
                    {
                        let mu = xrow.iter().sum::<f32>() / df;
                        let var = xrow.iter().map(|x| (x - mu) * (x - mu)).sum::<f32>() / df;
                        let inv = 1.0 / (var + eps).sqrt();
                        // xhat_j = (x_j - mu) * inv; dy_j flows through gain.
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        for j in 0..d {
                            xhat[j] = (xrow[j] - mu) * inv;
                            dxhat[j] = grow[j] * gv.data()[j];
                            sum_dxhat += dxhat[j];
                            sum_dxhat_xhat += dxhat[j] * xhat[j];
                            dgain[j] += grow[j] * xhat[j];
                            dbias[j] += grow[j];
                        }
                        let dst = &mut dx[rowi * d..(rowi + 1) * d];
                        for j in 0..d {
                            dst[j] =
                                inv / df * (df * dxhat[j] - sum_dxhat - xhat[j] * sum_dxhat_xhat);
                        }
                    }
                    scr.recycle(xhat);
                    scr.recycle(dxhat);
                    vec![
                        Tensor::from_vec(dx, xv.shape()),
                        Tensor::from_vec(dgain, &[d]),
                        Tensor::from_vec(dbias, &[d]),
                    ]
                })
            }),
            None,
        )
    }

    /// L2-normalizes each row of a 2-D tensor.
    pub fn row_l2_normalize(&self, x: Var) -> Var {
        const EPS: f32 = 1e-8;
        let value = {
            let nodes = self.nodes.borrow();
            let xv = &nodes[x.id].value;
            assert_eq!(xv.ndim(), 2, "row_l2_normalize expects 2-D input");
            let d = xv.shape()[1];
            let mut out = self.out_zeroed(xv.numel());
            for (orow, xrow) in out.chunks_mut(d).zip(xv.data().chunks(d)) {
                let n = xrow.iter().map(|x| x * x).sum::<f32>().sqrt().max(EPS);
                for (o, &x) in orow.iter_mut().zip(xrow) {
                    *o = x / n;
                }
            }
            Tensor::from_vec(out, xv.shape())
        };
        self.push(
            value,
            self.deps(&[x.id]),
            self.bw(|| {
                Box::new(|g, p, y, scr| {
                    let d = p[0].shape()[1];
                    let mut out = scr.take_zeroed(p[0].numel());
                    for ((orow, grow), (xrow, yrow)) in out
                        .chunks_mut(d)
                        .zip(g.data().chunks(d))
                        .zip(p[0].data().chunks(d).zip(y.data().chunks(d)))
                    {
                        let n = xrow.iter().map(|x| x * x).sum::<f32>().sqrt().max(EPS);
                        let gy: f32 = grow.iter().zip(yrow).map(|(gi, yi)| gi * yi).sum();
                        for ((o, &gi), &yi) in orow.iter_mut().zip(grow).zip(yrow) {
                            *o = (gi - yi * gy) / n;
                        }
                    }
                    vec![Tensor::from_vec(out, p[0].shape())]
                })
            }),
            None,
        )
    }

    // ---------------------------------------------------------------------
    // Losses
    // ---------------------------------------------------------------------

    /// Mean cross-entropy between `logits [b,k]` and integer `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != b` or any target is out of range.
    pub fn cross_entropy(&self, logits: Var, targets: &[usize]) -> Var {
        let tg: Vec<usize> = targets.to_vec();
        let value = {
            let nodes = self.nodes.borrow();
            let lv = &nodes[logits.id].value;
            assert_eq!(lv.ndim(), 2, "cross_entropy expects 2-D logits");
            let (b, k) = (lv.shape()[0], lv.shape()[1]);
            assert_eq!(tg.len(), b, "targets length mismatch");
            let mut loss = 0.0f32;
            for (row, &t) in lv.data().chunks(k).zip(&tg) {
                assert!(t < k, "target {t} out of range for {k} classes");
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = m + row.iter().map(|x| (x - m).exp()).sum::<f32>().ln();
                loss += lse - row[t];
            }
            let mut d = self.out_cleared(1);
            d.push(loss / b as f32);
            Tensor::from_vec(d, &[1])
        };
        self.push(
            value,
            self.deps(&[logits.id]),
            self.bw(|| {
                Box::new(move |g, p, _, _scr| {
                    let (b, k) = (p[0].shape()[0], p[0].shape()[1]);
                    let gs = g.data()[0] / b as f32;
                    let mut dl = softmax_last_tensor(p[0]);
                    for (row, &t) in dl.data_mut().chunks_mut(k).zip(&tg) {
                        row[t] -= 1.0;
                        for x in row.iter_mut() {
                            *x *= gs;
                        }
                    }
                    vec![dl]
                })
            }),
            None,
        )
    }

    /// Multi-positive InfoNCE over similarity `logits [b,m]`.
    ///
    /// For each row `i`, `positives[i]` lists the positive columns;
    /// the loss is the mean of `-log(sum_pos exp / sum_all exp)`.
    ///
    /// # Panics
    ///
    /// Panics if `positives.len() != b`, any row's positive set is empty,
    /// or an index is out of range.
    pub fn multi_positive_nce(&self, logits: Var, positives: &[Vec<usize>]) -> Var {
        let pos: Vec<Vec<usize>> = positives.to_vec();
        let value = {
            let nodes = self.nodes.borrow();
            let lv = &nodes[logits.id].value;
            assert_eq!(lv.ndim(), 2, "multi_positive_nce expects 2-D logits");
            let (b, m) = (lv.shape()[0], lv.shape()[1]);
            assert_eq!(pos.len(), b, "positives length mismatch");
            let mut loss = 0.0f32;
            for (row, ps) in lv.data().chunks(m).zip(&pos) {
                assert!(!ps.is_empty(), "each row needs at least one positive");
                let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let denom: f32 = row.iter().map(|x| (x - mx).exp()).sum();
                let numer: f32 = ps
                    .iter()
                    .map(|&j| {
                        assert!(j < m, "positive index {j} out of range");
                        (row[j] - mx).exp()
                    })
                    .sum();
                loss -= (numer / denom).ln();
            }
            let mut d = self.out_cleared(1);
            d.push(loss / b as f32);
            Tensor::from_vec(d, &[1])
        };
        self.push(
            value,
            self.deps(&[logits.id]),
            self.bw(|| {
                Box::new(move |g, p, _, scr| {
                    let (b, m) = (p[0].shape()[0], p[0].shape()[1]);
                    let gs = g.data()[0] / b as f32;
                    let mut out = scr.take_zeroed(b * m);
                    // Per-row exp buffer, reused across rows (fully overwritten).
                    let mut exps = scr.take_zeroed(m);
                    for ((orow, row), ps) in out.chunks_mut(m).zip(p[0].data().chunks(m)).zip(&pos)
                    {
                        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        for (e, &x) in exps.iter_mut().zip(row) {
                            *e = (x - mx).exp();
                        }
                        let denom: f32 = exps.iter().sum();
                        let numer: f32 = ps.iter().map(|&j| exps[j]).sum();
                        for j in 0..m {
                            let soft = exps[j] / denom;
                            let pos_soft = if ps.contains(&j) {
                                exps[j] / numer
                            } else {
                                0.0
                            };
                            orow[j] = gs * (soft - pos_soft);
                        }
                    }
                    scr.recycle(exps);
                    vec![Tensor::from_vec(out, p[0].shape())]
                })
            }),
            None,
        )
    }

    /// Inverted dropout: zeroes each element with probability `p` and scales
    /// survivors by `1/(1-p)`, so activations keep their expectation. The
    /// mask is sampled eagerly from `rng` and reused in the backward pass.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn dropout<R: rand::Rng>(&self, x: Var, p: f32, rng: &mut R) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        if p == 0.0 {
            return x;
        }
        let keep = 1.0 - p;
        let mask: Vec<f32> = {
            let nodes = self.nodes.borrow();
            (0..nodes[x.id].value.numel())
                .map(|_| {
                    if rng.gen::<f32>() < p {
                        0.0
                    } else {
                        1.0 / keep
                    }
                })
                .collect()
        };
        let value = {
            let nodes = self.nodes.borrow();
            let xv = &nodes[x.id].value;
            let mut data = self.out_cleared(xv.numel());
            data.extend(xv.data().iter().zip(&mask).map(|(&a, &m)| a * m));
            Tensor::from_vec(data, xv.shape())
        };
        self.push(
            value,
            self.deps(&[x.id]),
            self.bw(|| {
                Box::new(move |g, _, _, _scr| {
                    let data: Vec<f32> =
                        g.data().iter().zip(&mask).map(|(&gi, &m)| gi * m).collect();
                    vec![Tensor::from_vec(data, g.shape())]
                })
            }),
            None,
        )
    }

    /// Mean squared error against a constant target.
    pub fn mse_against(&self, x: Var, target: &Tensor) -> Var {
        let t = self.constant(target.clone());
        let d = self.sub(x, t);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }
}

/// The tanh-approximated GELU used by the MLP layers.
fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let dinner = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

fn softmax_last_tensor(x: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; x.numel()];
    softmax_last_into(x, &mut out);
    Tensor::from_vec(out, x.shape())
}

/// Writes the last-axis softmax of `x` into `out` (caller-provided buffer,
/// same arithmetic as [`softmax_last_tensor`]).
fn softmax_last_into(x: &Tensor, out: &mut [f32]) {
    let d = *x.shape().last().expect("softmax on 0-d tensor");
    for (orow, xrow) in out.chunks_mut(d).zip(x.data().chunks(d)) {
        let m = xrow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (o, &xv) in orow.iter_mut().zip(xrow) {
            *o = (xv - m).exp();
            sum += *o;
        }
        for o in orow.iter_mut() {
            *o /= sum;
        }
    }
}

/// `[a,b,c,d] -> [a,c,b,d]`.
fn permute_0213_tensor(x: &Tensor) -> Tensor {
    let mut out = vec![0.0f32; x.numel()];
    permute_0213_into(x, &mut out);
    let s = x.shape();
    Tensor::from_vec(out, &[s[0], s[2], s[1], s[3]])
}

/// Writes the 0213-permutation of `x` into `out` (same layout as
/// [`permute_0213_tensor`], but against a caller-provided buffer).
fn permute_0213_into(x: &Tensor, out: &mut [f32]) {
    assert_eq!(
        x.ndim(),
        4,
        "permute_0213 expects 4-D input, got {:?}",
        x.shape()
    );
    let (a, b, c, d) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    for ai in 0..a {
        for bi in 0..b {
            for ci in 0..c {
                let src = ((ai * b + bi) * c + ci) * d;
                let dst = ((ai * c + ci) * b + bi) * d;
                out[dst..dst + d].copy_from_slice(&x.data()[src..src + d]);
            }
        }
    }
}

/// Applies `f(x[b,r,c], a[b,c])` broadcasting `a` over the row axis.
fn rows_broadcast(x: &Tensor, a: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(x.ndim(), 3, "rows_broadcast expects 3-D x");
    assert_eq!(a.ndim(), 2, "rows_broadcast expects 2-D a");
    let (b, r, c) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert_eq!(a.shape(), [b, c], "rows_broadcast shape mismatch");
    let mut out = vec![0.0f32; x.numel()];
    for bi in 0..b {
        let arow = &a.data()[bi * c..(bi + 1) * c];
        for ri in 0..r {
            let base = (bi * r + ri) * c;
            for ci in 0..c {
                out[base + ci] = f(x.data()[base + ci], arow[ci]);
            }
        }
    }
    Tensor::from_vec(out, x.shape())
}

/// Reduces `f(g[b,r,c], x[b,r,c])` over the row axis into a `[b,c]` tensor.
fn rows_broadcast_reduce(g: &Tensor, x: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    let (b, r, c) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = vec![0.0f32; b * c];
    for bi in 0..b {
        for ri in 0..r {
            let base = (bi * r + ri) * c;
            for ci in 0..c {
                out[bi * c + ci] += f(g.data()[base + ci], x.data()[base + ci]);
            }
        }
    }
    Tensor::from_vec(out, &[b, c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numeric-vs-analytic gradient check for a scalar function of params.
    fn grad_check(
        params: &mut Params,
        ids: &[ParamId],
        f: &dyn Fn(&Graph, &Params) -> Var,
        tol: f32,
    ) {
        params.zero_grad();
        let g = Graph::new();
        let loss = f(&g, params);
        g.backward(loss, params);
        let analytic: Vec<Tensor> = ids.iter().map(|&id| params.grad(id).clone()).collect();

        let eps = 1e-3f32;
        for (pi, &id) in ids.iter().enumerate() {
            for j in 0..params.value(id).numel() {
                let orig = params.value(id).data()[j];
                params.value_mut(id).data_mut()[j] = orig + eps;
                let gp = Graph::new();
                let lp = gp.value(f(&gp, params)).data()[0];
                params.value_mut(id).data_mut()[j] = orig - eps;
                let gm = Graph::new();
                let lm = gm.value(f(&gm, params)).data()[0];
                params.value_mut(id).data_mut()[j] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let got = analytic[pi].data()[j];
                assert!(
                    (numeric - got).abs() < tol * (1.0 + numeric.abs()),
                    "param {pi} elem {j}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn add_mul_scalar_chain() {
        let mut params = Params::new();
        let a = params.insert("a", Tensor::from_vec(vec![3.0], &[1]), true);
        let b = params.insert("b", Tensor::from_vec(vec![4.0], &[1]), true);
        let g = Graph::new();
        let av = g.param(&params, a);
        let bv = g.param(&params, b);
        let prod = g.mul(av, bv);
        let y = g.add(prod, av); // y = ab + a
        assert_eq!(g.value(y).data(), &[15.0]);
        g.backward(y, &mut params);
        assert_eq!(params.grad(a).data(), &[5.0]); // b + 1
        assert_eq!(params.grad(b).data(), &[3.0]); // a
    }

    #[test]
    fn matmul_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let a = params.insert("a", Tensor::randn(&[2, 3], 1.0, &mut rng), true);
        let b = params.insert("b", Tensor::randn(&[3, 2], 1.0, &mut rng), true);
        grad_check(
            &mut params,
            &[a, b],
            &|g, p| {
                let av = g.param(p, p.id("a").unwrap());
                let bv = g.param(p, p.id("b").unwrap());
                let c = g.matmul(av, bv);
                let sq = g.mul(c, c);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn bmm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let a = params.insert("a", Tensor::randn(&[2, 2, 3], 0.5, &mut rng), true);
        let b = params.insert("b", Tensor::randn(&[2, 3, 2], 0.5, &mut rng), true);
        grad_check(
            &mut params,
            &[a, b],
            &|g, p| {
                let av = g.param(p, p.id("a").unwrap());
                let bv = g.param(p, p.id("b").unwrap());
                let c = g.bmm(av, bv);
                let t = g.tanh(c);
                g.sum_all(t)
            },
            1e-2,
        );
    }

    #[test]
    fn activations_gradcheck() {
        let mut params = Params::new();
        let x = params.insert(
            "x",
            // Avoid 0.0 exactly: ReLU is non-differentiable there.
            Tensor::from_vec(vec![-1.5, -0.3, 0.2, 1.7, 0.4, 2.5], &[6]),
            true,
        );
        for act in ["relu", "gelu", "tanh", "sigmoid", "exp"] {
            grad_check(
                &mut params,
                &[x],
                &|g, p| {
                    let xv = g.param(p, p.id("x").unwrap());
                    let y = match act {
                        "relu" => g.relu(xv),
                        "gelu" => g.gelu(xv),
                        "tanh" => g.tanh(xv),
                        "sigmoid" => g.sigmoid(xv),
                        _ => g.exp(xv),
                    };
                    g.sum_all(y)
                },
                2e-2,
            );
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0],
            &[2, 3],
        ));
        let s = g.value(g.softmax_last(x));
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_gradcheck() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 4], 1.0, &mut rng), true);
        grad_check(
            &mut params,
            &[x],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let s = g.softmax_last(xv);
                let sq = g.mul(s, s);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn log_softmax_gradcheck() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[3, 4], 1.0, &mut rng), true);
        grad_check(
            &mut params,
            &[x],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let s = g.log_softmax_last(xv);
                let w = g.mul(s, s);
                g.mean_all(w)
            },
            1e-2,
        );
    }

    #[test]
    fn layer_norm_normalizes() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]));
        let gain = g.constant(Tensor::ones(&[4]));
        let bias = g.constant(Tensor::zeros(&[4]));
        let y = g.value(g.layer_norm(x, gain, bias, 1e-5));
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_gradcheck() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 5], 1.0, &mut rng), true);
        let gain = params.insert("gain", Tensor::rand_uniform(&[5], 0.5, 1.5, &mut rng), true);
        let bias = params.insert("bias", Tensor::randn(&[5], 0.2, &mut rng), true);
        grad_check(
            &mut params,
            &[x, gain, bias],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let gv = g.param(p, p.id("gain").unwrap());
                let bv = g.param(p, p.id("bias").unwrap());
                let y = g.layer_norm(xv, gv, bv, 1e-5);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let g = Graph::new();
        let logits = g.constant(Tensor::from_vec(
            vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0],
            &[2, 3],
        ));
        let loss = g.value(g.cross_entropy(logits, &[0, 1])).data()[0];
        let l0 = -(2.0f32.exp() / (2.0f32.exp() + 2.0)).ln();
        let l1 = -(3.0f32.exp() / (3.0f32.exp() + 2.0)).ln();
        assert!((loss - (l0 + l1) / 2.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[3, 4], 1.0, &mut rng), true);
        grad_check(
            &mut params,
            &[x],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                g.cross_entropy(xv, &[1, 3, 0])
            },
            1e-2,
        );
    }

    #[test]
    fn multi_positive_nce_reduces_to_ce() {
        // With exactly one positive per row, NCE equals cross-entropy.
        let g = Graph::new();
        let data = Tensor::from_vec(vec![0.5, -0.2, 0.9, 1.0, 0.0, -1.0], &[2, 3]);
        let l1 = g.constant(data.clone());
        let l2 = g.constant(data);
        let nce = g
            .value(g.multi_positive_nce(l1, &[vec![2], vec![0]]))
            .data()[0];
        let ce = g.value(g.cross_entropy(l2, &[2, 0])).data()[0];
        assert!((nce - ce).abs() < 1e-5);
    }

    #[test]
    fn multi_positive_nce_gradcheck() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 5], 1.0, &mut rng), true);
        grad_check(
            &mut params,
            &[x],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                g.multi_positive_nce(xv, &[vec![0, 2], vec![4]])
            },
            1e-2,
        );
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let g = Graph::new();
        let a = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = g.constant(Tensor::from_vec(vec![5.0, 6.0], &[2, 1]));
        let c = g.concat(&[a, b], 1);
        assert_eq!(g.shape(c), vec![2, 3]);
        assert_eq!(g.value(c).data(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
        let s = g.slice(c, 1, 2, 1);
        assert_eq!(g.value(s).data(), &[5.0, 6.0]);
    }

    #[test]
    fn concat_gradcheck() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut params = Params::new();
        let a = params.insert("a", Tensor::randn(&[2, 2], 1.0, &mut rng), true);
        let b = params.insert("b", Tensor::randn(&[2, 3], 1.0, &mut rng), true);
        grad_check(
            &mut params,
            &[a, b],
            &|g, p| {
                let av = g.param(p, p.id("a").unwrap());
                let bv = g.param(p, p.id("b").unwrap());
                let c = g.concat(&[av, bv], 1);
                let sl = g.slice(c, 1, 1, 3);
                let sq = g.mul(sl, sl);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn embedding_gradcheck() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut params = Params::new();
        let w = params.insert("w", Tensor::randn(&[4, 3], 1.0, &mut rng), true);
        grad_check(
            &mut params,
            &[w],
            &|g, p| {
                let wv = g.param(p, p.id("w").unwrap());
                let e = g.embedding(wv, &[1, 3, 1]);
                let sq = g.mul(e, e);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn broadcast_ops_gradcheck() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 3, 4], 0.5, &mut rng), true);
        let a = params.insert("a", Tensor::randn(&[2, 4], 0.5, &mut rng), true);
        grad_check(
            &mut params,
            &[x, a],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let av = g.param(p, p.id("a").unwrap());
                let m = g.mul_rows_broadcast(xv, av);
                let s = g.add_rows_broadcast(m, av);
                let t = g.tanh(s);
                g.sum_all(t)
            },
            2e-2,
        );
    }

    #[test]
    fn add_bias_gradcheck() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 3], 0.5, &mut rng), true);
        let b = params.insert("b", Tensor::randn(&[3], 0.5, &mut rng), true);
        grad_check(
            &mut params,
            &[x, b],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let bv = g.param(p, p.id("b").unwrap());
                let y = g.add_bias(xv, bv);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn row_l2_normalize_unit_norm_and_gradcheck() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![3.0, 4.0, 0.0, 5.0], &[2, 2]));
        let y = g.value(g.row_l2_normalize(x));
        for row in y.data().chunks(2) {
            let n: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }

        let mut rng = StdRng::seed_from_u64(12);
        let mut params = Params::new();
        let xp = params.insert("x", Tensor::randn(&[2, 3], 1.0, &mut rng), true);
        grad_check(
            &mut params,
            &[xp],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let y = g.row_l2_normalize(xv);
                let c = g.constant(Tensor::from_vec(
                    vec![1.0, 0.5, -0.5, 0.2, 0.3, 0.9],
                    &[2, 3],
                ));
                let m = g.mul(y, c);
                g.sum_all(m)
            },
            2e-2,
        );
    }

    #[test]
    fn permute_0213_self_inverse() {
        let mut rng = StdRng::seed_from_u64(13);
        let t = Tensor::randn(&[2, 3, 4, 5], 1.0, &mut rng);
        let g = Graph::new();
        let v = g.constant(t.clone());
        let p = g.permute_0213(v);
        assert_eq!(g.shape(p), vec![2, 4, 3, 5]);
        let pp = g.permute_0213(p);
        assert_eq!(g.value(pp), t);
    }

    #[test]
    fn mean_tokens_gradcheck() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 3, 4], 1.0, &mut rng), true);
        grad_check(
            &mut params,
            &[x],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let m = g.mean_tokens(xv);
                let sq = g.mul(m, m);
                g.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn dropout_preserves_expectation_and_masks_gradient() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::ones(&[1000]), true);
        let g = Graph::new();
        let xv = g.param(&params, x);
        let y = g.dropout(xv, 0.3, &mut rng);
        let mean = g.value(y).mean();
        assert!((mean - 1.0).abs() < 0.1, "dropout mean {mean}");
        let s = g.sum_all(y);
        g.backward(s, &mut params);
        // Gradient is the same mask: zeros where dropped, 1/keep elsewhere.
        let grads = params.grad(x);
        let zeros = grads.data().iter().filter(|&&v| v == 0.0).count();
        assert!((200..400).contains(&zeros), "dropped {zeros}/1000");
        for &v in grads.data() {
            assert!(v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = g.dropout(x, 0.0, &mut rng);
        assert_eq!(g.value(y).data(), &[1.0, 2.0]);
    }

    #[test]
    fn gradient_accumulates_over_shared_subexpression() {
        let mut params = Params::new();
        let a = params.insert("a", Tensor::from_vec(vec![2.0], &[1]), true);
        let g = Graph::new();
        let av = g.param(&params, a);
        let s = g.add(av, av); // 2a -> da = 2
        let y = g.mul(s, av); // 2a^2 -> dy/da = 4a = 8
        g.backward(y, &mut params);
        assert_eq!(params.grad(a).data(), &[8.0]);
    }

    #[test]
    fn backward_twice_accumulates_param_grads() {
        let mut params = Params::new();
        let a = params.insert("a", Tensor::from_vec(vec![3.0], &[1]), true);
        for _ in 0..2 {
            let g = Graph::new();
            let av = g.param(&params, a);
            let y = g.mul(av, av);
            g.backward(y, &mut params);
        }
        assert_eq!(params.grad(a).data(), &[12.0]); // 2 * (2a)
    }

    #[test]
    fn matmul_tn_tokens_matches_transpose_composite_bitwise() {
        // Forward values AND parameter gradients must be byte-identical to
        // the explicit transpose_last + matmul_tokens composite.
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(&[3, 5, 4], 1.0, &mut rng);
        let wt = Tensor::randn(&[5, 6], 0.5, &mut rng);

        let run = |fused: bool, params: &mut Params| -> (Tensor, Tensor, Tensor) {
            let xid = params.id("x").unwrap();
            let wid = params.id("w").unwrap();
            params.zero_grad();
            let g = Graph::new();
            let xv = g.param(params, xid);
            let wv = g.param(params, wid);
            let y = if fused {
                g.matmul_tn_tokens(xv, wv)
            } else {
                let t = g.transpose_last(xv);
                g.matmul_tokens(t, wv)
            };
            let out = g.value(y);
            let loss = g.sum_all(g.mul(y, y));
            g.backward(loss, params);
            (out, params.grad(xid).clone(), params.grad(wid).clone())
        };

        let mut params = Params::new();
        params.insert("x", x, true);
        params.insert("w", wt, true);
        let (y_ref, dx_ref, dw_ref) = run(false, &mut params);
        let (y_got, dx_got, dw_got) = run(true, &mut params);
        assert_eq!(y_got.shape(), &[3, 4, 6]);
        assert_eq!(y_got.data(), y_ref.data());
        assert_eq!(dx_got.data(), dx_ref.data());
        assert_eq!(dw_got.data(), dw_ref.data());
    }

    #[test]
    fn matmul_tn_tokens_gradcheck() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 4, 3], 0.5, &mut rng), true);
        let w = params.insert("w", Tensor::randn(&[4, 5], 0.5, &mut rng), true);
        grad_check(
            &mut params,
            &[x, w],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let wv = g.param(p, p.id("w").unwrap());
                let y = g.matmul_tn_tokens(xv, wv);
                let t = g.tanh(y);
                g.sum_all(t)
            },
            2e-2,
        );
    }

    #[test]
    fn inference_graph_values_match_training_graph() {
        // One composite forward touching most op families, replayed twice on
        // a single inference graph and compared bitwise against the tape.
        let mut rng = StdRng::seed_from_u64(17);
        let mut params = Params::new();
        let w = params.insert("w", Tensor::randn(&[4, 4], 0.7, &mut rng), true);
        let gain = params.insert("gain", Tensor::ones(&[4]), true);
        let _bias = params.insert("bias", Tensor::zeros(&[4]), true);
        let x = Tensor::randn(&[3, 4], 1.0, &mut rng);

        let build = |g: &Graph, params: &Params, x: &Tensor| -> Tensor {
            let wv = g.param(params, params.id("w").unwrap());
            let gv = g.param(params, params.id("gain").unwrap());
            let bv = g.param(params, params.id("bias").unwrap());
            let xv = g.input(x);
            let h = g.matmul(xv, wv);
            let h = g.layer_norm(h, gv, bv, 1e-5);
            let h = g.gelu(h);
            let h = g.softmax_last(h);
            g.value(h)
        };

        let reference = {
            let g = Graph::new();
            build(&g, &params, &x)
        };
        let g = Graph::inference();
        for _ in 0..3 {
            let got = build(&g, &params, &x);
            assert_eq!(got.data(), reference.data());
            assert_eq!(g.len() > 0, true);
            g.reset();
            assert!(g.is_empty());
        }
    }

    #[test]
    fn scratch_stats_count_reserve_reuse_and_peak() {
        let _ = take_scratch_stats(); // open a clean window
        let mut scratch = Scratch::default();
        let a = scratch.take_zeroed(8); // miss: 32 bytes reserved
        scratch.recycle(a); // 32 bytes parked
        let b = scratch.take_zeroed(4); // hit: 16 bytes reused
        scratch.recycle(b);
        drop(scratch);
        let stats = take_scratch_stats();
        assert_eq!(stats.reserved_count, 1);
        assert_eq!(stats.reserved_bytes, 32);
        assert_eq!(stats.reused_count, 1);
        assert_eq!(stats.reused_bytes, 16);
        assert!(
            stats.peak_pool_bytes >= 32,
            "peak {}",
            stats.peak_pool_bytes
        );
        // The window reset: a fresh snapshot shows no flows, and the peak
        // reflects only still-parked bytes (none — the arena was dropped).
        let fresh = take_scratch_stats();
        assert_eq!(fresh.reserved_count, 0);
        assert_eq!(fresh.reused_count, 0);
    }

    #[test]
    fn inference_replay_reuses_buffers_per_scratch_stats() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut params = Params::new();
        params.insert("w", Tensor::randn(&[4, 4], 0.1, &mut rng), true);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let g = Graph::inference();
        let run = |g: &Graph| {
            let wv = g.param(&params, params.id("w").unwrap());
            let xv = g.input(&x);
            let h = g.matmul(xv, wv);
            let _ = g.value(h);
            g.reset();
        };
        run(&g); // warm the value pool
        let _ = take_scratch_stats();
        run(&g);
        let stats = take_scratch_stats();
        assert!(
            stats.reused_count > 0,
            "steady-state replay must hit the pool: {stats:?}"
        );
        assert_eq!(
            stats.reserved_count, 0,
            "steady-state replay must not allocate: {stats:?}"
        );
    }
}
