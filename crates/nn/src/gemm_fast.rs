//! FP-contracted SIMD GEMM microkernels — the `KernelPolicy::Fast` path.
//!
//! The default kernels in [`crate::gemm`] deliberately forgo hardware FMA:
//! their contract is bit-identity with the naive ascending-`k` chain, and
//! `a.mul_add(b, c)` rounds once where `a * b + c` rounds twice, so a
//! contracted kernel cannot reproduce the oracle bit-for-bit. PR 3 measured
//! the cost of that contract: the tiled kernels are no-FMA bound.
//!
//! This module is the opt-in escape: explicit `std::arch` microkernels
//! using fused multiply-add over 8-lane (`__m256`, AVX2+FMA) or 4-lane
//! (`float32x4_t`, NEON) accumulator tiles. On targets without those
//! features the entry points fall back to the bit-exact kernels, so `Fast`
//! is always *at least* as accurate as advisory.
//!
//! # Numerical contract (documented, tested)
//!
//! [`gemm_fast`] and [`gemm_tn_fast`] keep one accumulator chain per
//! output element in ascending `k` order — the oracle's association —
//! but fuse each multiply-add; [`gemm_nt_fast`] reduces each dot product
//! over fixed SIMD lanes before a fixed-order horizontal sum, whose
//! running-sum error is no worse than the sequential chain's. Fast and
//! bit-exact results therefore both lie within the classic `k`-term
//! accumulation bound of the exact real product, giving
//!
//! ```text
//! |fast(i,j) − bitexact(i,j)| ≤ 2k · ε · (|seed(i,j)| + Σ_p |a[i,p] · b[p,j]|)
//! ```
//!
//! with `ε = 2⁻²³` (`f32::EPSILON`) and `seed` the accumulate-on-top
//! initial value of `out` — roughly "within `2k` ULP at the accumulated
//! magnitude". The proptests in `crates/nn/tests/fast_kernels.rs` enforce
//! exactly this bound for all three layouts and the conv lowering.
//! Crucially the fast path is still **deterministic**: a fixed shape
//! always takes the same instruction sequence, so results are run-to-run
//! and thread-count stable — only the bit-pattern relative to the no-FMA
//! oracle differs.

#[cfg(target_arch = "x86_64")]
use std::arch::is_x86_feature_detected;

/// Whether this machine has a real fast path (`AVX2+FMA` on x86_64, NEON on
/// aarch64). When false, the `*_fast` entry points delegate to the
/// bit-exact kernels and `KernelPolicy::Fast` changes nothing.
pub fn fast_kernels_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true // NEON is baseline on aarch64.
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// `out += a · b` (row-major `a [m,k]`, `b [k,n]`) through the contracted
/// microkernel, falling back to the bit-exact [`crate::gemm::gemm`] when no
/// SIMD path exists.
pub fn gemm_fast(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if fast_kernels_available() {
        // SAFETY: feature presence just checked.
        unsafe { x86::gemm_avx2_fma(a, b, out, m, k, n) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { neon::gemm_neon(a, b, out, m, k, n) };
        return;
    }
    #[allow(unreachable_code)]
    crate::gemm::gemm(a, b, out, m, k, n)
}

/// `out += a · btᵀ` (`bt` stored `[n,k]`) through the contracted
/// microkernel — both operand rows are contiguous along `k`, so this is a
/// lane-parallel dot product per output element.
pub fn gemm_nt_fast(a: &[f32], bt: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if fast_kernels_available() {
        // SAFETY: feature presence just checked.
        unsafe { x86::gemm_nt_avx2_fma(a, bt, out, m, k, n) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { neon::gemm_nt_neon(a, bt, out, m, k, n) };
        return;
    }
    #[allow(unreachable_code)]
    crate::gemm::gemm_nt(a, bt, out, m, k, n)
}

/// `out += atᵀ · b` (`at` stored `[k,m]`) through the contracted
/// microkernel — same broadcast-row structure as [`gemm_fast`] with the
/// broadcast drawn from `at[p]`.
pub fn gemm_tn_fast(at: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if fast_kernels_available() {
        // SAFETY: feature presence just checked.
        unsafe { x86::gemm_tn_avx2_fma(at, b, out, m, k, n) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { neon::gemm_tn_neon(at, b, out, m, k, n) };
        return;
    }
    #[allow(unreachable_code)]
    crate::gemm::gemm_tn(at, b, out, m, k, n)
}

// ---------------------------------------------------------------------------
// Fast tanh-GELU
// ---------------------------------------------------------------------------

/// `sqrt(2/π)` — must match `graph::gelu_fwd`'s constant exactly so the two
/// policies approximate the *same* function.
const GELU_C: f32 = 0.797_884_6;
/// Cubic coefficient of the tanh-GELU argument.
const GELU_K: f32 = 0.044_715;
/// `tanh` saturates to ±1 (in f32) well before this; the rational
/// approximation below is a minimax fit on `[-TANH_CLAMP, TANH_CLAMP]` and
/// arguments are clamped into that interval first.
const TANH_CLAMP: f32 = 7.905_311_5;

// Degree-13/6 rational minimax fit of `tanh` on `[-TANH_CLAMP, TANH_CLAMP]`
// (the classic Cephes-lineage fit used by Eigen's `ptanh`). Odd numerator
// `x · P(x²)`, even denominator `Q(x²)`.
#[allow(clippy::excessive_precision)]
mod tanh_poly {
    pub const A1: f32 = 4.89352455891786e-3;
    pub const A3: f32 = 6.37261928875436e-4;
    pub const A5: f32 = 1.48572235717979e-5;
    pub const A7: f32 = 5.12229709037114e-8;
    pub const A9: f32 = -8.60467152213735e-11;
    pub const A11: f32 = 2.00018790482477e-13;
    pub const A13: f32 = -2.76076847742355e-16;
    pub const B0: f32 = 4.89352518554385e-3;
    pub const B2: f32 = 2.26843463243900e-3;
    pub const B4: f32 = 1.18534705686654e-4;
    pub const B6: f32 = 1.19825839466702e-6;
}

/// Rational `tanh` with fused Horner steps. Mirrors the AVX2 lane code
/// operation-for-operation so a value produces the same bits whether it
/// lands in a SIMD lane or the scalar tail.
#[inline]
fn tanh_rational(x: f32) -> f32 {
    use tanh_poly::*;
    let z = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let z2 = z * z;
    let p = A13;
    let p = p.mul_add(z2, A11);
    let p = p.mul_add(z2, A9);
    let p = p.mul_add(z2, A7);
    let p = p.mul_add(z2, A5);
    let p = p.mul_add(z2, A3);
    let p = p.mul_add(z2, A1);
    let p = p * z;
    let q = B6;
    let q = q.mul_add(z2, B4);
    let q = q.mul_add(z2, B2);
    let q = q.mul_add(z2, B0);
    p / q
}

/// Scalar fast GELU: `0.5·x·(1 + tanh_rational(C·(x + 0.044715·x³)))` with
/// the same contraction pattern as the vector path.
#[inline]
pub fn gelu_fma(x: f32) -> f32 {
    let x2 = x * x;
    let inner = GELU_C * (GELU_K * x2).mul_add(x, x);
    (0.5 * x) * (1.0 + tanh_rational(inner))
}

/// Fast tanh-GELU over a slice, appended to `out`.
///
/// Replaces the libm `tanhf` in `graph::gelu_fwd` — the single most
/// expensive call in backbone inference on this profile — with the rational
/// fit above, vectorized 8-wide under AVX2+FMA. Error contract (checked by
/// a dense grid test and proptest in `crates/nn/tests/fast_kernels.rs`):
///
/// ```text
/// |gelu_fast(x) − gelu_fwd(x)| ≤ 1e-6 · (1 + |x|)    for finite x
/// ```
///
/// and the result is deterministic: equal inputs produce equal bits
/// regardless of slice position (lane vs. tail), because the scalar tail
/// uses the identical fused operation sequence.
pub fn gelu_fast(src: &[f32], out: &mut Vec<f32>) {
    #[cfg(target_arch = "x86_64")]
    if fast_kernels_available() {
        // SAFETY: feature presence just checked.
        unsafe { x86::gelu_avx2_fma(src, out) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { neon::gelu_neon(src, out) };
        return;
    }
    // Any FMA-native baseline without a vector path: `mul_add` lowers to a
    // fused instruction, so the scalar loop is already fast.
    #[allow(unreachable_code)]
    out.extend(src.iter().map(|&x| gelu_fma(x)));
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };

    /// Rows per microkernel call: 4 rows × 2 vectors = 8 `ymm` accumulators,
    /// leaving half the register file for broadcasts and loads (an 8×2 tile
    /// would spill).
    const MRF: usize = 4;
    /// Accumulator lanes per row: two 8-lane vectors.
    const NRF: usize = 16;

    /// Contracted `out += a · b`. Inside a `target_feature(fma)` function
    /// scalar `f32::mul_add` also lowers to a fused instruction, so the
    /// edge loops are contracted too — one code path per shape, which is
    /// what makes the kernel deterministic.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm_avx2_fma(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let mut j = 0;
        while j + NRF <= n {
            let mut i = 0;
            while i + MRF <= m {
                let mut acc = [[_mm256_set1_ps(0.0); 2]; MRF];
                for (r, accr) in acc.iter_mut().enumerate() {
                    let o = out.as_ptr().add((i + r) * n + j);
                    accr[0] = _mm256_loadu_ps(o);
                    accr[1] = _mm256_loadu_ps(o.add(8));
                }
                for p in 0..k {
                    let bp = b.as_ptr().add(p * n + j);
                    let b0 = _mm256_loadu_ps(bp);
                    let b1 = _mm256_loadu_ps(bp.add(8));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*a.get_unchecked((i + r) * k + p));
                        accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                        accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let o = out.as_mut_ptr().add((i + r) * n + j);
                    _mm256_storeu_ps(o, accr[0]);
                    _mm256_storeu_ps(o.add(8), accr[1]);
                }
                i += MRF;
            }
            // Row remainder: one row at a time, same two-vector width.
            while i < m {
                let o = out.as_mut_ptr().add(i * n + j);
                let mut acc0 = _mm256_loadu_ps(o);
                let mut acc1 = _mm256_loadu_ps(o.add(8));
                for p in 0..k {
                    let bp = b.as_ptr().add(p * n + j);
                    let av = _mm256_set1_ps(*a.get_unchecked(i * k + p));
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(8)), acc1);
                }
                _mm256_storeu_ps(o, acc0);
                _mm256_storeu_ps(o.add(8), acc1);
                i += 1;
            }
            j += NRF;
        }
        // Column tail, single-vector stage (8 ≤ remaining cols < 16): the
        // same broadcast structure with one accumulator per row, so narrow
        // matrices (e.g. a 10-class classifier head) still run vectorized.
        if j + 8 <= n {
            let mut i = 0;
            while i + MRF <= m {
                let mut acc = [_mm256_set1_ps(0.0); MRF];
                for (r, accr) in acc.iter_mut().enumerate() {
                    *accr = _mm256_loadu_ps(out.as_ptr().add((i + r) * n + j));
                }
                for p in 0..k {
                    let b0 = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*a.get_unchecked((i + r) * k + p));
                        *accr = _mm256_fmadd_ps(av, b0, *accr);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    _mm256_storeu_ps(out.as_mut_ptr().add((i + r) * n + j), *accr);
                }
                i += MRF;
            }
            while i < m {
                let o = out.as_mut_ptr().add(i * n + j);
                let mut acc0 = _mm256_loadu_ps(o);
                for p in 0..k {
                    let av = _mm256_set1_ps(*a.get_unchecked(i * k + p));
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b.as_ptr().add(p * n + j)), acc0);
                }
                _mm256_storeu_ps(o, acc0);
                i += 1;
            }
            j += 8;
        }
        // Column tail (< 8 lanes): scalar fused chains per element.
        if j < n {
            for i in 0..m {
                for jj in j..n {
                    let mut acc = *out.get_unchecked(i * n + jj);
                    for p in 0..k {
                        acc = a
                            .get_unchecked(i * k + p)
                            .mul_add(*b.get_unchecked(p * n + jj), acc);
                    }
                    *out.get_unchecked_mut(i * n + jj) = acc;
                }
            }
        }
    }

    /// Contracted `out += a · btᵀ`: per output element a lane-parallel dot
    /// product over `k` with a fixed-order horizontal reduction (pairwise
    /// vector add, then left-to-right lane sum) — deterministic for a
    /// given `k`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm_nt_avx2_fma(
        a: &[f32],
        bt: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let arow = a.as_ptr().add(i * k);
            for j in 0..n {
                let brow = bt.as_ptr().add(j * k);
                let mut acc0 = _mm256_set1_ps(0.0);
                let mut acc1 = _mm256_set1_ps(0.0);
                let mut p = 0;
                while p + 16 <= k {
                    acc0 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(arow.add(p)),
                        _mm256_loadu_ps(brow.add(p)),
                        acc0,
                    );
                    acc1 = _mm256_fmadd_ps(
                        _mm256_loadu_ps(arow.add(p + 8)),
                        _mm256_loadu_ps(brow.add(p + 8)),
                        acc1,
                    );
                    p += 16;
                }
                let mut dot = hsum(acc0) + hsum(acc1);
                while p < k {
                    dot = arow.add(p).read().mul_add(brow.add(p).read(), dot);
                    p += 1;
                }
                *out.get_unchecked_mut(i * n + j) += dot;
            }
        }
    }

    /// Contracted `out += atᵀ · b`: broadcast `at[p, i..]`, ride `b[p]`
    /// rows — the [`gemm_avx2_fma`] structure with the transposed-left
    /// indexing.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm_tn_avx2_fma(
        at: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let mut j = 0;
        while j + NRF <= n {
            let mut i = 0;
            while i + MRF <= m {
                let mut acc = [[_mm256_set1_ps(0.0); 2]; MRF];
                for (r, accr) in acc.iter_mut().enumerate() {
                    let o = out.as_ptr().add((i + r) * n + j);
                    accr[0] = _mm256_loadu_ps(o);
                    accr[1] = _mm256_loadu_ps(o.add(8));
                }
                for p in 0..k {
                    let bp = b.as_ptr().add(p * n + j);
                    let b0 = _mm256_loadu_ps(bp);
                    let b1 = _mm256_loadu_ps(bp.add(8));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*at.get_unchecked(p * m + i + r));
                        accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                        accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let o = out.as_mut_ptr().add((i + r) * n + j);
                    _mm256_storeu_ps(o, accr[0]);
                    _mm256_storeu_ps(o.add(8), accr[1]);
                }
                i += MRF;
            }
            while i < m {
                let o = out.as_mut_ptr().add(i * n + j);
                let mut acc0 = _mm256_loadu_ps(o);
                let mut acc1 = _mm256_loadu_ps(o.add(8));
                for p in 0..k {
                    let bp = b.as_ptr().add(p * n + j);
                    let av = _mm256_set1_ps(*at.get_unchecked(p * m + i));
                    acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), acc0);
                    acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(8)), acc1);
                }
                _mm256_storeu_ps(o, acc0);
                _mm256_storeu_ps(o.add(8), acc1);
                i += 1;
            }
            j += NRF;
        }
        if j < n {
            for i in 0..m {
                for jj in j..n {
                    let mut acc = *out.get_unchecked(i * n + jj);
                    for p in 0..k {
                        acc = at
                            .get_unchecked(p * m + i)
                            .mul_add(*b.get_unchecked(p * n + jj), acc);
                    }
                    *out.get_unchecked_mut(i * n + jj) = acc;
                }
            }
        }
    }

    /// 8-wide tanh-GELU. Operation-for-operation mirror of the scalar
    /// [`super::gelu_fma`]: same contractions (`_mm256_fmadd_ps` vs.
    /// `mul_add`), same clamp order (`min(hi, max(lo, x))`), same
    /// correctly-rounded divide — so lane and tail results agree bitwise
    /// for finite inputs.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gelu_avx2_fma(src: &[f32], out: &mut Vec<f32>) {
        use super::tanh_poly::*;
        use std::arch::x86_64::{
            _mm256_add_ps, _mm256_div_ps, _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps,
        };
        let n = src.len();
        out.reserve(n);
        let c = _mm256_set1_ps(super::GELU_C);
        let k = _mm256_set1_ps(super::GELU_K);
        let lo = _mm256_set1_ps(-super::TANH_CLAMP);
        let hi = _mm256_set1_ps(super::TANH_CLAMP);
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let mut buf = [0.0f32; 8];
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(src.as_ptr().add(i));
            let x2 = _mm256_mul_ps(x, x);
            let inner = _mm256_mul_ps(c, _mm256_fmadd_ps(_mm256_mul_ps(k, x2), x, x));
            let z = _mm256_min_ps(hi, _mm256_max_ps(lo, inner));
            let z2 = _mm256_mul_ps(z, z);
            let p = _mm256_set1_ps(A13);
            let p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(A11));
            let p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(A9));
            let p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(A7));
            let p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(A5));
            let p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(A3));
            let p = _mm256_fmadd_ps(p, z2, _mm256_set1_ps(A1));
            let p = _mm256_mul_ps(p, z);
            let q = _mm256_set1_ps(B6);
            let q = _mm256_fmadd_ps(q, z2, _mm256_set1_ps(B4));
            let q = _mm256_fmadd_ps(q, z2, _mm256_set1_ps(B2));
            let q = _mm256_fmadd_ps(q, z2, _mm256_set1_ps(B0));
            let t = _mm256_div_ps(p, q);
            let y = _mm256_mul_ps(_mm256_mul_ps(half, x), _mm256_add_ps(one, t));
            _mm256_storeu_ps(buf.as_mut_ptr(), y);
            out.extend_from_slice(&buf);
            i += 8;
        }
        for &x in &src[i..] {
            out.push(super::gelu_fma(x));
        }
    }

    /// Fixed-order horizontal sum of an 8-lane vector: lanes left to right.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256) -> f32 {
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), v);
        let mut s = 0.0f32;
        for lane in lanes {
            s += lane;
        }
        s
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::{
        vaddq_f32, vaddvq_f32, vdivq_f32, vdupq_n_f32, vfmaq_f32, vld1q_f32, vmaxq_f32, vminq_f32,
        vmulq_f32, vst1q_f32,
    };

    /// 4-wide tanh-GELU. Operation-for-operation mirror of the scalar
    /// [`super::gelu_fma`] (and of the AVX2 lane code): same contractions
    /// (`vfmaq_f32` vs. `mul_add`), same clamp order
    /// (`min(hi, max(lo, x))`), same correctly-rounded divide — so lane and
    /// tail results agree bitwise for finite inputs and the error contract
    /// `|gelu_fast(x) − gelu_fwd(x)| ≤ 1e-6 · (1 + |x|)` carries over.
    pub(super) unsafe fn gelu_neon(src: &[f32], out: &mut Vec<f32>) {
        use super::tanh_poly::*;
        let n = src.len();
        out.reserve(n);
        let c = vdupq_n_f32(super::GELU_C);
        let k = vdupq_n_f32(super::GELU_K);
        let lo = vdupq_n_f32(-super::TANH_CLAMP);
        let hi = vdupq_n_f32(super::TANH_CLAMP);
        let half = vdupq_n_f32(0.5);
        let one = vdupq_n_f32(1.0);
        let mut buf = [0.0f32; 4];
        let mut i = 0;
        while i + 4 <= n {
            let x = vld1q_f32(src.as_ptr().add(i));
            let x2 = vmulq_f32(x, x);
            // vfmaq_f32(a, b, c) = a + b·c, so the addend comes first.
            let inner = vmulq_f32(c, vfmaq_f32(x, vmulq_f32(k, x2), x));
            let z = vminq_f32(hi, vmaxq_f32(lo, inner));
            let z2 = vmulq_f32(z, z);
            let p = vdupq_n_f32(A13);
            let p = vfmaq_f32(vdupq_n_f32(A11), p, z2);
            let p = vfmaq_f32(vdupq_n_f32(A9), p, z2);
            let p = vfmaq_f32(vdupq_n_f32(A7), p, z2);
            let p = vfmaq_f32(vdupq_n_f32(A5), p, z2);
            let p = vfmaq_f32(vdupq_n_f32(A3), p, z2);
            let p = vfmaq_f32(vdupq_n_f32(A1), p, z2);
            let p = vmulq_f32(p, z);
            let q = vdupq_n_f32(B6);
            let q = vfmaq_f32(vdupq_n_f32(B4), q, z2);
            let q = vfmaq_f32(vdupq_n_f32(B2), q, z2);
            let q = vfmaq_f32(vdupq_n_f32(B0), q, z2);
            let t = vdivq_f32(p, q);
            let y = vmulq_f32(vmulq_f32(half, x), vaddq_f32(one, t));
            vst1q_f32(buf.as_mut_ptr(), y);
            out.extend_from_slice(&buf);
            i += 4;
        }
        for &x in &src[i..] {
            out.push(super::gelu_fma(x));
        }
    }

    /// Contracted `out += a · b`: one row at a time over two 4-lane
    /// accumulators, scalar fused tail past the 8-lane columns.
    pub(super) unsafe fn gemm_neon(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let mut j = 0;
            while j + 8 <= n {
                let o = out.as_mut_ptr().add(i * n + j);
                let mut acc0 = vld1q_f32(o);
                let mut acc1 = vld1q_f32(o.add(4));
                for p in 0..k {
                    let bp = b.as_ptr().add(p * n + j);
                    let av = vdupq_n_f32(*a.get_unchecked(i * k + p));
                    acc0 = vfmaq_f32(acc0, av, vld1q_f32(bp));
                    acc1 = vfmaq_f32(acc1, av, vld1q_f32(bp.add(4)));
                }
                vst1q_f32(o, acc0);
                vst1q_f32(o.add(4), acc1);
                j += 8;
            }
            while j < n {
                let mut acc = *out.get_unchecked(i * n + j);
                for p in 0..k {
                    acc = a
                        .get_unchecked(i * k + p)
                        .mul_add(*b.get_unchecked(p * n + j), acc);
                }
                *out.get_unchecked_mut(i * n + j) = acc;
                j += 1;
            }
        }
    }

    /// Contracted `out += a · btᵀ`: lane-parallel dot per element with a
    /// fixed-order reduction.
    pub(super) unsafe fn gemm_nt_neon(
        a: &[f32],
        bt: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let arow = a.as_ptr().add(i * k);
            for j in 0..n {
                let brow = bt.as_ptr().add(j * k);
                let mut acc = vdupq_n_f32(0.0);
                let mut p = 0;
                while p + 4 <= k {
                    acc = vfmaq_f32(acc, vld1q_f32(arow.add(p)), vld1q_f32(brow.add(p)));
                    p += 4;
                }
                let mut dot = vaddvq_f32(acc);
                while p < k {
                    dot = arow.add(p).read().mul_add(brow.add(p).read(), dot);
                    p += 1;
                }
                *out.get_unchecked_mut(i * n + j) += dot;
            }
        }
    }

    /// Contracted `out += atᵀ · b`: [`gemm_neon`] with the broadcast drawn
    /// from the transposed-left layout.
    pub(super) unsafe fn gemm_tn_neon(
        at: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let mut j = 0;
            while j + 8 <= n {
                let o = out.as_mut_ptr().add(i * n + j);
                let mut acc0 = vld1q_f32(o);
                let mut acc1 = vld1q_f32(o.add(4));
                for p in 0..k {
                    let bp = b.as_ptr().add(p * n + j);
                    let av = vdupq_n_f32(*at.get_unchecked(p * m + i));
                    acc0 = vfmaq_f32(acc0, av, vld1q_f32(bp));
                    acc1 = vfmaq_f32(acc1, av, vld1q_f32(bp.add(4)));
                }
                vst1q_f32(o, acc0);
                vst1q_f32(o.add(4), acc1);
                j += 8;
            }
            while j < n {
                let mut acc = *out.get_unchecked(i * n + j);
                for p in 0..k {
                    acc = at
                        .get_unchecked(p * m + i)
                        .mul_add(*b.get_unchecked(p * n + j), acc);
                }
                *out.get_unchecked_mut(i * n + j) = acc;
                j += 1;
            }
        }
    }
}
