//! Learning-rate schedules.
//!
//! The paper uses fixed per-dataset learning rates; schedules are provided
//! for the extension experiments (longer paper-scale runs benefit from decay
//! within a task).

use serde::{Deserialize, Serialize};

/// A learning-rate schedule over global steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant rate.
    Constant,
    /// Multiply by `gamma` every `every` steps.
    Step {
        /// Decay interval in steps.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from the base rate to `min_lr` over `total` steps.
    Cosine {
        /// Total steps of the annealing window.
        total: usize,
        /// Final learning rate.
        min_lr: f32,
    },
    /// Linear warmup over `warmup` steps, then constant.
    Warmup {
        /// Warmup length in steps.
        warmup: usize,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based) given the base rate.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (`every == 0`, `total == 0`).
    pub fn at(&self, base: f32, step: usize) -> f32 {
        match *self {
            Self::Constant => base,
            Self::Step { every, gamma } => {
                assert!(every > 0, "step schedule needs every > 0");
                base * gamma.powi((step / every) as i32)
            }
            Self::Cosine { total, min_lr } => {
                assert!(total > 0, "cosine schedule needs total > 0");
                let t = (step.min(total)) as f32 / total as f32;
                min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
            Self::Warmup { warmup } => {
                if warmup == 0 || step >= warmup {
                    base
                } else {
                    base * (step + 1) as f32 / warmup as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::Constant;
        assert_eq!(s.at(0.1, 0), 0.1);
        assert_eq!(s.at(0.1, 10_000), 0.1);
    }

    #[test]
    fn step_decays_at_boundaries() {
        let s = LrSchedule::Step {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.at(1.0, 9), 1.0);
        assert_eq!(s.at(1.0, 10), 0.5);
        assert_eq!(s.at(1.0, 25), 0.25);
    }

    #[test]
    fn cosine_endpoints() {
        let s = LrSchedule::Cosine {
            total: 100,
            min_lr: 0.01,
        };
        assert!((s.at(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((s.at(1.0, 100) - 0.01).abs() < 1e-6);
        assert!((s.at(1.0, 200) - 0.01).abs() < 1e-6, "clamped past total");
        // Midpoint is the mean of base and min.
        assert!((s.at(1.0, 50) - 0.505).abs() < 1e-3);
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = LrSchedule::Cosine {
            total: 50,
            min_lr: 0.0,
        };
        let mut prev = f32::INFINITY;
        for step in 0..=50 {
            let lr = s.at(1.0, step);
            assert!(lr <= prev + 1e-6);
            prev = lr;
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert!((s.at(1.0, 0) - 0.25).abs() < 1e-6);
        assert!((s.at(1.0, 1) - 0.5).abs() < 1e-6);
        assert!((s.at(1.0, 3) - 1.0).abs() < 1e-6);
        assert_eq!(s.at(1.0, 100), 1.0);
    }
}
