//! Model checkpointing: save/load a [`Params`] store to JSON.
//!
//! Federated deployments need durable model state between sessions (a server
//! restart must not lose the global model). The format stores every entry's
//! name, shape, values and trainability, and `load` verifies structural
//! compatibility so a checkpoint can only be restored into an
//! identically-built model.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::params::Params;

/// Errors returned by checkpoint operations.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file was not valid checkpoint JSON.
    Parse(serde_json::Error),
    /// The checkpoint's structure does not match the target model.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            Self::Parse(e) => write!(f, "checkpoint parse failed: {e}"),
            Self::Mismatch(m) => write!(f, "checkpoint structure mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse(e) => Some(e),
            Self::Mismatch(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        Self::Parse(e)
    }
}

/// Writes `params` to `path` as JSON.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] if the file cannot be written.
pub fn save(params: &Params, path: &Path) -> Result<(), CheckpointError> {
    let json = serde_json::to_string(params)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a checkpoint from `path` into `params`.
///
/// Only the *values* are copied; `params` keeps its own gradient buffers and
/// index. The checkpoint must have the same entries (names, shapes, order).
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] if the structures differ, and the
/// I/O/parse variants for file problems.
pub fn load(params: &mut Params, path: &Path) -> Result<(), CheckpointError> {
    let json = fs::read_to_string(path)?;
    let mut loaded: Params = serde_json::from_str(&json)?;
    loaded.rebuild_index();
    if loaded.len() != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "entry count {} != {}",
            loaded.len(),
            params.len()
        )));
    }
    for ((_, a), (_, b)) in params.iter().zip(loaded.iter()) {
        if a.name != b.name {
            return Err(CheckpointError::Mismatch(format!(
                "entry {:?} vs {:?}",
                a.name, b.name
            )));
        }
        if a.value.shape() != b.value.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "{}: shape {:?} vs {:?}",
                a.name,
                a.value.shape(),
                b.value.shape()
            )));
        }
    }
    params.copy_values_from(&loaded);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("refil-ckpt-{name}-{}.json", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let mut p = Params::new();
        p.insert("w", Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        p.insert("b", Tensor::from_vec(vec![3.0], &[1]), false);
        let path = tmp("roundtrip");
        save(&p, &path).expect("save");

        let mut q = Params::new();
        q.insert("w", Tensor::zeros(&[2]), true);
        q.insert("b", Tensor::zeros(&[1]), false);
        load(&mut q, &path).expect("load");
        assert_eq!(q.value(q.id("w").unwrap()).data(), &[1.0, 2.0]);
        assert_eq!(q.value(q.id("b").unwrap()).data(), &[3.0]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let mut p = Params::new();
        p.insert("w", Tensor::zeros(&[2]), true);
        let path = tmp("mismatch");
        save(&p, &path).expect("save");

        let mut q = Params::new();
        q.insert("w", Tensor::zeros(&[3]), true);
        let err = load(&mut q, &path).expect_err("must fail");
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_rejects_missing_entries() {
        let mut p = Params::new();
        p.insert("w", Tensor::zeros(&[2]), true);
        let path = tmp("missing");
        save(&p, &path).expect("save");

        let mut q = Params::new();
        q.insert("w", Tensor::zeros(&[2]), true);
        q.insert("extra", Tensor::zeros(&[1]), true);
        assert!(load(&mut q, &path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::Mismatch("x".into());
        assert!(e.to_string().contains("mismatch"));
    }
}
