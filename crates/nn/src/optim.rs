//! Optimizers operating on a [`Params`] store.

use crate::params::Params;
use crate::tensor::Tensor;

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// The paper trains every method with SGD; this implementation matches
/// PyTorch's semantics (`v = mu*v + g + wd*w; w -= lr*v`).
///
/// # Examples
///
/// ```
/// use refil_nn::{Graph, Params, Sgd, Tensor};
///
/// let mut params = Params::new();
/// let w = params.insert("w", Tensor::from_vec(vec![1.0], &[1]), true);
/// let mut opt = Sgd::new(0.1);
/// let g = Graph::new();
/// let wv = g.param(&params, w);
/// let loss = g.mul(wv, wv);
/// g.backward(loss, &mut params);
/// opt.step(&mut params);
/// assert!((params.value(w).data()[0] - 0.8).abs() < 1e-6); // 1 - 0.1*2
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Tensor>>,
    lr_scales: Option<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
            lr_scales: None,
        }
    }

    /// Sets per-parameter learning-rate multipliers, indexed like the
    /// [`Params`] store (parameter-group learning rates, e.g. a slow
    /// backbone with fast prompt/classifier heads).
    pub fn with_param_lr_scales(mut self, scales: Vec<f32>) -> Self {
        self.lr_scales = Some(scales);
        self
    }

    /// Sets the momentum coefficient.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update to every trainable parameter, then leaves the
    /// gradients untouched (call [`Params::zero_grad`] before the next pass).
    pub fn step(&mut self, params: &mut Params) {
        if self.velocity.len() < params.len() {
            self.velocity.resize(params.len(), None);
        }
        for (id, entry) in params
            .iter()
            .map(|(id, e)| (id, e.trainable))
            .collect::<Vec<_>>()
        {
            if !entry {
                continue;
            }
            let idx = id.index();
            let mut update = params.grad(id).clone();
            if self.weight_decay != 0.0 {
                update.axpy(self.weight_decay, params.value(id));
            }
            if self.momentum != 0.0 {
                let v = self.velocity[idx].get_or_insert_with(|| Tensor::zeros(update.shape()));
                v.scale_inplace(self.momentum);
                v.axpy(1.0, &update);
                update = v.clone();
            }
            let scale = self
                .lr_scales
                .as_ref()
                .and_then(|s| s.get(idx).copied())
                .unwrap_or(1.0);
            params.value_mut(id).axpy(-self.lr * scale, &update);
        }
    }

    /// Drops momentum state (used at task boundaries).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

/// Adam optimizer (used for substrate diagnostics; the paper's runs use SGD).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one Adam update to every trainable parameter.
    pub fn step(&mut self, params: &mut Params) {
        self.t += 1;
        if self.m.len() < params.len() {
            self.m.resize(params.len(), None);
            self.v.resize(params.len(), None);
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = params
            .iter()
            .filter(|(_, e)| e.trainable)
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            let idx = id.index();
            let g = params.grad(id).clone();
            let m = self.m[idx].get_or_insert_with(|| Tensor::zeros(g.shape()));
            m.scale_inplace(self.beta1);
            m.axpy(1.0 - self.beta1, &g);
            let v = self.v[idx].get_or_insert_with(|| Tensor::zeros(g.shape()));
            v.scale_inplace(self.beta2);
            let g2 = g.map(|x| x * x);
            v.axpy(1.0 - self.beta2, &g2);
            let mhat = m.map(|x| x / bc1);
            let vhat = v.map(|x| x / bc2);
            let upd = mhat.zip(&vhat, |mi, vi| mi / (vi.sqrt() + self.eps));
            params.value_mut(id).axpy(-self.lr, &upd);
        }
    }
}

/// Rescales trainable gradients so their global L2 norm is at most `max_norm`.
///
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &mut Params, max_norm: f32) -> f32 {
    let norm = params.grad_norm();
    if norm > max_norm && norm > 0.0 {
        params.scale_grads(max_norm / norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quad_loss_step(params: &mut Params, opt: &mut Sgd) -> f32 {
        params.zero_grad();
        let g = Graph::new();
        let w = g.param(params, params.id("w").unwrap());
        let loss = g.mul(w, w);
        let loss_sum = g.sum_all(loss);
        let out = g.value(loss_sum).data()[0];
        g.backward(loss_sum, params);
        opt.step(params);
        out
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = Params::new();
        params.insert("w", Tensor::from_vec(vec![5.0, -3.0], &[2]), true);
        let mut opt = Sgd::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            let l = quad_loss_step(&mut params, &mut opt);
            assert!(l <= last + 1e-6, "loss increased: {l} > {last}");
            last = l;
        }
        assert!(last < 1e-3, "did not converge: {last}");
    }

    #[test]
    fn momentum_accelerates() {
        let mut p1 = Params::new();
        p1.insert("w", Tensor::from_vec(vec![5.0], &[1]), true);
        let mut p2 = p1.clone();
        let mut plain = Sgd::new(0.01);
        let mut mom = Sgd::new(0.01).with_momentum(0.9);
        for _ in 0..20 {
            quad_loss_step(&mut p1, &mut plain);
            quad_loss_step(&mut p2, &mut mom);
        }
        let l1 = p1.value(p1.id("w").unwrap()).data()[0].abs();
        let l2 = p2.value(p2.id("w").unwrap()).data()[0].abs();
        assert!(l2 < l1, "momentum ({l2}) should beat plain ({l1})");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut params = Params::new();
        let w = params.insert("w", Tensor::from_vec(vec![1.0], &[1]), true);
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        // No loss gradient: only decay acts.
        opt.step(&mut params);
        assert!((params.value(w).data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn frozen_params_unchanged() {
        let mut params = Params::new();
        let w = params.insert("w", Tensor::from_vec(vec![2.0], &[1]), false);
        params.grad_mut(w).fill(1.0);
        let mut opt = Sgd::new(0.5);
        opt.step(&mut params);
        assert_eq!(params.value(w).data(), &[2.0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = Params::new();
        params.insert("w", Tensor::from_vec(vec![4.0], &[1]), true);
        let mut opt = Adam::new(0.2);
        for _ in 0..100 {
            params.zero_grad();
            let g = Graph::new();
            let w = g.param(&params, params.id("w").unwrap());
            let loss = g.mul(w, w);
            let s = g.sum_all(loss);
            g.backward(s, &mut params);
            opt.step(&mut params);
        }
        assert!(params.value(params.id("w").unwrap()).data()[0].abs() < 0.1);
    }

    #[test]
    fn per_param_lr_scales_apply() {
        let mut params = Params::new();
        let a = params.insert("a", Tensor::from_vec(vec![1.0], &[1]), true);
        let b = params.insert("b", Tensor::from_vec(vec![1.0], &[1]), true);
        params.grad_mut(a).fill(1.0);
        params.grad_mut(b).fill(1.0);
        let mut opt = Sgd::new(0.1).with_param_lr_scales(vec![0.1, 1.0]);
        opt.step(&mut params);
        assert!((params.value(a).data()[0] - 0.99).abs() < 1e-6);
        assert!((params.value(b).data()[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn clip_grad_norm_caps_norm() {
        let mut params = Params::new();
        let w = params.insert("w", Tensor::zeros(&[2]), true);
        params.grad_mut(w).data_mut().copy_from_slice(&[3.0, 4.0]);
        let pre = clip_grad_norm(&mut params, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((params.grad_norm() - 1.0).abs() < 1e-5);
    }
}
