//! Composite loss helpers built from graph primitives.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Knowledge-distillation loss (Hinton-style), used by FedLwF.
///
/// `KL(softmax(teacher/T) || softmax(student/T)) * T^2`, reduced to the
/// cross-entropy part (the teacher-entropy term is constant w.r.t. the
/// student): `-T^2 * mean_i sum_k p_ik * log q_ik`.
///
/// `teacher_logits` is a constant (the frozen old model's output).
///
/// # Panics
///
/// Panics if shapes differ or are not 2-D.
pub fn distillation_loss(
    g: &Graph,
    student_logits: Var,
    teacher_logits: &Tensor,
    temperature: f32,
) -> Var {
    let sshape = g.shape(student_logits);
    assert_eq!(sshape.len(), 2, "distillation expects 2-D logits");
    assert_eq!(
        sshape.as_slice(),
        teacher_logits.shape(),
        "teacher/student shape mismatch"
    );
    let b = sshape[0] as f32;

    // Teacher soft targets computed eagerly (no grad).
    let k = teacher_logits.shape()[1];
    let mut probs = vec![0.0f32; teacher_logits.numel()];
    for (prow, trow) in probs.chunks_mut(k).zip(teacher_logits.data().chunks(k)) {
        let m = trow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (p, &t) in prow.iter_mut().zip(trow) {
            *p = ((t - m) / temperature).exp();
            sum += *p;
        }
        for p in prow.iter_mut() {
            *p /= sum;
        }
    }
    let teacher = g.constant(Tensor::from_vec(probs, teacher_logits.shape()));

    let scaled = g.scale(student_logits, 1.0 / temperature);
    let logq = g.log_softmax_last(scaled);
    let weighted = g.mul(teacher, logq);
    let total = g.sum_all(weighted);
    g.scale(total, -(temperature * temperature) / b)
}

/// L2 penalty `0.5 * sum(c * (x - anchor)^2)` against a constant anchor with
/// constant per-element coefficients — the EWC quadratic penalty.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn weighted_l2_penalty(g: &Graph, x: Var, anchor: &Tensor, coeff: &Tensor) -> Var {
    let xshape = g.shape(x);
    assert_eq!(xshape.as_slice(), anchor.shape(), "anchor shape mismatch");
    assert_eq!(xshape.as_slice(), coeff.shape(), "coeff shape mismatch");
    let a = g.constant(anchor.clone());
    let c = g.constant(coeff.clone());
    let d = g.sub(x, a);
    let sq = g.mul(d, d);
    let w = g.mul(c, sq);
    let s = g.sum_all(w);
    g.scale(s, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;

    #[test]
    fn distillation_zero_when_matching_teacher() {
        // When student == teacher, the KD gradient w.r.t. the student is zero.
        let mut params = Params::new();
        let x = params.insert(
            "x",
            Tensor::from_vec(vec![1.0, -1.0, 0.5, 0.2], &[2, 2]),
            true,
        );
        let g = Graph::new();
        let sv = g.param(&params, x);
        let teacher = params.value(x).clone();
        let loss = distillation_loss(&g, sv, &teacher, 2.0);
        g.backward(loss, &mut params);
        for &gr in params.grad(x).data() {
            assert!(gr.abs() < 1e-5, "grad {gr}");
        }
    }

    #[test]
    fn distillation_pulls_student_toward_teacher() {
        let mut params = Params::new();
        let x = params.insert("x", Tensor::from_vec(vec![0.0, 0.0], &[1, 2]), true);
        let teacher = Tensor::from_vec(vec![5.0, -5.0], &[1, 2]);
        let mut opt = crate::optim::Sgd::new(0.5);
        for _ in 0..200 {
            params.zero_grad();
            let g = Graph::new();
            let sv = g.param(&params, x);
            let loss = distillation_loss(&g, sv, &teacher, 2.0);
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        let v = params.value(x);
        assert!(
            v.data()[0] > v.data()[1],
            "student did not follow teacher: {v:?}"
        );
    }

    #[test]
    fn weighted_l2_matches_manual() {
        let mut params = Params::new();
        let x = params.insert("x", Tensor::from_vec(vec![2.0, 3.0], &[2]), true);
        let anchor = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let coeff = Tensor::from_vec(vec![4.0, 0.0], &[2]);
        let g = Graph::new();
        let xv = g.param(&params, x);
        let loss = weighted_l2_penalty(&g, xv, &anchor, &coeff);
        // 0.5 * (4*(2-1)^2 + 0*(3-1)^2) = 2
        assert!((g.value(loss).data()[0] - 2.0).abs() < 1e-6);
        g.backward(loss, &mut params);
        assert_eq!(params.grad(x).data(), &[4.0, 0.0]);
    }
}
