//! Register-tiled GEMM kernels — the one hot loop every RefFiL model
//! bottoms out in.
//!
//! Three layout variants cover every product the autodiff tape needs
//! without ever materializing a transposed copy:
//!
//! * [`gemm`] — `out += A · B` with both operands row-major;
//! * [`gemm_nt`] — `out += A · Bᵀ` where `B` is stored `[n, k]` and read
//!   transposed in place (the `dA` half of a matmul backward);
//! * [`gemm_tn`] — `out += Aᵀ · B` where `A` is stored `[k, m]` and read
//!   transposed in place (the `dB` half of a matmul backward).
//!
//! # Determinism invariant
//!
//! Every output element is produced by one running `f32` accumulator that
//! is seeded with the element's initial value and advanced in strictly
//! ascending `k` order — exactly the chain the naive three-loop kernel
//! builds. Tiling only changes *which* elements are in flight at once,
//! never the order of additions within an element, so results are
//! byte-identical to [`gemm_ref`] at any tile size (pinned by proptests).
//! The speedup comes from keeping an `MR x NR` block of accumulators in
//! registers across the whole `k` loop (the naive kernel reloads and
//! re-stores the output row once per `k` step) and from branch-free inner
//! loops the compiler can vectorize across the `n` dimension.
//!
//! # Kernel policy
//!
//! The bit-exact contract above forbids FP contraction (a fused
//! multiply-add rounds once where the oracle rounds twice), which leaves
//! real throughput on the table on FMA hardware. [`KernelPolicy`] is the
//! opt-in: the default [`KernelPolicy::BitExact`] keeps these kernels as
//! the oracle; [`KernelPolicy::Fast`] (or `REFIL_FAST_KERNELS=1`) routes
//! all three layouts through the explicit SIMD/FMA microkernels in
//! [`crate::gemm_fast`], which stay deterministic (run-to-run and
//! thread-count stable) but match the oracle only within the documented
//! error bound. `REFIL_NAIVE_GEMM=1` takes precedence over either policy —
//! it exists to replay the pre-tiling pipeline.

/// Which GEMM implementations the process uses. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPolicy {
    /// The register-tiled no-contraction kernels below: byte-identical to
    /// the naive ascending-`k` oracle. The default.
    BitExact,
    /// The explicit FMA/SIMD microkernels in [`crate::gemm_fast`]:
    /// deterministic, but fused — within `2k·ε` of the oracle rather than
    /// equal to it. Falls back to `BitExact` kernels on machines without a
    /// SIMD fast path.
    Fast,
}

/// Process-global kernel policy. `0` = not yet resolved (first read
/// consults `REFIL_FAST_KERNELS`), `1` = bit-exact, `2` = fast.
static POLICY: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// The active [`KernelPolicy`]: whatever [`set_kernel_policy`] installed,
/// otherwise `Fast` when the process started with `REFIL_FAST_KERNELS=1`,
/// otherwise `BitExact`.
pub fn kernel_policy() -> KernelPolicy {
    match POLICY.load(std::sync::atomic::Ordering::Relaxed) {
        1 => KernelPolicy::BitExact,
        2 => KernelPolicy::Fast,
        _ => {
            let policy = match std::env::var("REFIL_FAST_KERNELS") {
                Ok(v) if v == "1" => KernelPolicy::Fast,
                _ => KernelPolicy::BitExact,
            };
            set_kernel_policy(policy);
            policy
        }
    }
}

/// Installs `policy` process-wide (benches A/B-ing the kernels, tests
/// pinning the fast path). Affects every subsequent GEMM on every thread;
/// callers that flip it temporarily must serialize with other kernel users
/// and restore the previous policy.
pub fn set_kernel_policy(policy: KernelPolicy) {
    let raw = match policy {
        KernelPolicy::BitExact => 1,
        KernelPolicy::Fast => 2,
    };
    POLICY.store(raw, std::sync::atomic::Ordering::Relaxed);
}

/// True when the active policy is `Fast` *and* this machine has a real
/// SIMD fast path to route to.
#[inline]
pub(crate) fn fast_enabled() -> bool {
    kernel_policy() == KernelPolicy::Fast && crate::gemm_fast::fast_kernels_available()
}

/// Rows of the register tile: output rows in flight per micro-kernel call.
pub const MR: usize = 8;

/// Columns of the register tile: accumulator lanes per output row.
pub const NR: usize = 16;

/// `out += a · b` for row-major `a [m,k]`, `b [k,n]`, `out [m,n]`.
///
/// Accumulates on top of the existing contents of `out` (pass zeros for a
/// plain product, or a bias-initialized buffer for a fused bias-first
/// accumulation as in the im2col conv lowering).
///
/// # Panics
///
/// Debug-asserts that the slice lengths match the dimensions.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if fast_enabled() {
        return crate::gemm_fast::gemm_fast(a, b, out, m, k, n);
    }
    let mut i = 0;
    while i < m {
        let ib = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            if ib == MR && jb == NR {
                // Full tile: fixed-bound loops keep the accumulators in
                // registers and let the jj loop vectorize.
                let mut acc = [[0.0f32; NR]; MR];
                for (ii, accr) in acc.iter_mut().enumerate() {
                    let orow = &out[(i + ii) * n + j..(i + ii) * n + j + NR];
                    accr.copy_from_slice(orow);
                }
                for p in 0..k {
                    let brow = &b[p * n + j..p * n + j + NR];
                    for (ii, accr) in acc.iter_mut().enumerate() {
                        let av = a[(i + ii) * k + p];
                        for (jj, acc_el) in accr.iter_mut().enumerate() {
                            *acc_el += av * brow[jj];
                        }
                    }
                }
                for (ii, accr) in acc.iter().enumerate() {
                    out[(i + ii) * n + j..(i + ii) * n + j + NR].copy_from_slice(accr);
                }
            } else {
                gemm_edge(a, b, out, i, ib, j, jb, k, n);
            }
            j += NR;
        }
        i += MR;
    }
}

/// Remainder tile of [`gemm`]: same accumulation chains as the full tile.
///
/// The `b` row fragment is copied into a zero-padded `[NR]` buffer so the
/// inner loop keeps its fixed vector width; padding lanes accumulate
/// `av * 0.0` into accumulators that are never stored back, so the `jb`
/// live lanes advance exactly the same chains as the full-tile path.
#[allow(clippy::too_many_arguments)]
fn gemm_edge(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    ib: usize,
    j: usize,
    jb: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for ii in 0..ib {
        for jj in 0..jb {
            acc[ii][jj] = out[(i + ii) * n + j + jj];
        }
    }
    let mut bbuf = [0.0f32; NR];
    for p in 0..k {
        bbuf[..jb].copy_from_slice(&b[p * n + j..p * n + j + jb]);
        for (ii, accr) in acc.iter_mut().enumerate().take(ib) {
            let av = a[(i + ii) * k + p];
            for (jj, acc_el) in accr.iter_mut().enumerate() {
                *acc_el += av * bbuf[jj];
            }
        }
    }
    for ii in 0..ib {
        for jj in 0..jb {
            out[(i + ii) * n + j + jj] = acc[ii][jj];
        }
    }
}

/// `out += a · btᵀ` for row-major `a [m,k]`, `bt [n,k]`, `out [m,n]`.
///
/// `bt` holds the *transpose* of the logical right operand, so
/// `out[i][j] += Σ_p a[i][p] · bt[j][p]` — the backward-pass product
/// `dA = g · Bᵀ` without materializing `Bᵀ`. Per-element accumulation is
/// strictly ascending in `p`, byte-identical to transposing `bt` and
/// calling [`gemm_ref`].
pub fn gemm_nt(a: &[f32], bt: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if naive_forced() {
        // Pre-PR behavior for the A/B escape hatch: materialize Bᵀ the way
        // the old backward passes did, then run the branchy kernel.
        let mut b = vec![0.0f32; k * n];
        for (j, brow) in bt.chunks_exact(k).enumerate() {
            for (p, &v) in brow.iter().enumerate() {
                b[p * n + j] = v;
            }
        }
        gemm_ref_branchy(a, &b, out, m, k, n);
        return;
    }
    if fast_enabled() {
        return crate::gemm_fast::gemm_nt_fast(a, bt, out, m, k, n);
    }
    // Reading `bt` in place means stride-`k` gathers in the inner loop,
    // which defeats vectorization. Instead each `NR`-column strip of `bt`
    // is transposed once into a contiguous `[k][NR]` pack (zero-padded past
    // `jb`) and reused across every row tile — after which the micro-kernel
    // is identical to [`gemm`]'s. Packing copies values without touching
    // them, so per-element chains are unchanged.
    NT_PACK.with(|cell| {
        let mut pack = cell.borrow_mut();
        pack.resize(k * NR, 0.0);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            for jj in 0..jb {
                let src = &bt[(j + jj) * k..(j + jj) * k + k];
                for (p, &v) in src.iter().enumerate() {
                    pack[p * NR + jj] = v;
                }
            }
            if jb < NR {
                for p in 0..k {
                    pack[p * NR + jb..(p + 1) * NR].fill(0.0);
                }
            }
            let mut i = 0;
            while i < m {
                let ib = MR.min(m - i);
                let mut acc = [[0.0f32; NR]; MR];
                for ii in 0..ib {
                    for jj in 0..jb {
                        acc[ii][jj] = out[(i + ii) * n + j + jj];
                    }
                }
                for p in 0..k {
                    let brow = &pack[p * NR..p * NR + NR];
                    for (ii, accr) in acc.iter_mut().enumerate().take(ib) {
                        let av = a[(i + ii) * k + p];
                        for (jj, acc_el) in accr.iter_mut().enumerate() {
                            *acc_el += av * brow[jj];
                        }
                    }
                }
                for ii in 0..ib {
                    for jj in 0..jb {
                        out[(i + ii) * n + j + jj] = acc[ii][jj];
                    }
                }
                i += MR;
            }
            j += NR;
        }
    });
}

thread_local! {
    /// Reusable `[k][NR]` transpose pack for [`gemm_nt`] — grown on demand,
    /// never shared across threads.
    static NT_PACK: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// `out += atᵀ · b` for row-major `at [k,m]`, `b [k,n]`, `out [m,n]`.
///
/// `at` holds the *transpose* of the logical left operand, so
/// `out[i][j] += Σ_p at[p][i] · b[p][j]` — the backward-pass product
/// `dB = Aᵀ · g` without materializing `Aᵀ`. For each `p`, both `at[p]`
/// and `b[p]` are contiguous rows, so the inner loop vectorizes across
/// `n` exactly like [`gemm`].
pub fn gemm_tn(at: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(at.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if naive_forced() {
        // Pre-PR behavior for the A/B escape hatch: materialize Aᵀ the way
        // the old backward passes did, then run the branchy kernel.
        let mut a = vec![0.0f32; m * k];
        for (p, arow) in at.chunks_exact(m).enumerate() {
            for (i, &v) in arow.iter().enumerate() {
                a[i * k + p] = v;
            }
        }
        gemm_ref_branchy(&a, b, out, m, k, n);
        return;
    }
    if fast_enabled() {
        return crate::gemm_fast::gemm_tn_fast(at, b, out, m, k, n);
    }
    let mut i = 0;
    while i < m {
        let ib = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jb = NR.min(n - j);
            let mut acc = [[0.0f32; NR]; MR];
            for ii in 0..ib {
                for jj in 0..jb {
                    acc[ii][jj] = out[(i + ii) * n + j + jj];
                }
            }
            if jb == NR {
                for p in 0..k {
                    let arow = &at[p * m + i..p * m + i + ib];
                    let brow = &b[p * n + j..p * n + j + NR];
                    for (ii, &av) in arow.iter().enumerate() {
                        for (jj, acc_el) in acc[ii].iter_mut().enumerate() {
                            *acc_el += av * brow[jj];
                        }
                    }
                }
            } else {
                // Column edge: zero-pad the `b` row fragment to the full
                // tile width so the inner loop stays fixed-width vector
                // code; padding lanes feed accumulators that are never
                // stored back.
                let mut bbuf = [0.0f32; NR];
                for p in 0..k {
                    bbuf[..jb].copy_from_slice(&b[p * n + j..p * n + j + jb]);
                    let arow = &at[p * m + i..p * m + i + ib];
                    for (ii, &av) in arow.iter().enumerate() {
                        for (jj, acc_el) in acc[ii].iter_mut().enumerate() {
                            *acc_el += av * bbuf[jj];
                        }
                    }
                }
            }
            for ii in 0..ib {
                for jj in 0..jb {
                    out[(i + ii) * n + j + jj] = acc[ii][jj];
                }
            }
            j += NR;
        }
        i += MR;
    }
}

/// Naive ikj reference kernel: `out += a · b`, branch-free.
///
/// One running accumulator per output element, ascending `k` — the
/// canonical chain the tiled kernels must reproduce bit-for-bit. Kept as
/// the equivalence oracle for the proptests and micro benches.
pub fn gemm_ref(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// The pre-tiling production kernel: naive ikj **with** the
/// `a[i][p] == 0.0` skip branch that used to live in `matmul_into`.
///
/// The branch only pays off on all-zero rows and defeats vectorization of
/// the inner loop everywhere else; it is kept solely so the
/// `nn/gemm_zero_branch` micro bench can quantify the before/after.
pub fn gemm_ref_branchy(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Whether `REFIL_NAIVE_GEMM=1` is set: routes [`dispatch`] to the
/// pre-tiling branchy kernel so the kernel bench bin can A/B the old and
/// new code paths inside one binary. Results are byte-identical either
/// way; only wall time differs.
pub fn naive_forced() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("REFIL_NAIVE_GEMM")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// `out += a · b` through the tiled kernel, or through the pre-tiling
/// branchy reference when `REFIL_NAIVE_GEMM=1` (benchmarking escape hatch).
pub fn dispatch(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    if naive_forced() {
        gemm_ref_branchy(a, b, out, m, k, n);
    } else {
        gemm(a, b, out, m, k, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randv(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    #[test]
    fn tiled_matches_reference_bitwise_across_shapes() {
        let mut rng = StdRng::seed_from_u64(99);
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 8),
            (5, 3, 9),
            (7, 1, 17),
            (12, 6, 1),
            (13, 5, 23),
            (32, 32, 32),
        ] {
            let a = randv(&mut rng, m * k);
            let b = randv(&mut rng, k * n);
            let seed = randv(&mut rng, m * n);
            let mut tiled = seed.clone();
            let mut naive = seed.clone();
            gemm(&a, &b, &mut tiled, m, k, n);
            gemm_ref(&a, &b, &mut naive, m, k, n);
            for (x, y) in tiled.iter().zip(&naive) {
                assert_eq!(x.to_bits(), y.to_bits(), "gemm diverged at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn nt_and_tn_match_materialized_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, k, n) = (6, 5, 11);
        let a = randv(&mut rng, m * k);
        let b = randv(&mut rng, k * n);

        // Reference: plain product.
        let mut want = vec![0.0f32; m * n];
        gemm_ref(&a, &b, &mut want, m, k, n);

        // gemm_nt with bt = Bᵀ materialized by hand.
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut got = vec![0.0f32; m * n];
        gemm_nt(&a, &bt, &mut got, m, k, n);
        for (x, y) in got.iter().zip(&want) {
            assert_eq!(x.to_bits(), y.to_bits(), "gemm_nt diverged");
        }

        // gemm_tn with at = Aᵀ materialized by hand.
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut got = vec![0.0f32; m * n];
        gemm_tn(&at, &b, &mut got, m, k, n);
        for (x, y) in got.iter().zip(&want) {
            assert_eq!(x.to_bits(), y.to_bits(), "gemm_tn diverged");
        }
    }

    #[test]
    fn accumulates_on_top_of_existing_output() {
        let a = vec![1.0f32, 2.0];
        let b = vec![3.0f32, 4.0];
        let mut out = vec![10.0f32];
        gemm(&a, &b, &mut out, 1, 2, 1);
        assert_eq!(out, vec![10.0 + 3.0 + 8.0]);
    }
}
