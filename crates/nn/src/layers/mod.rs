//! Neural-network layers used by the RefFiL models.
//!
//! Each layer registers its parameters in a [`Params`](crate::Params) store at
//! construction time and records its computation on a per-pass
//! [`Graph`](crate::Graph) in `forward`.

mod attention;
mod classifier;
mod conv_extractor;
mod dropout;
mod embedding;
mod extractor;
mod film;
mod linear;
mod mlp;
mod norm;
mod tokenizer;

pub use attention::{MultiHeadAttention, TransformerBlock};
pub use classifier::Classifier;
pub use conv_extractor::ConvExtractor;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use extractor::ResidualExtractor;
pub use film::Film;
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNorm;
pub use tokenizer::PatchTokenizer;
