//! Multi-head self-attention and the transformer block of Appendix A (Eq. 13).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::params::Params;

use super::linear::Linear;
use super::mlp::Mlp;
use super::norm::LayerNorm;

/// Multi-head self-attention over `[batch, tokens, dim]` sequences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Registers MHSA with `heads` heads over width `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert_eq!(
            dim % heads,
            0,
            "dim {dim} must be divisible by heads {heads}"
        );
        let wq = Linear::new(params, &format!("{name}.wq"), dim, dim, true, rng);
        let wk = Linear::new(params, &format!("{name}.wk"), dim, dim, true, rng);
        let wv = Linear::new(params, &format!("{name}.wv"), dim, dim, true, rng);
        let wo = Linear::new(params, &format!("{name}.wo"), dim, dim, true, rng);
        Self {
            wq,
            wk,
            wv,
            wo,
            heads,
            dim,
        }
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Splits `[b, t, dim]` into `[b*h, t, dh]` head-major layout.
    fn split_heads(&self, g: &Graph, x: Var, b: usize, t: usize) -> Var {
        let dh = self.dim / self.heads;
        let x4 = g.reshape(x, &[b, t, self.heads, dh]);
        let xp = g.permute_0213(x4); // [b, h, t, dh]
        g.reshape(xp, &[b * self.heads, t, dh])
    }

    /// Self-attention: `x [b, t, dim] -> [b, t, dim]`.
    pub fn forward(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let shape = g.shape(x);
        assert_eq!(shape.len(), 3, "attention expects 3-D input, got {shape:?}");
        let (b, t) = (shape[0], shape[1]);
        let dh = self.dim / self.heads;

        let q = self.wq.forward_tokens(g, params, x);
        let k = self.wk.forward_tokens(g, params, x);
        let v = self.wv.forward_tokens(g, params, x);

        let q = self.split_heads(g, q, b, t);
        let k = self.split_heads(g, k, b, t);
        let v = self.split_heads(g, v, b, t);

        let scores = g.bmm_nt(q, k); // [b*h, t, t], reads k transposed in place
        let scores = g.scale(scores, 1.0 / (dh as f32).sqrt());
        let attn = g.softmax_last(scores);
        let ctx = g.bmm(attn, v); // [b*h, t, dh]

        let ctx4 = g.reshape(ctx, &[b, self.heads, t, dh]);
        let ctxp = g.permute_0213(ctx4); // [b, t, h, dh]
        let merged = g.reshape(ctxp, &[b, t, self.dim]);
        self.wo.forward_tokens(g, params, merged)
    }
}

/// One attention block per Appendix A Eq. 13:
/// `I' = LN(MHSA(I, I, I))`, `I'' = MLP(I')`, `I_next = LN(I' + I'')`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ln_attn: LayerNorm,
    mlp: Mlp,
    ln_out: LayerNorm,
}

impl TransformerBlock {
    /// Registers a block of width `dim` with `heads` heads and an MLP hidden
    /// width of `4 * dim`.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        dim: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        let attn = MultiHeadAttention::new(params, &format!("{name}.attn"), dim, heads, rng);
        let ln_attn = LayerNorm::new(params, &format!("{name}.ln_attn"), dim);
        let mlp = Mlp::new(params, &format!("{name}.mlp"), dim, 4 * dim, dim, rng);
        let ln_out = LayerNorm::new(params, &format!("{name}.ln_out"), dim);
        Self {
            attn,
            ln_attn,
            mlp,
            ln_out,
        }
    }

    /// Applies the block to `x [b, t, dim]`.
    pub fn forward(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let attended = self.attn.forward(g, params, x);
        let i_prime = self.ln_attn.forward(g, params, attended);
        let i_second = self.mlp.forward_tokens(g, params, i_prime);
        let summed = g.add(i_prime, i_second);
        self.ln_out.forward(g, params, summed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attention_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let attn = MultiHeadAttention::new(&mut params, "a", 8, 2, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[3, 5, 8], 1.0, &mut rng));
        assert_eq!(g.shape(attn.forward(&g, &params, x)), vec![3, 5, 8]);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn heads_must_divide_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        MultiHeadAttention::new(&mut params, "a", 7, 2, &mut rng);
    }

    #[test]
    fn block_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let blk = TransformerBlock::new(&mut params, "b", 8, 2, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 4, 8], 1.0, &mut rng));
        assert_eq!(g.shape(blk.forward(&g, &params, x)), vec![2, 4, 8]);
    }

    #[test]
    fn block_gradients_flow_and_train() {
        // A block + token-mean classifier should learn a token-order-invariant
        // parity-of-sum toy task better than chance.
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let blk = TransformerBlock::new(&mut params, "b", 8, 2, &mut rng);
        let head = Linear::new(&mut params, "head", 8, 2, true, &mut rng);
        let mut opt = Sgd::new(0.05).with_momentum(0.9);

        // Two fixed token patterns per class.
        let mk = |c: f32| {
            let mut v = vec![0.0f32; 3 * 8];
            for x in v.iter_mut().step_by(2) {
                *x = c;
            }
            v
        };
        let xs = Tensor::from_vec([mk(1.0), mk(-1.0)].concat(), &[2, 3, 8]);
        let ys = [0usize, 1];
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            params.zero_grad();
            let g = Graph::new();
            let x = g.constant(xs.clone());
            let h = blk.forward(&g, &params, x);
            let pooled = g.mean_tokens(h);
            let logits = head.forward(&g, &params, pooled);
            let loss = g.cross_entropy(logits, &ys);
            last = g.value(loss).data()[0];
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        assert!(
            last < 0.3,
            "attention block failed to fit toy task, loss {last}"
        );
    }
}
