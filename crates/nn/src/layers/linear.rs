//! Fully-connected layer.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::init;
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// Affine map `y = x W + b`.
///
/// Works on 2-D inputs (`[batch, in]`) via [`Linear::forward`] and on token
/// sequences (`[batch, tokens, in]`) via [`Linear::forward_tokens`].
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use refil_nn::{layers::Linear, Graph, Params, Tensor};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut params = Params::new();
/// let lin = Linear::new(&mut params, "lin", 4, 2, true, &mut rng);
/// let g = Graph::new();
/// let x = g.constant(Tensor::zeros(&[3, 4]));
/// let y = lin.forward(&g, &params, x);
/// assert_eq!(g.shape(y), vec![3, 2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a trainable linear layer with Xavier-initialized weights.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        Self::with_trainable(params, name, in_dim, out_dim, bias, true, rng)
    }

    /// Registers a linear layer, optionally frozen (`trainable = false`).
    pub fn with_trainable<R: Rng>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        trainable: bool,
        rng: &mut R,
    ) -> Self {
        let weight = params.insert(
            &format!("{name}.weight"),
            init::xavier_uniform(in_dim, out_dim, rng),
            trainable,
        );
        let bias = if bias {
            Some(params.insert(
                &format!("{name}.bias"),
                Tensor::zeros(&[out_dim]),
                trainable,
            ))
        } else {
            None
        };
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter id.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    /// Applies the layer to a `[batch, in]` input.
    pub fn forward(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let w = g.param(params, self.weight);
        let mut y = g.matmul(x, w);
        if let Some(b) = self.bias {
            let bv = g.param(params, b);
            y = g.add_bias(y, bv);
        }
        y
    }

    /// Applies the layer independently to every token of a `[batch, tokens, in]` input.
    pub fn forward_tokens(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let w = g.param(params, self.weight);
        let mut y = g.matmul_tokens(x, w);
        if let Some(b) = self.bias {
            let bv = g.param(params, b);
            y = g.add_bias(y, bv);
        }
        y
    }

    /// Applies the layer to the last-axis-transposed view of `x [b, s, in]`
    /// read as `[b, in, s]` tokens — byte-identical to
    /// `forward_tokens(g, params, g.transpose_last(x))` but without ever
    /// materializing the transposed copy (see [`Graph::matmul_tn_tokens`]).
    pub fn forward_tokens_tn(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let w = g.param(params, self.weight);
        let mut y = g.matmul_tn_tokens(x, w);
        if let Some(b) = self.bias {
            let bv = g.param(params, b);
            y = g.add_bias(y, bv);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let lin = Linear::new(&mut params, "l", 3, 5, true, &mut rng);
        let g = Graph::new();
        let x2 = g.constant(Tensor::zeros(&[2, 3]));
        assert_eq!(g.shape(lin.forward(&g, &params, x2)), vec![2, 5]);
        let x3 = g.constant(Tensor::zeros(&[2, 4, 3]));
        assert_eq!(g.shape(lin.forward_tokens(&g, &params, x3)), vec![2, 4, 5]);
    }

    #[test]
    fn bias_is_added() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let lin = Linear::new(&mut params, "l", 2, 2, true, &mut rng);
        let bid = params.id("l.bias").unwrap();
        params
            .value_mut(bid)
            .data_mut()
            .copy_from_slice(&[1.0, -1.0]);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[1, 2]));
        let y = g.value(lin.forward(&g, &params, x));
        assert_eq!(y.data(), &[1.0, -1.0]);
    }

    #[test]
    fn learns_linear_regression() {
        // y = 2x; a single linear layer should fit it quickly.
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let lin = Linear::new(&mut params, "l", 1, 1, false, &mut rng);
        let mut opt = crate::optim::Sgd::new(0.1);
        for _ in 0..100 {
            params.zero_grad();
            let g = Graph::new();
            let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, -1.0], &[3, 1]));
            let y = lin.forward(&g, &params, x);
            let loss = g.mse_against(y, &Tensor::from_vec(vec![2.0, 4.0, -2.0], &[3, 1]));
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        let w = params.value(lin.weight_id()).data()[0];
        assert!((w - 2.0).abs() < 0.05, "learned {w}");
    }
}
