//! Feature-wise Linear Modulation (FiLM; Perez et al., 2018).
//!
//! The paper's "LT" layer: an affine transformation of instance-level prompts
//! whose scale `alpha_v` and shift `lambda_v` are predicted from a conditional
//! embedding `v` by a linear layer `phi` (Eq. 1).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::params::Params;

use super::linear::Linear;

/// FiLM conditioner: `y = alpha_v * (x + lambda_v)` with
/// `[alpha_v, lambda_v] = phi(v)`.
///
/// `x` is `[batch, rows, channels]`; `v` is `[batch, cond_dim]`; the predicted
/// `alpha_v`/`lambda_v` are `[batch, channels]`, broadcast over rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Film {
    phi: Linear,
    channels: usize,
}

impl Film {
    /// Registers a FiLM layer conditioning `channels`-wide features on a
    /// `cond_dim`-wide embedding.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        cond_dim: usize,
        channels: usize,
        rng: &mut R,
    ) -> Self {
        let phi = Linear::new(
            params,
            &format!("{name}.phi"),
            cond_dim,
            2 * channels,
            true,
            rng,
        );
        Self { phi, channels }
    }

    /// Number of modulated channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Applies `alpha_v * (x + lambda_v)`.
    ///
    /// `alpha_v` is offset by `+1` so an untrained layer starts near identity.
    pub fn forward(&self, g: &Graph, params: &Params, x: Var, v: Var) -> Var {
        let both = self.phi.forward(g, params, v); // [b, 2c]
        let alpha_raw = g.slice(both, 1, 0, self.channels);
        let alpha = g.add_scalar(alpha_raw, 1.0);
        let lambda = g.slice(both, 1, self.channels, self.channels);
        let shifted = g.add_rows_broadcast(x, lambda);
        g.mul_rows_broadcast(shifted, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let film = Film::new(&mut params, "f", 4, 6, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 3, 6], 1.0, &mut rng));
        let v = g.constant(Tensor::randn(&[2, 4], 1.0, &mut rng));
        assert_eq!(g.shape(film.forward(&g, &params, x, v)), vec![2, 3, 6]);
    }

    #[test]
    fn near_identity_at_init() {
        // With zero-ish phi weights, alpha ~= 1 and lambda ~= 0.
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let film = Film::new(&mut params, "f", 2, 3, &mut rng);
        // Zero out phi entirely so the modulation is exactly identity.
        let wid = params.id("f.phi.weight").unwrap();
        params.value_mut(wid).fill(0.0);
        let g = Graph::new();
        let xt = Tensor::randn(&[1, 2, 3], 1.0, &mut rng);
        let x = g.constant(xt.clone());
        let v = g.constant(Tensor::ones(&[1, 2]));
        let y = g.value(film.forward(&g, &params, x, v));
        for (a, b) in y.data().iter().zip(xt.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn different_conditions_give_different_outputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let film = Film::new(&mut params, "f", 2, 3, &mut rng);
        let g = Graph::new();
        let xt = Tensor::ones(&[2, 2, 3]);
        let x = g.constant(xt);
        let v = g.constant(Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]));
        let y = g.value(film.forward(&g, &params, x, v));
        let first = &y.data()[..6];
        let second = &y.data()[6..];
        assert_ne!(first, second, "conditioning had no effect");
    }
}
