//! Frozen patch-embedding tokenizer (Appendix A, Eq. 12).
//!
//! The paper: "We designed a simple embedding model as the feature map
//! tokenizer, similar to ViT, with initialized-only and frozen parameters for
//! feature embedding." This layer splits the extractor's feature map into `n`
//! patches of width `d`, applies a frozen linear embedding per patch, and
//! prepends a trainable `[CLS]` token.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::init;
use crate::params::{ParamId, Params};

use super::linear::Linear;

/// Tokenizes a `[batch, n*d]` feature map into `[batch, n+1, d]` tokens
/// (`[CLS]` first).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatchTokenizer {
    embed: Linear,
    cls: ParamId,
    n_patches: usize,
    dim: usize,
}

impl PatchTokenizer {
    /// Registers a tokenizer producing `n_patches` patch tokens of width `dim`.
    ///
    /// The patch embedding is frozen (initialized-only); the `[CLS]` token is
    /// trainable, matching the paper.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        n_patches: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let embed = Linear::with_trainable(
            params,
            &format!("{name}.embed"),
            dim,
            dim,
            true,
            false, // frozen
            rng,
        );
        let cls = params.insert(
            &format!("{name}.cls"),
            init::prompt_normal(&[1, 1, dim], rng),
            true,
        );
        Self {
            embed,
            cls,
            n_patches,
            dim,
        }
    }

    /// Number of patch tokens (excluding `[CLS]`).
    pub fn n_patches(&self) -> usize {
        self.n_patches
    }

    /// Token width `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Expected flat feature width `n * d`.
    pub fn feature_dim(&self) -> usize {
        self.n_patches * self.dim
    }

    /// Tokenizes `features [batch, n*d]` into `[batch, n+1, d]` with `[CLS]`
    /// at position 0.
    pub fn forward(&self, g: &Graph, params: &Params, features: Var) -> Var {
        let shape = g.shape(features);
        assert_eq!(shape.len(), 2, "tokenizer expects 2-D features");
        let b = shape[0];
        assert_eq!(
            shape[1],
            self.feature_dim(),
            "feature width {} != n_patches*dim {}",
            shape[1],
            self.feature_dim()
        );
        let patches = g.reshape(features, &[b, self.n_patches, self.dim]);
        let embedded = self.embed.forward_tokens(g, params, patches);
        // Broadcast the CLS token across the batch.
        let cls = g.param(params, self.cls); // [1, 1, d]
        let cls_batch = if b == 1 {
            cls
        } else {
            let copies: Vec<Var> = (0..b).map(|_| cls).collect();
            g.concat(&copies, 0)
        };
        g.concat(&[cls_batch, embedded], 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn token_layout() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let tok = PatchTokenizer::new(&mut params, "t", 3, 4, &mut rng);
        let g = Graph::new();
        let f = g.constant(Tensor::randn(&[2, 12], 1.0, &mut rng));
        let tokens = tok.forward(&g, &params, f);
        assert_eq!(g.shape(tokens), vec![2, 4, 4]);
        // CLS rows identical across batch.
        let v = g.value(tokens);
        assert_eq!(&v.data()[0..4], &v.data()[16..20]);
    }

    #[test]
    fn embedding_is_frozen_cls_is_trainable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let _tok = PatchTokenizer::new(&mut params, "t", 2, 4, &mut rng);
        assert!(!params.entry(params.id("t.embed.weight").unwrap()).trainable);
        assert!(params.entry(params.id("t.cls").unwrap()).trainable);
    }
}
