//! Two-layer perceptron with GELU.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::params::Params;

use super::linear::Linear;

/// `Linear -> GELU -> Linear`, the MLP used inside attention blocks and the
/// CDAP generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// Registers an MLP `in_dim -> hidden -> out_dim`.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let fc1 = Linear::new(params, &format!("{name}.fc1"), in_dim, hidden, true, rng);
        let fc2 = Linear::new(params, &format!("{name}.fc2"), hidden, out_dim, true, rng);
        Self { fc1, fc2 }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.fc2.out_dim()
    }

    /// Applies the MLP to a `[batch, in]` input.
    pub fn forward(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let h = self.fc1.forward(g, params, x);
        let h = g.gelu(h);
        self.fc2.forward(g, params, h)
    }

    /// Applies the MLP tokenwise to a `[batch, tokens, in]` input.
    pub fn forward_tokens(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let h = self.fc1.forward_tokens(g, params, x);
        let h = g.gelu(h);
        self.fc2.forward_tokens(g, params, h)
    }

    /// Applies the MLP tokenwise to the last-axis-transposed view of
    /// `x [b, s, in]` — byte-identical to
    /// `forward_tokens(g, params, g.transpose_last(x))` without materializing
    /// the transposed tensor (see [`Linear::forward_tokens_tn`]).
    pub fn forward_tokens_tn(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let h = self.fc1.forward_tokens_tn(g, params, x);
        let h = g.gelu(h);
        self.fc2.forward_tokens(g, params, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "m", 4, 8, 3, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[2, 4]));
        assert_eq!(g.shape(mlp.forward(&g, &params, x)), vec![2, 3]);
        let xt = g.constant(Tensor::zeros(&[2, 5, 4]));
        assert_eq!(g.shape(mlp.forward_tokens(&g, &params, xt)), vec![2, 5, 3]);
    }

    #[test]
    fn learns_xor() {
        // XOR is not linearly separable; an MLP must solve it.
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, "m", 2, 16, 2, &mut rng);
        let mut opt = Sgd::new(0.5).with_momentum(0.9);
        let xs = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        let ys = [0usize, 1, 1, 0];
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            params.zero_grad();
            let g = Graph::new();
            let x = g.constant(xs.clone());
            let logits = mlp.forward(&g, &params, x);
            let loss = g.cross_entropy(logits, &ys);
            last = g.value(loss).data()[0];
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        assert!(last < 0.1, "XOR loss {last}");
        let g = Graph::new();
        let x = g.constant(xs);
        let preds = g.value(mlp.forward(&g, &params, x)).argmax_last();
        assert_eq!(preds, ys.to_vec());
    }
}
