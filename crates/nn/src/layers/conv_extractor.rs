//! Convolutional feature extractor — the direct CNN analogue of the paper's
//! ResNet10 backbone for 1-D feature inputs.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

use super::linear::Linear;

/// A two-stage 1-D CNN: `conv(1->c, k5, pad2) -> GELU -> pool(2) ->
/// conv(c->2c, k3, pad1) -> GELU -> pool(2) -> flatten -> linear`.
///
/// Interchangeable with [`super::ResidualExtractor`] through
/// [`crate::models::BackboneConfig::extractor`]; the `ablation_extractor`
/// bench compares the two.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvExtractor {
    w1: ParamId,
    b1: ParamId,
    w2: ParamId,
    b2: ParamId,
    head: Linear,
    in_dim: usize,
    channels: usize,
    out_dim: usize,
}

impl ConvExtractor {
    /// Registers the extractor: `in_dim`-long 1-channel signals to `out_dim`
    /// features through `channels` (then `2*channels`) conv channels.
    ///
    /// # Panics
    ///
    /// Panics if `in_dim < 4` (two pooling stages need headroom).
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        channels: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            in_dim >= 4,
            "conv extractor needs in_dim >= 4, got {in_dim}"
        );
        let k1 = 5.min(in_dim);
        let std1 = (2.0 / k1 as f32).sqrt();
        let w1 = params.insert(
            &format!("{name}.conv1.weight"),
            Tensor::randn(&[channels, 1, k1], std1, rng),
            true,
        );
        let b1 = params.insert(
            &format!("{name}.conv1.bias"),
            Tensor::zeros(&[channels]),
            true,
        );
        let l1 = in_dim / 2; // after pad-same conv + pool(2)
        let k2 = 3.min(l1);
        let std2 = (2.0 / (channels * k2) as f32).sqrt();
        let w2 = params.insert(
            &format!("{name}.conv2.weight"),
            Tensor::randn(&[2 * channels, channels, k2], std2, rng),
            true,
        );
        let b2 = params.insert(
            &format!("{name}.conv2.bias"),
            Tensor::zeros(&[2 * channels]),
            true,
        );
        let l2 = l1 / 2;
        let flat = 2 * channels * l2;
        let head = Linear::new(params, &format!("{name}.head"), flat, out_dim, true, rng);
        Self {
            w1,
            b1,
            w2,
            b2,
            head,
            in_dim,
            channels,
            out_dim,
        }
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Extracts features from a `[batch, in_dim]` input.
    pub fn forward(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let shape = g.shape(x);
        assert_eq!(shape.len(), 2, "conv extractor expects [batch, in_dim]");
        let b = shape[0];
        assert_eq!(shape[1], self.in_dim, "input width mismatch");
        let sig = g.reshape(x, &[b, 1, self.in_dim]);

        let w1 = g.param(params, self.w1);
        let b1 = g.param(params, self.b1);
        let k1 = g.shape(w1)[2];
        let mut h = g.conv1d(sig, w1, b1, k1 / 2);
        // Pad-same with odd kernels preserves length; trim defensively for
        // even kernels.
        let l = g.shape(h)[2].min(self.in_dim);
        h = g.slice(h, 2, 0, l);
        h = g.gelu(h);
        h = g.avg_pool1d(h, 2);

        let w2 = g.param(params, self.w2);
        let b2 = g.param(params, self.b2);
        let k2 = g.shape(w2)[2];
        let l1 = g.shape(h)[2];
        let mut h2 = g.conv1d(h, w2, b2, k2 / 2);
        let l2 = g.shape(h2)[2].min(l1);
        h2 = g.slice(h2, 2, 0, l2);
        h2 = g.gelu(h2);
        h2 = g.avg_pool1d(h2, 2);

        let hs = g.shape(h2);
        let flat = g.reshape(h2, &[b, hs[1] * hs[2]]);
        self.head.forward(g, params, flat)
    }

    /// Channel width of the first stage.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let ext = ConvExtractor::new(&mut params, "c", 16, 4, 12, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[3, 16], 1.0, &mut rng));
        assert_eq!(g.shape(ext.forward(&g, &params, x)), vec![3, 12]);
    }

    #[test]
    fn trains_a_separable_problem() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let ext = ConvExtractor::new(&mut params, "c", 8, 4, 8, &mut rng);
        let head = Linear::new(&mut params, "clf", 8, 2, true, &mut rng);
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        // Class 0: energy at the front; class 1: at the back.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..16 {
            let k = i % 2;
            for j in 0..8 {
                let on = if k == 0 { j < 4 } else { j >= 4 };
                xs.push(if on { 1.5 } else { -0.5 } + crate::tensor::gaussian(&mut rng) * 0.2);
            }
            ys.push(k);
        }
        let x = Tensor::from_vec(xs, &[16, 8]);
        let mut last = f32::INFINITY;
        for _ in 0..80 {
            params.zero_grad();
            let g = Graph::new();
            let xv = g.constant(x.clone());
            let f = ext.forward(&g, &params, xv);
            let logits = head.forward(&g, &params, f);
            let loss = g.cross_entropy(logits, &ys);
            last = g.value(loss).data()[0];
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        assert!(last < 0.2, "conv extractor failed to fit, loss {last}");
    }

    #[test]
    #[should_panic(expected = "in_dim >= 4")]
    fn rejects_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        ConvExtractor::new(&mut params, "c", 2, 4, 8, &mut rng);
    }
}
