//! Classification head (Appendix A, Eq. 14).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::params::Params;

use super::linear::Linear;

/// A single feed-forward layer mapping the `[CLS]` representation to class
/// logits: `y = G([CLS]_B)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Classifier {
    head: Linear,
    classes: usize,
}

impl Classifier {
    /// Registers a classifier from width `dim` to `classes` logits.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        dim: usize,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        let head = Linear::new(params, &format!("{name}.head"), dim, classes, true, rng);
        Self { head, classes }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Maps `[batch, dim]` class-token features to `[batch, classes]` logits.
    pub fn forward(&self, g: &Graph, params: &Params, cls: Var) -> Var {
        self.head.forward(g, params, cls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn logit_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let clf = Classifier::new(&mut params, "g", 8, 10, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[4, 8]));
        assert_eq!(g.shape(clf.forward(&g, &params, x)), vec![4, 10]);
        assert_eq!(clf.classes(), 10);
    }
}
