//! Dropout regularization layer.

use serde::{Deserialize, Serialize};

use rand::Rng;

use crate::graph::{Graph, Var};

/// Inverted dropout: active only when `training` is passed as `true`, so the
/// same layer serves train and eval passes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Self { p }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Applies dropout when `training`, identity otherwise.
    pub fn forward<R: Rng>(&self, g: &Graph, x: Var, training: bool, rng: &mut R) -> Var {
        if training && self.p > 0.0 {
            g.dropout(x, self.p, rng)
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = Graph::new();
        let x = g.constant(Tensor::ones(&[16]));
        let d = Dropout::new(0.5);
        let y = d.forward(&g, x, false, &mut rng);
        assert_eq!(g.value(y).data(), Tensor::ones(&[16]).data());
    }

    #[test]
    fn train_mode_drops_some() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::new();
        let x = g.constant(Tensor::ones(&[64]));
        let d = Dropout::new(0.5);
        let y = g.value(d.forward(&g, x, true, &mut rng));
        assert!(y.data().iter().any(|&v| v == 0.0));
        assert!(y.data().iter().any(|&v| v > 1.0));
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn rejects_invalid_probability() {
        Dropout::new(1.0);
    }
}
