//! Index-to-vector embedding table.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::init;
use crate::params::{ParamId, Params};

/// A `[vocab, dim]` lookup table. RefFiL uses one as the task-specific key
/// embedding layer that conditions the CDAP generator on the local task ID.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    weight: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers an embedding table initialized from `N(0, 0.02^2)`.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let weight = params.insert(
            &format!("{name}.weight"),
            init::prompt_normal(&[vocab, dim], rng),
            true,
        );
        Self { weight, vocab, dim }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The weight parameter id.
    pub fn weight_id(&self) -> ParamId {
        self.weight
    }

    /// Looks up `indices`, returning a `[indices.len(), dim]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if any index `>= vocab`.
    pub fn forward(&self, g: &Graph, params: &Params, indices: &[usize]) -> Var {
        let w = g.param(params, self.weight);
        g.embedding(w, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_shape_and_rows() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 5, 3, &mut rng);
        let g = Graph::new();
        let out = g.value(emb.forward(&g, &params, &[2, 2, 4]));
        assert_eq!(out.shape(), &[3, 3]);
        assert_eq!(&out.data()[0..3], &out.data()[3..6], "same index, same row");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_index_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let emb = Embedding::new(&mut params, "e", 2, 3, &mut rng);
        let g = Graph::new();
        emb.forward(&g, &params, &[2]);
    }
}
