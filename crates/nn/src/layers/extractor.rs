//! Residual feature extractor — the ResNet10 stand-in.
//!
//! The paper uses ResNet10 over images. This reproduction feeds synthetic
//! feature vectors instead (see `refil-data`), so the extractor is a stack of
//! pre-norm residual MLP blocks: the same inductive structure (skip
//! connections, depth) with the input modality swapped. Every method in the
//! evaluation shares this extractor, so relative comparisons are unaffected.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::params::Params;

use super::linear::Linear;
use super::norm::LayerNorm;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ResBlock {
    ln: LayerNorm,
    fc1: Linear,
    fc2: Linear,
}

impl ResBlock {
    fn new<R: Rng>(params: &mut Params, name: &str, width: usize, rng: &mut R) -> Self {
        let ln = LayerNorm::new(params, &format!("{name}.ln"), width);
        let fc1 = Linear::new(params, &format!("{name}.fc1"), width, width, true, rng);
        let fc2 = Linear::new(params, &format!("{name}.fc2"), width, width, true, rng);
        Self { ln, fc1, fc2 }
    }

    fn forward(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let h = self.ln.forward(g, params, x);
        let h = self.fc1.forward(g, params, h);
        let h = g.gelu(h);
        let h = self.fc2.forward(g, params, h);
        g.add(x, h)
    }
}

/// Residual MLP feature extractor `h(x)`: `[batch, in_dim] -> [batch, out_dim]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidualExtractor {
    stem: Linear,
    blocks: Vec<ResBlock>,
    head_ln: LayerNorm,
    proj: Linear,
    out_dim: usize,
}

impl ResidualExtractor {
    /// Registers an extractor with `depth` residual blocks of width `width`.
    pub fn new<R: Rng>(
        params: &mut Params,
        name: &str,
        in_dim: usize,
        width: usize,
        depth: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let stem = Linear::new(params, &format!("{name}.stem"), in_dim, width, true, rng);
        let blocks = (0..depth)
            .map(|i| ResBlock::new(params, &format!("{name}.block{i}"), width, rng))
            .collect();
        let head_ln = LayerNorm::new(params, &format!("{name}.head_ln"), width);
        let proj = Linear::new(params, &format!("{name}.proj"), width, out_dim, true, rng);
        Self {
            stem,
            blocks,
            head_ln,
            proj,
            out_dim,
        }
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Extracts features from a `[batch, in_dim]` input.
    pub fn forward(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let mut h = self.stem.forward(g, params, x);
        h = g.gelu(h);
        for blk in &self.blocks {
            h = blk.forward(g, params, h);
        }
        h = self.head_ln.forward(g, params, h);
        self.proj.forward(g, params, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let ext = ResidualExtractor::new(&mut params, "h", 6, 16, 2, 8, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[5, 6], 1.0, &mut rng));
        assert_eq!(g.shape(ext.forward(&g, &params, x)), vec![5, 8]);
    }

    #[test]
    fn depth_zero_is_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let ext = ResidualExtractor::new(&mut params, "h", 4, 8, 0, 4, &mut rng);
        let g = Graph::new();
        let x = g.constant(Tensor::zeros(&[1, 4]));
        assert_eq!(g.shape(ext.forward(&g, &params, x)), vec![1, 4]);
    }

    #[test]
    fn trains_a_separable_problem() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let ext = ResidualExtractor::new(&mut params, "h", 2, 16, 2, 8, &mut rng);
        let head = Linear::new(&mut params, "c", 8, 2, true, &mut rng);
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let xs = Tensor::from_vec(vec![1.0, 1.0, -1.0, -1.0, 1.0, -1.0, -1.0, 1.0], &[4, 2]);
        let ys = [0usize, 0, 1, 1];
        let mut last = f32::INFINITY;
        for _ in 0..80 {
            params.zero_grad();
            let g = Graph::new();
            let x = g.constant(xs.clone());
            let f = ext.forward(&g, &params, x);
            let logits = head.forward(&g, &params, f);
            let loss = g.cross_entropy(logits, &ys);
            last = g.value(loss).data()[0];
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        assert!(last < 0.1, "extractor failed to fit, loss {last}");
    }
}
