//! Layer normalization with learned gain/bias.

use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::params::{ParamId, Params};
use crate::tensor::Tensor;

/// LayerNorm over the last axis (Ba et al., 2016), as used throughout the
/// RefFiL backbone and CDAP generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    gain: ParamId,
    bias: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Registers a LayerNorm over vectors of width `dim`.
    pub fn new(params: &mut Params, name: &str, dim: usize) -> Self {
        Self::with_trainable(params, name, dim, true)
    }

    /// Registers a LayerNorm, optionally frozen.
    pub fn with_trainable(params: &mut Params, name: &str, dim: usize, trainable: bool) -> Self {
        let gain = params.insert(&format!("{name}.gain"), Tensor::ones(&[dim]), trainable);
        let bias = params.insert(&format!("{name}.bias"), Tensor::zeros(&[dim]), trainable);
        Self {
            gain,
            bias,
            dim,
            eps: 1e-5,
        }
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies normalization to a `[..., dim]` input.
    pub fn forward(&self, g: &Graph, params: &Params, x: Var) -> Var {
        let gain = g.param(params, self.gain);
        let bias = g.param(params, self.bias);
        g.layer_norm(x, gain, bias, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_standardized() {
        let mut params = Params::new();
        let ln = LayerNorm::new(&mut params, "ln", 4);
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(
            vec![10.0, 20.0, 30.0, 40.0, 1.0, 1.0, 2.0, 2.0],
            &[2, 4],
        ));
        let y = g.value(ln.forward(&g, &params, x));
        for row in y.data().chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
        }
    }

    #[test]
    fn works_on_token_sequences() {
        let mut params = Params::new();
        let ln = LayerNorm::new(&mut params, "ln", 3);
        let g = Graph::new();
        let x = g.constant(Tensor::ones(&[2, 4, 3]));
        assert_eq!(g.shape(ln.forward(&g, &params, x)), vec![2, 4, 3]);
    }
}
