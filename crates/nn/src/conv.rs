//! 1-D convolution and pooling ops.
//!
//! The paper's backbone is a CNN feature extractor; this reproduction's
//! inputs are 1-D feature vectors, so the faithful CNN analogue is a 1-D
//! convolutional stack (see [`crate::layers::ConvExtractor`]). Ops live here
//! as [`Graph`] extensions with hand-derived backward passes, verified
//! against finite differences in the tests.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

impl Graph {
    /// 1-D convolution: `x [b, c_in, l] * w [c_out, c_in, k] + bias [c_out]`
    /// with stride 1 and symmetric zero padding `pad`, giving
    /// `[b, c_out, l + 2*pad - k + 1]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches or if the output length would be zero.
    pub fn conv1d(&self, x: Var, w: Var, bias: Var, pad: usize) -> Var {
        let (xs, ws, bs) = (self.shape(x), self.shape(w), self.shape(bias));
        assert_eq!(xs.len(), 3, "conv1d input must be [b, c_in, l]");
        assert_eq!(ws.len(), 3, "conv1d weight must be [c_out, c_in, k]");
        let (b, c_in, l) = (xs[0], xs[1], xs[2]);
        let (c_out, c_in2, k) = (ws[0], ws[1], ws[2]);
        assert_eq!(c_in, c_in2, "channel mismatch");
        assert_eq!(bs, vec![c_out], "bias must be [c_out]");
        assert!(l + 2 * pad >= k, "kernel larger than padded input");
        let l_out = l + 2 * pad - k + 1;

        let value = {
            let xv = self.value(x);
            let wv = self.value(w);
            let bv = self.value(bias);
            let mut out = vec![0.0f32; b * c_out * l_out];
            for bi in 0..b {
                for co in 0..c_out {
                    for lo in 0..l_out {
                        let mut acc = bv.data()[co];
                        for ci in 0..c_in {
                            for kk in 0..k {
                                let xi = lo + kk;
                                if xi < pad || xi - pad >= l {
                                    continue;
                                }
                                acc += xv.data()[(bi * c_in + ci) * l + (xi - pad)]
                                    * wv.data()[(co * c_in + ci) * k + kk];
                            }
                        }
                        out[(bi * c_out + co) * l_out + lo] = acc;
                    }
                }
            }
            Tensor::from_vec(out, &[b, c_out, l_out])
        };

        self.push_conv_node(value, x, w, bias, pad, (b, c_in, l, c_out, k, l_out))
    }

    #[allow(clippy::too_many_arguments)]
    fn push_conv_node(
        &self,
        value: Tensor,
        x: Var,
        w: Var,
        bias: Var,
        pad: usize,
        dims: (usize, usize, usize, usize, usize, usize),
    ) -> Var {
        let (b, c_in, l, c_out, k, l_out) = dims;
        self.push_node(
            value,
            vec![x, w, bias],
            Box::new(move |g, p, _| {
                let (xv, wv) = (p[0], p[1]);
                let mut dx = vec![0.0f32; b * c_in * l];
                let mut dw = vec![0.0f32; c_out * c_in * k];
                let mut db = vec![0.0f32; c_out];
                for bi in 0..b {
                    for (co, db_co) in db.iter_mut().enumerate() {
                        for lo in 0..l_out {
                            let gi = g.data()[(bi * c_out + co) * l_out + lo];
                            if gi == 0.0 {
                                continue;
                            }
                            *db_co += gi;
                            for ci in 0..c_in {
                                for kk in 0..k {
                                    let xi = lo + kk;
                                    if xi < pad || xi - pad >= l {
                                        continue;
                                    }
                                    let x_idx = (bi * c_in + ci) * l + (xi - pad);
                                    let w_idx = (co * c_in + ci) * k + kk;
                                    dx[x_idx] += gi * wv.data()[w_idx];
                                    dw[w_idx] += gi * xv.data()[x_idx];
                                }
                            }
                        }
                    }
                }
                vec![
                    Tensor::from_vec(dx, &[b, c_in, l]),
                    Tensor::from_vec(dw, &[c_out, c_in, k]),
                    Tensor::from_vec(db, &[c_out]),
                ]
            }),
        )
    }

    /// Average pooling over the length axis: `x [b, c, l] -> [b, c, l/window]`
    /// (trailing remainder dropped).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or larger than the input length.
    pub fn avg_pool1d(&self, x: Var, window: usize) -> Var {
        let xs = self.shape(x);
        assert_eq!(xs.len(), 3, "avg_pool1d input must be [b, c, l]");
        let (b, c, l) = (xs[0], xs[1], xs[2]);
        assert!(
            window > 0 && window <= l,
            "bad pooling window {window} for length {l}"
        );
        let l_out = l / window;
        let value = {
            let xv = self.value(x);
            let inv = 1.0 / window as f32;
            let mut out = vec![0.0f32; b * c * l_out];
            for bc in 0..b * c {
                for j in 0..l_out {
                    let mut acc = 0.0;
                    for t in 0..window {
                        acc += xv.data()[bc * l + j * window + t];
                    }
                    out[bc * l_out + j] = acc * inv;
                }
            }
            Tensor::from_vec(out, &[b, c, l_out])
        };
        self.push_node(
            value,
            vec![x],
            Box::new(move |g, _, _| {
                let inv = 1.0 / window as f32;
                let mut dx = vec![0.0f32; b * c * l];
                for bc in 0..b * c {
                    for j in 0..l_out {
                        let gi = g.data()[bc * l_out + j] * inv;
                        for t in 0..window {
                            dx[bc * l + j * window + t] = gi;
                        }
                    }
                }
                vec![Tensor::from_vec(dx, &[b, c, l])]
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grad_check(
        params: &mut Params,
        ids: &[crate::params::ParamId],
        f: &dyn Fn(&Graph, &Params) -> Var,
        tol: f32,
    ) {
        params.zero_grad();
        let g = Graph::new();
        let loss = f(&g, params);
        g.backward(loss, params);
        let analytic: Vec<Tensor> = ids.iter().map(|&id| params.grad(id).clone()).collect();
        let eps = 1e-2f32;
        for (pi, &id) in ids.iter().enumerate() {
            for j in 0..params.value(id).numel() {
                let orig = params.value(id).data()[j];
                params.value_mut(id).data_mut()[j] = orig + eps;
                let lp = {
                    let gp = Graph::new();
                    gp.value(f(&gp, params)).data()[0]
                };
                params.value_mut(id).data_mut()[j] = orig - eps;
                let lm = {
                    let gm = Graph::new();
                    gm.value(f(&gm, params)).data()[0]
                };
                params.value_mut(id).data_mut()[j] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let got = analytic[pi].data()[j];
                assert!(
                    (numeric - got).abs() < tol * (1.0 + numeric.abs()),
                    "param {pi} elem {j}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn conv1d_matches_hand_computation() {
        let g = Graph::new();
        // x: one batch, one channel, [1, 2, 3]; w: identity-ish kernel [1].
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]));
        let w = g.constant(Tensor::from_vec(vec![1.0, 0.0], &[1, 1, 2]));
        let b = g.constant(Tensor::zeros(&[1]));
        let y = g.value(g.conv1d(x, w, b, 0));
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[1.0, 2.0]);
    }

    #[test]
    fn conv1d_same_padding_preserves_length() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 3, 8], 1.0, &mut rng));
        let w = g.constant(Tensor::randn(&[4, 3, 3], 0.5, &mut rng));
        let b = g.constant(Tensor::zeros(&[4]));
        let y = g.conv1d(x, w, b, 1);
        assert_eq!(g.shape(y), vec![2, 4, 8]);
    }

    #[test]
    fn conv1d_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 2, 5], 0.5, &mut rng), true);
        let w = params.insert("w", Tensor::randn(&[3, 2, 3], 0.5, &mut rng), true);
        let b = params.insert("b", Tensor::randn(&[3], 0.5, &mut rng), true);
        grad_check(
            &mut params,
            &[x, w, b],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let wv = g.param(p, p.id("w").unwrap());
                let bv = g.param(p, p.id("b").unwrap());
                let y = g.conv1d(xv, wv, bv, 1);
                let t = g.tanh(y);
                g.sum_all(t)
            },
            3e-2,
        );
    }

    #[test]
    fn avg_pool_reduces_and_averages() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 4]));
        let y = g.value(g.avg_pool1d(x, 2));
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[2.0, 6.0]);
    }

    #[test]
    fn avg_pool_gradcheck() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 2, 6], 0.5, &mut rng), true);
        grad_check(
            &mut params,
            &[x],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let y = g.avg_pool1d(xv, 2);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn pool_drops_remainder() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[1, 1, 5]));
        let y = g.avg_pool1d(x, 2);
        assert_eq!(g.shape(y), vec![1, 1, 2]);
    }
}
