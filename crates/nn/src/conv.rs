//! 1-D convolution and pooling ops.
//!
//! The paper's backbone is a CNN feature extractor; this reproduction's
//! inputs are 1-D feature vectors, so the faithful CNN analogue is a 1-D
//! convolutional stack (see [`crate::layers::ConvExtractor`]). Ops live here
//! as [`Graph`] extensions with hand-derived backward passes, verified
//! against finite differences in the tests.
//!
//! Both the forward and backward passes lower to im2col + GEMM: the input
//! `[b, c_in, l]` is unrolled into a column matrix `[b, c_in·k, l_out]` so
//! convolution becomes a per-batch `w [c_out, c_in·k] × cols` product on the
//! tiled kernels in [`crate::gemm`]. The column buffer is recycled through a
//! thread-local pool keyed by `(b, c_in, l, k, pad)` so steady-state training
//! steps do not allocate it again. The im2col unroll index `p = ci·k + kk`
//! walks `(ci, kk)` in exactly the order the old nested loop did, so the
//! forward accumulation per output element is the same floating-point chain.

use crate::gemm::{gemm, gemm_nt, gemm_tn, naive_forced};
use crate::graph::{Graph, Var};
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::HashMap;

/// Shape key for the im2col buffer pool: `(b, c_in, l, k, pad)`.
type ColsKey = (usize, usize, usize, usize, usize);

thread_local! {
    /// Per-thread pool of im2col column buffers, keyed by conv shape. A
    /// training step takes a buffer, fills it, and returns it before the op
    /// completes, so the pool holds at most a couple of buffers per shape.
    static COLS_POOL: RefCell<HashMap<ColsKey, Vec<Vec<f32>>>> = RefCell::new(HashMap::new());
}

fn take_cols(key: ColsKey, len: usize) -> Vec<f32> {
    let pooled = COLS_POOL.with(|p| p.borrow_mut().entry(key).or_default().pop());
    match pooled {
        Some(mut v) => {
            debug_assert_eq!(v.len(), len);
            v.resize(len, 0.0);
            v
        }
        None => vec![0.0f32; len],
    }
}

fn recycle_cols(key: ColsKey, v: Vec<f32>) {
    COLS_POOL.with(|p| p.borrow_mut().entry(key).or_default().push(v));
}

/// Unrolls `x [b, c_in, l]` into `cols [b, c_in·k, l_out]` with zero padding;
/// every cell is written, so a recycled buffer needs no prior clearing.
#[allow(clippy::too_many_arguments)]
fn im2col(xv: &[f32], cols: &mut [f32], b: usize, c_in: usize, l: usize, k: usize, pad: usize) {
    let l_out = l + 2 * pad - k + 1;
    for bi in 0..b {
        for ci in 0..c_in {
            let xrow = &xv[(bi * c_in + ci) * l..(bi * c_in + ci + 1) * l];
            for kk in 0..k {
                let row = &mut cols[((bi * c_in + ci) * k + kk) * l_out..][..l_out];
                for (lo, cell) in row.iter_mut().enumerate() {
                    let xi = lo + kk;
                    *cell = if xi < pad || xi - pad >= l {
                        0.0
                    } else {
                        xrow[xi - pad]
                    };
                }
            }
        }
    }
}

/// Scatter-adds `dcols [b, c_in·k, l_out]` back onto `dx [b, c_in, l]`
/// (the adjoint of [`im2col`]); padded positions are dropped.
#[allow(clippy::too_many_arguments)]
fn col2im_add(
    dcols: &[f32],
    dx: &mut [f32],
    b: usize,
    c_in: usize,
    l: usize,
    k: usize,
    pad: usize,
) {
    let l_out = l + 2 * pad - k + 1;
    for bi in 0..b {
        for ci in 0..c_in {
            let dxrow = &mut dx[(bi * c_in + ci) * l..(bi * c_in + ci + 1) * l];
            for kk in 0..k {
                let row = &dcols[((bi * c_in + ci) * k + kk) * l_out..][..l_out];
                for (lo, &cell) in row.iter().enumerate() {
                    let xi = lo + kk;
                    if xi >= pad && xi - pad < l {
                        dxrow[xi - pad] += cell;
                    }
                }
            }
        }
    }
}

impl Graph {
    /// 1-D convolution: `x [b, c_in, l] * w [c_out, c_in, k] + bias [c_out]`
    /// with stride 1 and symmetric zero padding `pad`, giving
    /// `[b, c_out, l + 2*pad - k + 1]`.
    ///
    /// Lowered to im2col + per-batch GEMM; the output is seeded with the bias
    /// before the product so each element is the chain
    /// `bias + Σ_p x·w` in ascending `p = ci·k + kk` order.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches or if the output length would be zero.
    pub fn conv1d(&self, x: Var, w: Var, bias: Var, pad: usize) -> Var {
        let (xs, ws, bs) = (self.shape(x), self.shape(w), self.shape(bias));
        assert_eq!(xs.len(), 3, "conv1d input must be [b, c_in, l]");
        assert_eq!(ws.len(), 3, "conv1d weight must be [c_out, c_in, k]");
        let (b, c_in, l) = (xs[0], xs[1], xs[2]);
        let (c_out, c_in2, k) = (ws[0], ws[1], ws[2]);
        assert_eq!(c_in, c_in2, "channel mismatch");
        assert_eq!(bs, vec![c_out], "bias must be [c_out]");
        assert!(l + 2 * pad >= k, "kernel larger than padded input");
        let l_out = l + 2 * pad - k + 1;

        let value = self.with_value(x, |xv| {
            self.with_value(w, |wv| {
                self.with_value(bias, |bv| {
                    if naive_forced() {
                        // Pre-PR path for the A/B escape hatch: the 5-deep
                        // nested loop.
                        let mut out = self.out_zeroed(b * c_out * l_out);
                        for bi in 0..b {
                            for co in 0..c_out {
                                for lo in 0..l_out {
                                    let mut acc = bv.data()[co];
                                    for ci in 0..c_in {
                                        for kk in 0..k {
                                            let xi = lo + kk;
                                            if xi < pad || xi - pad >= l {
                                                continue;
                                            }
                                            acc += xv.data()[(bi * c_in + ci) * l + (xi - pad)]
                                                * wv.data()[(co * c_in + ci) * k + kk];
                                        }
                                    }
                                    out[(bi * c_out + co) * l_out + lo] = acc;
                                }
                            }
                        }
                        Tensor::from_vec(out, &[b, c_out, l_out])
                    } else {
                        let key = (b, c_in, l, k, pad);
                        let ckl = c_in * k * l_out;
                        let mut cols = take_cols(key, b * ckl);
                        im2col(xv.data(), &mut cols, b, c_in, l, k, pad);
                        let mut out = self.out_zeroed(b * c_out * l_out);
                        for bi in 0..b {
                            let out_bi = &mut out[bi * c_out * l_out..(bi + 1) * c_out * l_out];
                            for co in 0..c_out {
                                out_bi[co * l_out..(co + 1) * l_out].fill(bv.data()[co]);
                            }
                            gemm(
                                wv.data(),
                                &cols[bi * ckl..(bi + 1) * ckl],
                                out_bi,
                                c_out,
                                c_in * k,
                                l_out,
                            );
                        }
                        recycle_cols(key, cols);
                        Tensor::from_vec(out, &[b, c_out, l_out])
                    }
                })
            })
        });

        self.push_conv_node(value, x, w, bias, pad, (b, c_in, l, c_out, k, l_out))
    }

    #[allow(clippy::too_many_arguments)]
    fn push_conv_node(
        &self,
        value: Tensor,
        x: Var,
        w: Var,
        bias: Var,
        pad: usize,
        dims: (usize, usize, usize, usize, usize, usize),
    ) -> Var {
        let (b, c_in, l, c_out, k, l_out) = dims;
        self.push_node(
            value,
            vec![x, w, bias],
            self.bw(|| {
                Box::new(move |g, p, _, scr| {
                    let (xv, wv) = (p[0], p[1]);
                    if naive_forced() {
                        // Pre-PR path for the A/B escape hatch: gathered loops
                        // with the gi == 0.0 skip branch.
                        let mut dx = scr.take_zeroed(b * c_in * l);
                        let mut dw = scr.take_zeroed(c_out * c_in * k);
                        let mut db = scr.take_zeroed(c_out);
                        for bi in 0..b {
                            for (co, db_co) in db.iter_mut().enumerate() {
                                for lo in 0..l_out {
                                    let gi = g.data()[(bi * c_out + co) * l_out + lo];
                                    if gi == 0.0 {
                                        continue;
                                    }
                                    *db_co += gi;
                                    for ci in 0..c_in {
                                        for kk in 0..k {
                                            let xi = lo + kk;
                                            if xi < pad || xi - pad >= l {
                                                continue;
                                            }
                                            let x_idx = (bi * c_in + ci) * l + (xi - pad);
                                            let w_idx = (co * c_in + ci) * k + kk;
                                            dx[x_idx] += gi * wv.data()[w_idx];
                                            dw[w_idx] += gi * xv.data()[x_idx];
                                        }
                                    }
                                }
                            }
                        }
                        return vec![
                            Tensor::from_vec(dx, &[b, c_in, l]),
                            Tensor::from_vec(dw, &[c_out, c_in, k]),
                            Tensor::from_vec(db, &[c_out]),
                        ];
                    }
                    let key = (b, c_in, l, k, pad);
                    let ckl = c_in * k * l_out;
                    // Rebuild the column matrix from the parent value instead of
                    // capturing the forward buffer, so the pool stays small.
                    let mut cols = take_cols(key, b * ckl);
                    im2col(xv.data(), &mut cols, b, c_in, l, k, pad);
                    let mut dcols = take_cols(key, b * ckl);
                    let mut dw = scr.take_zeroed(c_out * c_in * k);
                    let mut db = scr.take_zeroed(c_out);
                    for bi in 0..b {
                        for (co, db_co) in db.iter_mut().enumerate() {
                            for lo in 0..l_out {
                                *db_co += g.data()[(bi * c_out + co) * l_out + lo];
                            }
                        }
                    }
                    for bi in 0..b {
                        let gs = &g.data()[bi * c_out * l_out..(bi + 1) * c_out * l_out];
                        // dw += g_bi · cols_biᵀ: per weight the terms arrive in the
                        // same (bi, lo) order as the old nested loop.
                        gemm_nt(
                            gs,
                            &cols[bi * ckl..(bi + 1) * ckl],
                            &mut dw,
                            c_out,
                            l_out,
                            c_in * k,
                        );
                        // dcols_bi = wᵀ · g_bi, scattered back onto dx below.
                        let dcols_bi = &mut dcols[bi * ckl..(bi + 1) * ckl];
                        dcols_bi.fill(0.0);
                        gemm_tn(wv.data(), gs, dcols_bi, c_in * k, c_out, l_out);
                    }
                    let mut dx = scr.take_zeroed(b * c_in * l);
                    col2im_add(&dcols, &mut dx, b, c_in, l, k, pad);
                    recycle_cols(key, cols);
                    recycle_cols(key, dcols);
                    vec![
                        Tensor::from_vec(dx, &[b, c_in, l]),
                        Tensor::from_vec(dw, &[c_out, c_in, k]),
                        Tensor::from_vec(db, &[c_out]),
                    ]
                })
            }),
        )
    }

    /// Average pooling over the length axis: `x [b, c, l] -> [b, c, l/window]`
    /// (trailing remainder dropped).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or larger than the input length.
    pub fn avg_pool1d(&self, x: Var, window: usize) -> Var {
        let xs = self.shape(x);
        assert_eq!(xs.len(), 3, "avg_pool1d input must be [b, c, l]");
        let (b, c, l) = (xs[0], xs[1], xs[2]);
        assert!(
            window > 0 && window <= l,
            "bad pooling window {window} for length {l}"
        );
        let l_out = l / window;
        let value = self.with_value(x, |xv| {
            let inv = 1.0 / window as f32;
            let mut out = self.out_zeroed(b * c * l_out);
            for bc in 0..b * c {
                for j in 0..l_out {
                    let mut acc = 0.0;
                    for t in 0..window {
                        acc += xv.data()[bc * l + j * window + t];
                    }
                    out[bc * l_out + j] = acc * inv;
                }
            }
            Tensor::from_vec(out, &[b, c, l_out])
        });
        self.push_node(
            value,
            vec![x],
            self.bw(|| {
                Box::new(move |g, _, _, scr| {
                    let inv = 1.0 / window as f32;
                    let mut dx = scr.take_zeroed(b * c * l);
                    for bc in 0..b * c {
                        for j in 0..l_out {
                            let gi = g.data()[bc * l_out + j] * inv;
                            for t in 0..window {
                                dx[bc * l + j * window + t] = gi;
                            }
                        }
                    }
                    vec![Tensor::from_vec(dx, &[b, c, l])]
                })
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grad_check(
        params: &mut Params,
        ids: &[crate::params::ParamId],
        f: &dyn Fn(&Graph, &Params) -> Var,
        tol: f32,
    ) {
        params.zero_grad();
        let g = Graph::new();
        let loss = f(&g, params);
        g.backward(loss, params);
        let analytic: Vec<Tensor> = ids.iter().map(|&id| params.grad(id).clone()).collect();
        let eps = 1e-2f32;
        for (pi, &id) in ids.iter().enumerate() {
            for j in 0..params.value(id).numel() {
                let orig = params.value(id).data()[j];
                params.value_mut(id).data_mut()[j] = orig + eps;
                let lp = {
                    let gp = Graph::new();
                    gp.value(f(&gp, params)).data()[0]
                };
                params.value_mut(id).data_mut()[j] = orig - eps;
                let lm = {
                    let gm = Graph::new();
                    gm.value(f(&gm, params)).data()[0]
                };
                params.value_mut(id).data_mut()[j] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let got = analytic[pi].data()[j];
                assert!(
                    (numeric - got).abs() < tol * (1.0 + numeric.abs()),
                    "param {pi} elem {j}: numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    #[test]
    fn conv1d_matches_hand_computation() {
        let g = Graph::new();
        // x: one batch, one channel, [1, 2, 3]; w: identity-ish kernel [1].
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]));
        let w = g.constant(Tensor::from_vec(vec![1.0, 0.0], &[1, 1, 2]));
        let b = g.constant(Tensor::zeros(&[1]));
        let y = g.value(g.conv1d(x, w, b, 0));
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[1.0, 2.0]);
    }

    #[test]
    fn conv1d_same_padding_preserves_length() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = Graph::new();
        let x = g.constant(Tensor::randn(&[2, 3, 8], 1.0, &mut rng));
        let w = g.constant(Tensor::randn(&[4, 3, 3], 0.5, &mut rng));
        let b = g.constant(Tensor::zeros(&[4]));
        let y = g.conv1d(x, w, b, 1);
        assert_eq!(g.shape(y), vec![2, 4, 8]);
    }

    #[test]
    fn conv1d_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 2, 5], 0.5, &mut rng), true);
        let w = params.insert("w", Tensor::randn(&[3, 2, 3], 0.5, &mut rng), true);
        let b = params.insert("b", Tensor::randn(&[3], 0.5, &mut rng), true);
        grad_check(
            &mut params,
            &[x, w, b],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let wv = g.param(p, p.id("w").unwrap());
                let bv = g.param(p, p.id("b").unwrap());
                let y = g.conv1d(xv, wv, bv, 1);
                let t = g.tanh(y);
                g.sum_all(t)
            },
            3e-2,
        );
    }

    #[test]
    fn conv1d_gradcheck_even_kernel_wide_pad() {
        // Exercises the im2col backward on an even kernel with pad > 1, where
        // more column entries land in the zero-padding region.
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 3, 6], 0.5, &mut rng), true);
        let w = params.insert("w", Tensor::randn(&[2, 3, 4], 0.5, &mut rng), true);
        let b = params.insert("b", Tensor::randn(&[2], 0.5, &mut rng), true);
        grad_check(
            &mut params,
            &[x, w, b],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let wv = g.param(p, p.id("w").unwrap());
                let bv = g.param(p, p.id("b").unwrap());
                let y = g.conv1d(xv, wv, bv, 2);
                let t = g.tanh(y);
                g.sum_all(t)
            },
            3e-2,
        );
    }

    #[test]
    fn avg_pool_reduces_and_averages() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 4]));
        let y = g.value(g.avg_pool1d(x, 2));
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[2.0, 6.0]);
    }

    #[test]
    fn avg_pool_gradcheck() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let x = params.insert("x", Tensor::randn(&[2, 2, 6], 0.5, &mut rng), true);
        grad_check(
            &mut params,
            &[x],
            &|g, p| {
                let xv = g.param(p, p.id("x").unwrap());
                let y = g.avg_pool1d(xv, 2);
                let sq = g.mul(y, y);
                g.sum_all(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn pool_drops_remainder() {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[1, 1, 5]));
        let y = g.avg_pool1d(x, 2);
        assert_eq!(g.shape(y), vec![1, 1, 2]);
    }
}
