//! Tape-free inference sessions: reusable forward plans for serving.
//!
//! Training builds a fresh [`Graph`] per forward pass and pays full autograd
//! tax — boxed backward closures, parent edges, and a heap allocation per
//! node value — even when no gradient is ever taken. The FDIL protocol
//! evaluates the global model on *every seen domain after every task*, so
//! that tax compounds O(tasks²) over a run.
//!
//! An [`InferenceSession`] owns a forward-only [`Graph`] (see
//! [`Graph::inference`]) and replays model builders through it. After each
//! [`InferenceSession::forward`] the tape is reset and every node's value
//! buffer is recycled into the graph's forward pool, so replaying batches of
//! the same shape reaches zero steady-state allocations while producing
//! values bit-identical to the taped forward (same kernels, same arithmetic,
//! same traversal order — only the buffers' provenance differs).
//!
//! # Examples
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use refil_nn::{layers::Linear, InferenceSession, Params, Tensor};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let model = Linear::new(&mut params, "clf", 2, 2, true, &mut rng);
//! let mut session = InferenceSession::new();
//! for _ in 0..3 {
//!     let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
//!     let preds = session.forward(|g| {
//!         let xv = g.input(&x);
//!         g.argmax_last(model.forward(g, &params, xv))
//!     });
//!     assert_eq!(preds.len(), 2);
//! }
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use crate::graph::Graph;

/// Process-wide override forcing new sessions onto the taped path.
static FORCE_TAPED: AtomicBool = AtomicBool::new(false);

/// Forces every subsequently created [`InferenceSession`] onto the taped
/// (pre-inference-engine) forward path. Intended for A/B benchmarks and
/// bit-exactness tests only; serialize tests that flip this.
pub fn force_taped(on: bool) {
    FORCE_TAPED.store(on, Ordering::SeqCst);
}

/// Whether newly created sessions default to the taped path, either via
/// [`force_taped`] or the `REFIL_TAPED_INFER=1` environment escape hatch.
pub fn taped_forced() -> bool {
    FORCE_TAPED.load(Ordering::SeqCst)
        || std::env::var("REFIL_TAPED_INFER")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// A reusable forward plan for tape-free prediction.
///
/// Create one per serving thread and funnel every forward pass through
/// [`InferenceSession::forward`]; the closure receives the session's graph
/// and returns whatever owned result it extracts (predictions, logits). The
/// graph is reset after the closure returns, so `Var` handles must not
/// escape it.
#[derive(Debug)]
pub struct InferenceSession {
    graph: Graph,
    taped: bool,
}

impl InferenceSession {
    /// The default session: tape-free, unless [`force_taped`] /
    /// `REFIL_TAPED_INFER=1` is in effect at creation time.
    pub fn new() -> Self {
        if taped_forced() {
            Self::taped()
        } else {
            Self::tape_free()
        }
    }

    /// A tape-free session backed by a pooled forward-only graph.
    pub fn tape_free() -> Self {
        Self {
            graph: Graph::inference(),
            taped: false,
        }
    }

    /// A session that faithfully emulates the pre-inference-engine path: a
    /// fresh training-mode tape (boxed backward closures and all) for every
    /// forward pass. The A/B baseline for benchmarks and equivalence tests.
    pub fn taped() -> Self {
        Self {
            graph: Graph::new(),
            taped: true,
        }
    }

    /// Whether this session runs the taped baseline path.
    pub fn is_taped(&self) -> bool {
        self.taped
    }

    /// Runs one forward pass. `build` must extract an owned result (e.g.
    /// predictions via [`Graph::argmax_last`] or a value clone) before
    /// returning — the tape is cleared as soon as the closure finishes.
    pub fn forward<R>(&mut self, build: impl FnOnce(&Graph) -> R) -> R {
        if self.taped {
            // Fresh tape per call: full per-node allocation and closure
            // boxing, exactly what the training-path predict used to do.
            let g = Graph::new();
            build(&g)
        } else {
            let out = build(&self.graph);
            self.graph.reset();
            out
        }
    }
}

impl Default for InferenceSession {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::tensor::Tensor;

    #[test]
    fn session_replay_matches_fresh_graph() {
        let mut params = Params::new();
        let w = params.insert(
            "w",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            true,
        );
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.25], &[2, 2]);

        let reference = {
            let g = Graph::new();
            let wv = g.param(&params, w);
            let xv = g.constant(x.clone());
            let y = g.softmax_last(g.matmul(xv, wv));
            g.value(y)
        };

        let mut session = InferenceSession::tape_free();
        for _ in 0..4 {
            let got = session.forward(|g| {
                let wv = g.param(&params, w);
                let xv = g.input(&x);
                let y = g.softmax_last(g.matmul(xv, wv));
                g.value(y)
            });
            assert_eq!(got.data(), reference.data());
            assert_eq!(got.shape(), reference.shape());
        }
    }

    #[test]
    fn session_handles_changing_batch_shapes() {
        let mut params = Params::new();
        let w = params.insert(
            "w",
            Tensor::from_vec(vec![1.0, -1.0, 0.5, 2.0], &[2, 2]),
            true,
        );
        let mut session = InferenceSession::tape_free();
        for rows in [1usize, 3, 2, 5, 1] {
            let x = Tensor::from_vec((0..rows * 2).map(|i| i as f32 * 0.1).collect(), &[rows, 2]);
            let reference = {
                let g = Graph::new();
                let wv = g.param(&params, w);
                let xv = g.constant(x.clone());
                g.value(g.matmul(xv, wv))
            };
            let got = session.forward(|g| {
                let wv = g.param(&params, w);
                let xv = g.input(&x);
                g.value(g.matmul(xv, wv))
            });
            assert_eq!(got.data(), reference.data());
        }
    }

    #[test]
    #[should_panic(expected = "forward-only")]
    fn backward_panics_on_inference_graph() {
        let mut params = Params::new();
        let w = params.insert("w", Tensor::from_vec(vec![2.0], &[1]), true);
        let g = Graph::inference();
        let wv = g.param(&params, w);
        let y = g.mul(wv, wv);
        g.backward(y, &mut params);
    }
}
