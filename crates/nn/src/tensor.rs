//! Dense n-dimensional `f32` tensor used throughout the substrate.
//!
//! The tensor is a flat `Vec<f32>` plus a shape, stored in row-major
//! (C-contiguous) order. It deliberately supports only the operations the
//! RefFiL models need; everything is implemented on the CPU with plain loops
//! so that results are bit-for-bit deterministic given a seed.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Maximum tensor rank. The models top out at 4-D (`[b, heads, t, t]`
/// attention scores), so shapes live inline in the tensor header instead of
/// costing a heap allocation per tensor — on the inference hot path that
/// allocation was the last one left per node.
const MAX_NDIM: usize = 4;

/// An inline, fixed-capacity shape: the dims of a tensor without the heap.
///
/// Dereferences to `&[usize]`, so indexing, iteration, and slice methods all
/// work as they did when the shape was a `Vec<usize>`. Unused trailing dims
/// are kept zeroed so derived equality over the full array is equivalent to
/// slice equality.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Shape {
    dims: [usize; MAX_NDIM],
    len: u8,
}

impl Shape {
    fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_NDIM,
            "tensor rank {} exceeds the supported maximum {MAX_NDIM}",
            dims.len()
        );
        let mut inline = [0usize; MAX_NDIM];
        inline[..dims.len()].copy_from_slice(dims);
        Self {
            dims: inline,
            len: dims.len() as u8,
        }
    }

    fn push(&mut self, dim: usize) {
        assert!((self.len as usize) < MAX_NDIM, "tensor rank overflow");
        self.dims[self.len as usize] = dim;
        self.len += 1;
    }
}

impl std::ops::Deref for Shape {
    type Target = [usize];
    fn deref(&self) -> &[usize] {
        &self.dims[..self.len as usize]
    }
}

impl std::ops::DerefMut for Shape {
    fn deref_mut(&mut self) -> &mut [usize] {
        &mut self.dims[..self.len as usize]
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A dense, row-major, `f32` tensor.
///
/// # Examples
///
/// ```
/// use refil_nn::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

// Hand-written serde impls preserving the data-model shape of the old
// derived ones (when `shape` was a `Vec<usize>`): a 2-field map whose
// `shape` entry is a sequence.
impl Serialize for Tensor {
    fn ser(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("shape".to_string(), self.shape.to_vec().ser()),
            ("data".to_string(), self.data.ser()),
        ])
    }
}

impl Deserialize for Tensor {
    fn de(v: &serde::Value) -> Result<Self, serde::Error> {
        let shape: Vec<usize> = Deserialize::de(
            v.get("shape")
                .ok_or_else(|| serde::Error::missing_field("Tensor", "shape"))?,
        )?;
        let data: Vec<f32> = Deserialize::de(
            v.get("data")
                .ok_or_else(|| serde::Error::missing_field("Tensor", "data"))?,
        )?;
        let numel: usize = shape.iter().product();
        if data.len() != numel {
            return Err(serde::Error::custom(format!(
                "tensor data length {} does not match shape {:?}",
                data.len(),
                shape
            )));
        }
        Ok(Tensor::from_vec(data, &shape))
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, ", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(f, "data=[{:?}, ...; {}])", &self.data[..8], self.data.len())
        }
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?} (numel {})",
            data.len(),
            shape,
            numel
        );
        Self {
            shape: Shape::new(shape),
            data,
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Self {
            shape: Shape::new(shape),
            data: vec![0.0; numel],
        }
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Self {
            shape: Shape::new(shape),
            data: vec![value; numel],
        }
    }

    /// Creates a scalar (shape `[1]`) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: Shape::new(&[1]),
            data: vec![value],
        }
    }

    /// Samples a tensor with entries drawn i.i.d. from `N(0, std^2)`.
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| gaussian(rng) * std).collect();
        Self {
            shape: Shape::new(shape),
            data,
        }
    }

    /// Samples a tensor with entries drawn i.i.d. from `U(lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|_| rng.gen_range(lo..hi)).collect();
        Self {
            shape: Shape::new(shape),
            data,
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Mutable element access by multi-dimensional index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.flat_index(idx);
        &mut self.data[i]
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0usize;
        for (d, (&i, &s)) in idx.iter().zip(self.shape.iter()).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} (size {s})");
            flat = flat * s + i;
        }
        flat
    }

    /// Returns a reshaped copy sharing the same data order.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "reshape numel mismatch: {:?} -> {:?}",
            self.shape,
            shape
        );
        Self {
            shape: Shape::new(shape),
            data: self.data.clone(),
        }
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise binary combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Self {
            shape: self.shape,
            data,
        }
    }

    /// In-place `self += alpha * other` (same shapes).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scaling: `self *= alpha`.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        for a in &mut self.data {
            *a = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element along the last axis, per leading index.
    ///
    /// For a `[rows, cols]` tensor this returns `rows` indices.
    pub fn argmax_last(&self) -> Vec<usize> {
        let cols = *self.shape.last().expect("argmax on 0-d tensor");
        assert!(cols > 0, "argmax over empty last axis");
        self.data
            .chunks(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN in argmax"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// 2-D matrix multiplication: `self [m,k] x other [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions mismatch.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.ndim(),
            2,
            "matmul lhs must be 2-D, got {:?}",
            self.shape
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul rhs must be 2-D, got {:?}",
            other.shape
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul inner dim mismatch: {:?} x {:?}",
            self.shape, other.shape
        );
        let mut out = vec![0.0f32; m * n];
        crate::gemm::dispatch(&self.data, &other.data, &mut out, m, k, n);
        Self {
            shape: Shape::new(&[m, n]),
            data: out,
        }
    }

    /// Batched matrix multiplication on 3-D tensors:
    /// `self [b,m,k] x other [b,k,n] -> [b,m,n]`.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn bmm(&self, other: &Self) -> Self {
        assert_eq!(self.ndim(), 3, "bmm lhs must be 3-D, got {:?}", self.shape);
        assert_eq!(
            other.ndim(),
            3,
            "bmm rhs must be 3-D, got {:?}",
            other.shape
        );
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm batch mismatch");
        assert_eq!(k, k2, "bmm inner dim mismatch");
        let mut out = vec![0.0f32; b * m * n];
        for i in 0..b {
            crate::gemm::dispatch(
                &self.data[i * m * k..(i + 1) * m * k],
                &other.data[i * k * n..(i + 1) * k * n],
                &mut out[i * m * n..(i + 1) * m * n],
                m,
                k,
                n,
            );
        }
        Self {
            shape: Shape::new(&[b, m, n]),
            data: out,
        }
    }

    /// Transposes the last two axes (works for 2-D and 3-D tensors).
    ///
    /// # Panics
    ///
    /// Panics for tensors with fewer than 2 dimensions.
    pub fn transpose_last(&self) -> Self {
        assert!(self.ndim() >= 2, "transpose requires >= 2 dims");
        let nd = self.ndim();
        let (r, c) = (self.shape[nd - 2], self.shape[nd - 1]);
        let batch: usize = self.shape[..nd - 2].iter().product();
        let mut data = vec![0.0f32; self.data.len()];
        for bi in 0..batch {
            let src = &self.data[bi * r * c..(bi + 1) * r * c];
            let dst = &mut data[bi * r * c..(bi + 1) * r * c];
            for i in 0..r {
                for j in 0..c {
                    dst[j * r + i] = src[i * c + j];
                }
            }
        }
        let mut shape = self.shape;
        shape.swap(nd - 2, nd - 1);
        Self { shape, data }
    }

    /// Extracts row `i` of a 2-D tensor as a `[cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if not 2-D or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Self {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape[1];
        assert!(i < self.shape[0], "row index out of bounds");
        Self {
            shape: Shape::new(&[cols]),
            data: self.data[i * cols..(i + 1) * cols].to_vec(),
        }
    }

    /// Stacks equal-shape tensors along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Self {
        assert!(!items.is_empty(), "stack of zero tensors");
        let inner = items[0].shape;
        let mut data = Vec::with_capacity(items.len() * items[0].numel());
        for t in items {
            assert_eq!(t.shape, inner, "stack shape mismatch");
            data.extend_from_slice(&t.data);
        }
        let mut shape = Shape::new(&[items.len()]);
        for &d in inner.iter() {
            shape.push(d);
        }
        Self { shape, data }
    }

    /// Cosine similarity between two flattened tensors.
    ///
    /// Returns 0 when either vector has zero norm.
    pub fn cosine(&self, other: &Self) -> f32 {
        assert_eq!(self.numel(), other.numel(), "cosine length mismatch");
        let dot: f32 = self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum();
        let na = self.norm();
        let nb = other.norm();
        if na <= f32::EPSILON || nb <= f32::EPSILON {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

/// Draws one standard-normal sample via Box–Muller.
pub fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_and_indexing() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 1]), 5.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        let c = a.matmul(&eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn bmm_per_batch() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]);
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn transpose_last_2d_and_3d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.transpose_last();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);

        let t3 = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 2, 3]);
        let t3t = t3.transpose_last();
        assert_eq!(t3t.shape(), &[2, 3, 2]);
        assert_eq!(t3t.at(&[1, 2, 0]), t3.at(&[1, 0, 2]));
    }

    #[test]
    fn double_transpose_roundtrips() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::randn(&[4, 5], 1.0, &mut rng);
        assert_eq!(t.transpose_last().transpose_last(), t);
    }

    #[test]
    fn argmax_last_per_row() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(t.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn cosine_similarity_extremes() {
        let a = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let b = Tensor::from_vec(vec![2.0, 0.0], &[2]);
        let c = Tensor::from_vec(vec![0.0, 3.0], &[2]);
        let d = Tensor::from_vec(vec![-1.0, 0.0], &[2]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
        assert!(a.cosine(&c).abs() < 1e-6);
        assert!((a.cosine(&d) + 1.0).abs() < 1e-6);
        assert_eq!(a.cosine(&Tensor::zeros(&[2])), 0.0);
    }

    #[test]
    fn stack_builds_leading_axis() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn randn_statistics_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / 10_000.0;
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale_inplace(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn reshape_preserves_order() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.at(&[0, 1]), 1.0);
        assert_eq!(r.at(&[2, 1]), 5.0);
    }
}
