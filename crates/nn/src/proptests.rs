//! Property-based tests of the autograd engine: algebraic identities that
//! must hold for arbitrary inputs (linearity of gradients, softmax
//! invariances, transpose involution, reduction consistency), plus bit-exact
//! equivalence of the tiled GEMM kernels and the im2col conv lowering
//! against naive reference loops.

#![cfg(test)]

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gemm::{gemm, gemm_nt, gemm_ref, gemm_tn};
use crate::graph::Graph;
use crate::params::Params;
use crate::tensor::Tensor;

fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, len..=len)
}

fn seeded(seed: u64, len: usize) -> Vec<f32> {
    let mut r = StdRng::seed_from_u64(seed);
    (0..len).map(|_| r.gen_range(-1.0f32..1.0)).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The pre-kernel-layer conv1d forward, kept as the oracle: 5-deep nested
/// loop, bias-seeded accumulator, padded taps skipped.
#[allow(clippy::too_many_arguments)]
fn naive_conv1d(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    b: usize,
    c_in: usize,
    l: usize,
    c_out: usize,
    k: usize,
    pad: usize,
) -> Vec<f32> {
    let l_out = l + 2 * pad - k + 1;
    let mut out = vec![0.0f32; b * c_out * l_out];
    for bi in 0..b {
        for co in 0..c_out {
            for lo in 0..l_out {
                let mut acc = bias[co];
                for ci in 0..c_in {
                    for kk in 0..k {
                        let xi = lo + kk;
                        if xi < pad || xi - pad >= l {
                            continue;
                        }
                        acc += x[(bi * c_in + ci) * l + (xi - pad)] * w[(co * c_in + ci) * k + kk];
                    }
                }
                out[(bi * c_out + co) * l_out + lo] = acc;
            }
        }
    }
    out
}

/// The pre-kernel-layer conv1d backward, as nested loops over an arbitrary
/// upstream gradient `gv`.
#[allow(clippy::too_many_arguments)]
fn naive_conv1d_backward(
    gv: &[f32],
    x: &[f32],
    w: &[f32],
    b: usize,
    c_in: usize,
    l: usize,
    c_out: usize,
    k: usize,
    pad: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let l_out = l + 2 * pad - k + 1;
    let mut dx = vec![0.0f32; b * c_in * l];
    let mut dw = vec![0.0f32; c_out * c_in * k];
    let mut db = vec![0.0f32; c_out];
    for bi in 0..b {
        for (co, db_co) in db.iter_mut().enumerate() {
            for lo in 0..l_out {
                let gi = gv[(bi * c_out + co) * l_out + lo];
                *db_co += gi;
                for ci in 0..c_in {
                    for kk in 0..k {
                        let xi = lo + kk;
                        if xi < pad || xi - pad >= l {
                            continue;
                        }
                        let x_idx = (bi * c_in + ci) * l + (xi - pad);
                        let w_idx = (co * c_in + ci) * k + kk;
                        dx[x_idx] += gi * w[w_idx];
                        dw[w_idx] += gi * x[x_idx];
                    }
                }
            }
        }
    }
    (dx, dw, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_gradient_is_one(data in arb_vec(6)) {
        let mut params = Params::new();
        let x = params.insert("x", Tensor::from_vec(data, &[6]), true);
        let g = Graph::new();
        let xv = g.param(&params, x);
        let y = g.add(xv, xv);
        let s = g.sum_all(y);
        g.backward(s, &mut params);
        for &gr in params.grad(x).data() {
            prop_assert!((gr - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn scale_gradient_is_linear(data in arb_vec(4), c in -2.0f32..2.0) {
        let mut params = Params::new();
        let x = params.insert("x", Tensor::from_vec(data, &[4]), true);
        let g = Graph::new();
        let xv = g.param(&params, x);
        let y = g.scale(xv, c);
        let s = g.sum_all(y);
        g.backward(s, &mut params);
        for &gr in params.grad(x).data() {
            prop_assert!((gr - c).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant(data in arb_vec(5), shift in -5.0f32..5.0) {
        let g = Graph::new();
        let a = g.constant(Tensor::from_vec(data.clone(), &[1, 5]));
        let b = g.constant(Tensor::from_vec(
            data.iter().map(|x| x + shift).collect(),
            &[1, 5],
        ));
        let sa = g.value(g.softmax_last(a));
        let sb = g.value(g.softmax_last(b));
        for (x, y) in sa.data().iter().zip(sb.data()) {
            prop_assert!((x - y).abs() < 1e-4, "softmax not shift invariant");
        }
    }

    #[test]
    fn softmax_outputs_are_a_distribution(data in arb_vec(8)) {
        let g = Graph::new();
        let a = g.constant(Tensor::from_vec(data, &[2, 4]));
        let s = g.value(g.softmax_last(a));
        for row in s.data().chunks(4) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for &p in row {
                prop_assert!((0.0..=1.0001).contains(&p));
            }
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax(data in arb_vec(6)) {
        let g = Graph::new();
        let a = g.constant(Tensor::from_vec(data.clone(), &[2, 3]));
        let b = g.constant(Tensor::from_vec(data, &[2, 3]));
        let ls = g.value(g.log_softmax_last(a));
        let sm = g.value(g.softmax_last(b));
        for (l, s) in ls.data().iter().zip(sm.data()) {
            prop_assert!((l - s.ln()).abs() < 1e-3, "{l} vs ln {s}");
        }
    }

    #[test]
    fn transpose_is_involutive(data in arb_vec(12)) {
        let t = Tensor::from_vec(data, &[3, 4]);
        prop_assert_eq!(t.transpose_last().transpose_last(), t);
    }

    #[test]
    fn matmul_distributes_over_addition(a in arb_vec(4), b in arb_vec(4), c in arb_vec(4)) {
        // (A + B) C == AC + BC
        let ta = Tensor::from_vec(a, &[2, 2]);
        let tb = Tensor::from_vec(b, &[2, 2]);
        let tc = Tensor::from_vec(c, &[2, 2]);
        let lhs = ta.zip(&tb, |x, y| x + y).matmul(&tc);
        let rhs_a = ta.matmul(&tc);
        let rhs_b = tb.matmul(&tc);
        for ((l, x), y) in lhs.data().iter().zip(rhs_a.data()).zip(rhs_b.data()) {
            prop_assert!((l - (x + y)).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_nonnegative_and_grads_sum_to_zero(
        data in arb_vec(9),
        t0 in 0usize..3,
        t1 in 0usize..3,
        t2 in 0usize..3,
    ) {
        let mut params = Params::new();
        let x = params.insert("x", Tensor::from_vec(data, &[3, 3]), true);
        let g = Graph::new();
        let xv = g.param(&params, x);
        let loss = g.cross_entropy(xv, &[t0, t1, t2]);
        prop_assert!(g.value(loss).data()[0] >= 0.0);
        g.backward(loss, &mut params);
        // Per-row logit gradients sum to zero (softmax minus one-hot).
        for row in params.grad(x).data().chunks(3) {
            let sum: f32 = row.iter().sum();
            prop_assert!(sum.abs() < 1e-5, "row grad sum {sum}");
        }
    }

    #[test]
    fn layer_norm_output_is_standardized(data in arb_vec(16)) {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(data, &[2, 8]));
        let gain = g.constant(Tensor::ones(&[8]));
        let bias = g.constant(Tensor::zeros(&[8]));
        let y = g.value(g.layer_norm(x, gain, bias, 1e-5));
        for row in y.data().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        }
    }

    #[test]
    fn row_normalize_gives_unit_rows(data in arb_vec(8)) {
        // Skip rows that are identically ~zero (normalization is clamped).
        prop_assume!(data.iter().any(|x| x.abs() > 0.1));
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(data.clone(), &[1, 8]));
        let y = g.value(g.row_l2_normalize(x));
        let norm: f32 = y.data().iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
    }

    #[test]
    fn concat_then_slice_recovers_input(a in arb_vec(6), b in arb_vec(9)) {
        let g = Graph::new();
        let ta = Tensor::from_vec(a, &[3, 2]);
        let tb = Tensor::from_vec(b, &[3, 3]);
        let va = g.constant(ta.clone());
        let vb = g.constant(tb.clone());
        let c = g.concat(&[va, vb], 1);
        let back_a = g.value(g.slice(c, 1, 0, 2));
        let back_b = g.value(g.slice(c, 1, 2, 3));
        prop_assert_eq!(back_a, ta);
        prop_assert_eq!(back_b, tb);
    }
}

// Kernel-layer equivalence: the tiled GEMM variants and the im2col conv
// lowering must be *bit-exact* against the naive reference loops, at every
// shape — including k=1, n=1, and sizes that are not tile multiples. The
// ranges below straddle the MR / NR tile boundaries (8 and 16), so every
// full-tile and padded-edge code path is exercised.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiled_gemm_bit_exact_vs_reference(
        m in 1usize..=13,
        k in 1usize..=11,
        n in 1usize..=19,
        seed in 0u64..u64::MAX,
    ) {
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 1, k * n);
        // Seed the output with random values: the kernels accumulate on top
        // of existing contents, so that path must be exact too.
        let init = seeded(seed ^ 2, m * n);
        let mut got = init.clone();
        let mut want = init;
        gemm(&a, &b, &mut got, m, k, n);
        gemm_ref(&a, &b, &mut want, m, k, n);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn gemm_nt_bit_exact_vs_materialized_transpose(
        m in 1usize..=13,
        k in 1usize..=11,
        n in 1usize..=19,
        seed in 0u64..u64::MAX,
    ) {
        let a = seeded(seed, m * k);
        let bt = seeded(seed ^ 1, n * k); // [n, k], read as Bᵀ
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let init = seeded(seed ^ 2, m * n);
        let mut got = init.clone();
        let mut want = init;
        gemm_nt(&a, &bt, &mut got, m, k, n);
        gemm_ref(&a, &b, &mut want, m, k, n);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn gemm_tn_bit_exact_vs_materialized_transpose(
        m in 1usize..=13,
        k in 1usize..=11,
        n in 1usize..=19,
        seed in 0u64..u64::MAX,
    ) {
        let at = seeded(seed, k * m); // [k, m], read as Aᵀ
        let b = seeded(seed ^ 1, k * n);
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                a[i * k + p] = at[p * m + i];
            }
        }
        let init = seeded(seed ^ 2, m * n);
        let mut got = init.clone();
        let mut want = init;
        gemm_tn(&at, &b, &mut got, m, k, n);
        gemm_ref(&a, &b, &mut want, m, k, n);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn im2col_conv1d_bit_exact_vs_naive_loop(
        b in 1usize..=3,
        c_in in 1usize..=3,
        c_out in 1usize..=3,
        l in 1usize..=8,
        k in 1usize..=4,
        pad in 0usize..=2,
        seed in 0u64..u64::MAX,
    ) {
        prop_assume!(l + 2 * pad >= k);
        let x = seeded(seed, b * c_in * l);
        let w = seeded(seed ^ 1, c_out * c_in * k);
        let bias = seeded(seed ^ 2, c_out);
        let g = Graph::new();
        let xv = g.constant(Tensor::from_vec(x.clone(), &[b, c_in, l]));
        let wv = g.constant(Tensor::from_vec(w.clone(), &[c_out, c_in, k]));
        let bv = g.constant(Tensor::from_vec(bias.clone(), &[c_out]));
        let y = g.value(g.conv1d(xv, wv, bv, pad));
        let want = naive_conv1d(&x, &w, &bias, b, c_in, l, c_out, k, pad);
        prop_assert_eq!(bits(y.data()), bits(&want));
    }

    #[test]
    fn conv1d_backward_matches_naive_loops(
        b in 1usize..=2,
        c_in in 1usize..=3,
        c_out in 1usize..=3,
        l in 2usize..=6,
        k in 1usize..=3,
        pad in 0usize..=1,
        seed in 0u64..u64::MAX,
    ) {
        prop_assume!(l + 2 * pad >= k);
        let l_out = l + 2 * pad - k + 1;
        let x = seeded(seed, b * c_in * l);
        let w = seeded(seed ^ 1, c_out * c_in * k);
        let bias = seeded(seed ^ 2, c_out);
        // Arbitrary upstream gradient, injected by weighting the conv output
        // with a constant mask before summing.
        let mask = seeded(seed ^ 3, b * c_out * l_out);

        let mut params = Params::new();
        let xid = params.insert("x", Tensor::from_vec(x.clone(), &[b, c_in, l]), true);
        let wid = params.insert("w", Tensor::from_vec(w.clone(), &[c_out, c_in, k]), true);
        let bid = params.insert("b", Tensor::from_vec(bias, &[c_out]), true);
        let g = Graph::new();
        let xv = g.param(&params, xid);
        let wv = g.param(&params, wid);
        let bv = g.param(&params, bid);
        let y = g.conv1d(xv, wv, bv, pad);
        let mv = g.constant(Tensor::from_vec(mask.clone(), &[b, c_out, l_out]));
        let s = g.sum_all(g.mul(y, mv));
        g.backward(s, &mut params);

        let (dx, dw, db) = naive_conv1d_backward(&mask, &x, &w, b, c_in, l, c_out, k, pad);
        // dw and db keep the naive loop's exact accumulation order.
        prop_assert_eq!(bits(params.grad(wid).data()), bits(&dw));
        prop_assert_eq!(bits(params.grad(bid).data()), bits(&db));
        // dx is regrouped by the col2im scatter (sum order differs), so it is
        // compared within floating-point tolerance.
        for (got, want) in params.grad(xid).data().iter().zip(&dx) {
            prop_assert!((got - want).abs() <= 1e-4 * (1.0 + want.abs()), "{got} vs {want}");
        }
    }
}
