//! Property-based tests of the autograd engine: algebraic identities that
//! must hold for arbitrary inputs (linearity of gradients, softmax
//! invariances, transpose involution, reduction consistency).

#![cfg(test)]

use proptest::prelude::*;

use crate::graph::Graph;
use crate::params::Params;
use crate::tensor::Tensor;

fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn addition_gradient_is_one(data in arb_vec(6)) {
        let mut params = Params::new();
        let x = params.insert("x", Tensor::from_vec(data, &[6]), true);
        let g = Graph::new();
        let xv = g.param(&params, x);
        let y = g.add(xv, xv);
        let s = g.sum_all(y);
        g.backward(s, &mut params);
        for &gr in params.grad(x).data() {
            prop_assert!((gr - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn scale_gradient_is_linear(data in arb_vec(4), c in -2.0f32..2.0) {
        let mut params = Params::new();
        let x = params.insert("x", Tensor::from_vec(data, &[4]), true);
        let g = Graph::new();
        let xv = g.param(&params, x);
        let y = g.scale(xv, c);
        let s = g.sum_all(y);
        g.backward(s, &mut params);
        for &gr in params.grad(x).data() {
            prop_assert!((gr - c).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant(data in arb_vec(5), shift in -5.0f32..5.0) {
        let g = Graph::new();
        let a = g.constant(Tensor::from_vec(data.clone(), &[1, 5]));
        let b = g.constant(Tensor::from_vec(
            data.iter().map(|x| x + shift).collect(),
            &[1, 5],
        ));
        let sa = g.value(g.softmax_last(a));
        let sb = g.value(g.softmax_last(b));
        for (x, y) in sa.data().iter().zip(sb.data()) {
            prop_assert!((x - y).abs() < 1e-4, "softmax not shift invariant");
        }
    }

    #[test]
    fn softmax_outputs_are_a_distribution(data in arb_vec(8)) {
        let g = Graph::new();
        let a = g.constant(Tensor::from_vec(data, &[2, 4]));
        let s = g.value(g.softmax_last(a));
        for row in s.data().chunks(4) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for &p in row {
                prop_assert!((0.0..=1.0001).contains(&p));
            }
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax(data in arb_vec(6)) {
        let g = Graph::new();
        let a = g.constant(Tensor::from_vec(data.clone(), &[2, 3]));
        let b = g.constant(Tensor::from_vec(data, &[2, 3]));
        let ls = g.value(g.log_softmax_last(a));
        let sm = g.value(g.softmax_last(b));
        for (l, s) in ls.data().iter().zip(sm.data()) {
            prop_assert!((l - s.ln()).abs() < 1e-3, "{l} vs ln {s}");
        }
    }

    #[test]
    fn transpose_is_involutive(data in arb_vec(12)) {
        let t = Tensor::from_vec(data, &[3, 4]);
        prop_assert_eq!(t.transpose_last().transpose_last(), t);
    }

    #[test]
    fn matmul_distributes_over_addition(a in arb_vec(4), b in arb_vec(4), c in arb_vec(4)) {
        // (A + B) C == AC + BC
        let ta = Tensor::from_vec(a, &[2, 2]);
        let tb = Tensor::from_vec(b, &[2, 2]);
        let tc = Tensor::from_vec(c, &[2, 2]);
        let lhs = ta.zip(&tb, |x, y| x + y).matmul(&tc);
        let rhs_a = ta.matmul(&tc);
        let rhs_b = tb.matmul(&tc);
        for ((l, x), y) in lhs.data().iter().zip(rhs_a.data()).zip(rhs_b.data()) {
            prop_assert!((l - (x + y)).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_nonnegative_and_grads_sum_to_zero(
        data in arb_vec(9),
        t0 in 0usize..3,
        t1 in 0usize..3,
        t2 in 0usize..3,
    ) {
        let mut params = Params::new();
        let x = params.insert("x", Tensor::from_vec(data, &[3, 3]), true);
        let g = Graph::new();
        let xv = g.param(&params, x);
        let loss = g.cross_entropy(xv, &[t0, t1, t2]);
        prop_assert!(g.value(loss).data()[0] >= 0.0);
        g.backward(loss, &mut params);
        // Per-row logit gradients sum to zero (softmax minus one-hot).
        for row in params.grad(x).data().chunks(3) {
            let sum: f32 = row.iter().sum();
            prop_assert!(sum.abs() < 1e-5, "row grad sum {sum}");
        }
    }

    #[test]
    fn layer_norm_output_is_standardized(data in arb_vec(16)) {
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(data, &[2, 8]));
        let gain = g.constant(Tensor::ones(&[8]));
        let bias = g.constant(Tensor::zeros(&[8]));
        let y = g.value(g.layer_norm(x, gain, bias, 1e-5));
        for row in y.data().chunks(8) {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        }
    }

    #[test]
    fn row_normalize_gives_unit_rows(data in arb_vec(8)) {
        // Skip rows that are identically ~zero (normalization is clamped).
        prop_assume!(data.iter().any(|x| x.abs() > 0.1));
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(data.clone(), &[1, 8]));
        let y = g.value(g.row_l2_normalize(x));
        let norm: f32 = y.data().iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
    }

    #[test]
    fn concat_then_slice_recovers_input(a in arb_vec(6), b in arb_vec(9)) {
        let g = Graph::new();
        let ta = Tensor::from_vec(a, &[3, 2]);
        let tb = Tensor::from_vec(b, &[3, 3]);
        let va = g.constant(ta.clone());
        let vb = g.constant(tb.clone());
        let c = g.concat(&[va, vb], 1);
        let back_a = g.value(g.slice(c, 1, 0, 2));
        let back_b = g.value(g.slice(c, 1, 2, 3));
        prop_assert_eq!(back_a, ta);
        prop_assert_eq!(back_b, tb);
    }
}
