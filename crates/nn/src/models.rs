//! The shared prompt-aware backbone of Appendix A.
//!
//! Pipeline (paper Eq. 12–14): feature extractor `h` -> frozen patch
//! tokenizer + `[CLS]` -> optional prompt tokens prepended -> attention
//! block(s) -> classifier `G` on the output `[CLS]` token.
//!
//! Every method in the evaluation (Finetune, FedLwF, FedEWC, FedL2P,
//! FedDualPrompt, RefFiL) instantiates this same backbone; they differ only
//! in which prompts they inject and which losses they optimize.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::{Graph, Var};
use crate::infer::InferenceSession;
use crate::layers::{
    Classifier, ConvExtractor, PatchTokenizer, ResidualExtractor, TransformerBlock,
};
use crate::params::Params;
use crate::tensor::Tensor;

/// Which feature-extractor architecture `h(x)` the backbone uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractorKind {
    /// Residual MLP blocks (the default substrate stand-in for ResNet10).
    ResidualMlp,
    /// A 1-D CNN — the architectural analogue of the paper's CNN backbone
    /// for vector inputs.
    Conv,
}

/// Backbone hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BackboneConfig {
    /// Input feature dimensionality.
    pub in_dim: usize,
    /// Residual extractor hidden width.
    pub extractor_width: usize,
    /// Residual extractor depth (number of residual blocks).
    pub extractor_depth: usize,
    /// Number of patch tokens `n`.
    pub n_patches: usize,
    /// Token width `d`.
    pub token_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Number of attention blocks `B`.
    pub blocks: usize,
    /// Output classes `K`.
    pub classes: usize,
    /// Feature-extractor architecture.
    pub extractor: ExtractorKind,
}

impl Default for BackboneConfig {
    fn default() -> Self {
        Self {
            in_dim: 32,
            extractor_width: 64,
            extractor_depth: 2,
            n_patches: 4,
            token_dim: 32,
            heads: 4,
            blocks: 1,
            classes: 10,
            extractor: ExtractorKind::ResidualMlp,
        }
    }
}

/// Intermediate and final activations of one forward pass.
#[derive(Debug, Clone, Copy)]
pub struct BackboneOutput {
    /// Raw extractor features `h(x)`, `[batch, n*d]`.
    pub features: Var,
    /// Input tokens `I = [CLS; PT_1..PT_n]` before prompts, `[batch, n+1, d]`.
    pub tokens: Var,
    /// Final `[CLS]` representation, `[batch, d]`.
    pub cls: Var,
    /// Class logits, `[batch, classes]`.
    pub logits: Var,
}

/// Either extractor, behind one forward interface.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Extractor {
    Residual(ResidualExtractor),
    Conv(ConvExtractor),
}

impl Extractor {
    fn forward(&self, g: &Graph, params: &Params, x: Var) -> Var {
        match self {
            Self::Residual(e) => e.forward(g, params, x),
            Self::Conv(e) => e.forward(g, params, x),
        }
    }
}

/// The full backbone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PromptedBackbone {
    extractor: Extractor,
    tokenizer: PatchTokenizer,
    blocks: Vec<TransformerBlock>,
    classifier: Classifier,
    cfg: BackboneConfig,
}

impl PromptedBackbone {
    /// Registers the backbone's parameters under `name` in `params`.
    pub fn new<R: Rng>(params: &mut Params, name: &str, cfg: BackboneConfig, rng: &mut R) -> Self {
        let extractor = match cfg.extractor {
            ExtractorKind::ResidualMlp => Extractor::Residual(ResidualExtractor::new(
                params,
                &format!("{name}.extractor"),
                cfg.in_dim,
                cfg.extractor_width,
                cfg.extractor_depth,
                cfg.n_patches * cfg.token_dim,
                rng,
            )),
            ExtractorKind::Conv => Extractor::Conv(ConvExtractor::new(
                params,
                &format!("{name}.extractor"),
                cfg.in_dim,
                (cfg.extractor_width / 8).max(2),
                cfg.n_patches * cfg.token_dim,
                rng,
            )),
        };
        let tokenizer = PatchTokenizer::new(
            params,
            &format!("{name}.tokenizer"),
            cfg.n_patches,
            cfg.token_dim,
            rng,
        );
        let blocks = (0..cfg.blocks)
            .map(|i| {
                TransformerBlock::new(
                    params,
                    &format!("{name}.block{i}"),
                    cfg.token_dim,
                    cfg.heads,
                    rng,
                )
            })
            .collect();
        let classifier = Classifier::new(
            params,
            &format!("{name}.classifier"),
            cfg.token_dim,
            cfg.classes,
            rng,
        );
        Self {
            extractor,
            tokenizer,
            blocks,
            classifier,
            cfg,
        }
    }

    /// The backbone configuration.
    pub fn config(&self) -> &BackboneConfig {
        &self.cfg
    }

    /// Tokenizes a raw input batch: `x [b, in_dim] -> I [b, n+1, d]`.
    ///
    /// Exposed separately so RefFiL's CDAP generator can consume `I`.
    pub fn tokenize(&self, g: &Graph, params: &Params, x: &Tensor) -> (Var, Var) {
        let xv = g.input(x);
        let features = self.extractor.forward(g, params, xv);
        let tokens = self.tokenizer.forward(g, params, features);
        (features, tokens)
    }

    /// Full forward pass with optional prompt tokens.
    ///
    /// `prompts`, when given, must be `[b, p, d]`; the prompt tokens are
    /// inserted between `[CLS]` and the patch tokens (prefix-style), so the
    /// classifier input is `G([P, h(x)])` as in the paper's Eq. 9–10.
    pub fn forward(
        &self,
        g: &Graph,
        params: &Params,
        x: &Tensor,
        prompts: Option<Var>,
    ) -> BackboneOutput {
        let (features, tokens) = self.tokenize(g, params, x);
        self.forward_from_tokens(g, params, features, tokens, prompts)
    }

    /// Forward pass reusing pre-computed tokens (so the tokenization cost is
    /// shared between the local-prompt and global-prompt branches of RefFiL).
    pub fn forward_from_tokens(
        &self,
        g: &Graph,
        params: &Params,
        features: Var,
        tokens: Var,
        prompts: Option<Var>,
    ) -> BackboneOutput {
        let d = self.cfg.token_dim;
        let seq = match prompts {
            Some(p) => {
                let pshape = g.shape(p);
                assert_eq!(pshape.len(), 3, "prompts must be [b, p, d], got {pshape:?}");
                assert_eq!(pshape[2], d, "prompt width must equal token width");
                let cls = g.slice(tokens, 1, 0, 1);
                let rest = g.slice(tokens, 1, 1, self.cfg.n_patches);
                g.concat(&[cls, p, rest], 1)
            }
            None => tokens,
        };
        let mut h = seq;
        for blk in &self.blocks {
            h = blk.forward(g, params, h);
        }
        let cls3 = g.slice(h, 1, 0, 1); // [b, 1, d]
        let b = g.shape(cls3)[0];
        let cls = g.reshape(cls3, &[b, d]);
        let logits = self.classifier.forward(g, params, cls);
        BackboneOutput {
            features,
            tokens,
            cls,
            logits,
        }
    }

    /// Broadcasts a shared `[p, d]` prompt tensor across a batch of size `b`,
    /// yielding a `[b, p, d]` variable.
    pub fn broadcast_prompts(&self, g: &Graph, prompts: Var, b: usize) -> Var {
        let shape = g.shape(prompts);
        assert_eq!(shape.len(), 2, "shared prompts must be [p, d]");
        let one = g.reshape(prompts, &[1, shape[0], shape[1]]);
        if b == 1 {
            one
        } else {
            let copies: Vec<Var> = (0..b).map(|_| one).collect();
            g.concat(&copies, 0)
        }
    }

    /// Predicted labels for a batch (no prompts), used by simple baselines.
    ///
    /// Convenience wrapper that spins up a one-shot [`InferenceSession`];
    /// hot loops should hold a session and call
    /// [`PromptedBackbone::predict_in`] instead so forward buffers are
    /// recycled across batches.
    pub fn predict(&self, params: &Params, x: &Tensor) -> Vec<usize> {
        self.predict_in(&mut InferenceSession::new(), params, x)
    }

    /// Predicted labels for a batch (no prompts) through a reusable
    /// [`InferenceSession`].
    pub fn predict_in(
        &self,
        session: &mut InferenceSession,
        params: &Params,
        x: &Tensor,
    ) -> Vec<usize> {
        session.forward(|g| {
            let out = self.forward(g, params, x, None);
            g.argmax_last(out.logits)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg() -> BackboneConfig {
        BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: ExtractorKind::ResidualMlp,
        }
    }

    #[test]
    fn forward_shapes_without_prompts() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let model = PromptedBackbone::new(&mut params, "m", tiny_cfg(), &mut rng);
        let g = Graph::new();
        let x = Tensor::randn(&[4, 8], 1.0, &mut rng);
        let out = model.forward(&g, &params, &x, None);
        assert_eq!(g.shape(out.logits), vec![4, 3]);
        assert_eq!(g.shape(out.cls), vec![4, 8]);
        assert_eq!(g.shape(out.tokens), vec![4, 3, 8]);
    }

    #[test]
    fn forward_with_prompts_changes_logits() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let model = PromptedBackbone::new(&mut params, "m", tiny_cfg(), &mut rng);
        let g = Graph::new();
        let x = Tensor::randn(&[2, 8], 1.0, &mut rng);
        let no_p = model.forward(&g, &params, &x, None);
        let pv = g.constant(Tensor::randn(&[2, 2, 8], 1.0, &mut rng));
        let with_p = model.forward(&g, &params, &x, Some(pv));
        assert_ne!(g.value(no_p.logits).data(), g.value(with_p.logits).data());
    }

    #[test]
    fn broadcast_prompts_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let model = PromptedBackbone::new(&mut params, "m", tiny_cfg(), &mut rng);
        let g = Graph::new();
        let p = g.constant(Tensor::randn(&[3, 8], 1.0, &mut rng));
        let bp = model.broadcast_prompts(&g, p, 4);
        assert_eq!(g.shape(bp), vec![4, 3, 8]);
    }

    #[test]
    fn backbone_learns_a_toy_problem() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let model = PromptedBackbone::new(&mut params, "m", tiny_cfg(), &mut rng);
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        // Three well-separated Gaussian classes.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for k in 0..3 {
            for _ in 0..8 {
                for j in 0..8 {
                    let center = if j % 3 == k { 2.0 } else { -1.0 };
                    xs.push(center + crate::tensor::gaussian(&mut rng) * 0.3);
                }
                ys.push(k);
            }
        }
        let x = Tensor::from_vec(xs, &[24, 8]);
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            params.zero_grad();
            let g = Graph::new();
            let out = model.forward(&g, &params, &x, None);
            let loss = g.cross_entropy(out.logits, &ys);
            last = g.value(loss).data()[0];
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        assert!(last < 0.3, "backbone failed to fit, loss {last}");
        let preds = model.predict(&params, &x);
        let correct = preds.iter().zip(&ys).filter(|(a, b)| a == b).count();
        assert!(correct >= 20, "only {correct}/24 correct");
    }

    #[test]
    fn frozen_tokenizer_never_moves() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = Params::new();
        let model = PromptedBackbone::new(&mut params, "m", tiny_cfg(), &mut rng);
        let frozen_before = params
            .value(params.id("m.tokenizer.embed.weight").unwrap())
            .clone();
        let mut opt = Sgd::new(0.1);
        let x = Tensor::randn(&[4, 8], 1.0, &mut rng);
        for _ in 0..3 {
            params.zero_grad();
            let g = Graph::new();
            let out = model.forward(&g, &params, &x, None);
            let loss = g.cross_entropy(out.logits, &[0, 1, 2, 0]);
            g.backward(loss, &mut params);
            opt.step(&mut params);
        }
        let frozen_after = params
            .value(params.id("m.tokenizer.embed.weight").unwrap())
            .clone();
        assert_eq!(frozen_before, frozen_after);
    }
}
