//! Named parameter storage shared by models and optimizers.
//!
//! Parameters live outside the autograd [`Graph`](crate::Graph): a graph is a
//! per-forward-pass tape, while `Params` persists across steps and across
//! federated communication rounds. Each parameter carries a `trainable` flag
//! so frozen components (e.g. the paper's initialized-only tokenizer) are
//! excluded from optimization and from federated aggregation of gradients.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Handle to a parameter inside a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter in its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One named parameter: value, accumulated gradient, and trainability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamEntry {
    /// Unique name, e.g. `"backbone.block0.linear1.weight"`.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether the optimizer may update this parameter.
    pub trainable: bool,
}

/// A named collection of parameters.
///
/// # Examples
///
/// ```
/// use refil_nn::{Params, Tensor};
///
/// let mut params = Params::new();
/// let w = params.insert("w", Tensor::zeros(&[2, 2]), true);
/// assert_eq!(params.value(w).shape(), &[2, 2]);
/// assert_eq!(params.len(), 1);
/// ```
#[derive(Default, Clone, Serialize, Deserialize)]
pub struct Params {
    entries: Vec<ParamEntry>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl fmt::Debug for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Params({} entries, {} scalars)",
            self.entries.len(),
            self.num_scalars()
        )
    }
}

impl Params {
    /// Creates an empty parameter store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn insert(&mut self, name: &str, value: Tensor, trainable: bool) -> ParamId {
        assert!(
            !self.by_name.contains_key(name),
            "parameter name {name:?} registered twice"
        );
        let id = ParamId(self.entries.len());
        let grad = Tensor::zeros(value.shape());
        self.entries.push(ParamEntry {
            name: name.to_string(),
            value,
            grad,
            trainable,
        });
        self.by_name.insert(name.to_string(), id.0);
        id
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.numel()).sum()
    }

    /// Total scalar count across trainable parameters only.
    pub fn num_trainable_scalars(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.trainable)
            .map(|e| e.value.numel())
            .sum()
    }

    /// Looks up a parameter id by name.
    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied().map(ParamId)
    }

    /// The value tensor of `id`.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutable access to the value tensor of `id`.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// The gradient tensor of `id`.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutable access to the gradient tensor of `id`.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// The full entry for `id`.
    pub fn entry(&self, id: ParamId) -> &ParamEntry {
        &self.entries[id.0]
    }

    /// Iterates over `(ParamId, &ParamEntry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &ParamEntry)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (ParamId(i), e))
    }

    /// Zeroes every gradient.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.fill(0.0);
        }
    }

    /// Flattens all parameter values into one vector (aggregation format).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for e in &self.entries {
            out.extend_from_slice(e.value.data());
        }
        out
    }

    /// Loads parameter values from a flat vector produced by [`Params::to_flat`]
    /// on an identically-structured store.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the store's scalar count.
    pub fn load_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_scalars(),
            "flat parameter length mismatch"
        );
        let mut off = 0;
        for e in &mut self.entries {
            let n = e.value.numel();
            e.value.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
    }

    /// Copies values from another store with identical structure.
    ///
    /// # Panics
    ///
    /// Panics if the structures (names/shapes, in order) differ.
    pub fn copy_values_from(&mut self, other: &Params) {
        assert_eq!(
            self.entries.len(),
            other.entries.len(),
            "param count mismatch"
        );
        for (dst, src) in self.entries.iter_mut().zip(&other.entries) {
            assert_eq!(dst.name, src.name, "param name mismatch");
            assert_eq!(dst.value.shape(), src.value.shape(), "param shape mismatch");
            dst.value = src.value.clone();
        }
    }

    /// Rebuilds the name index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name.clone(), i))
            .collect();
    }

    /// Gradient L2 norm over trainable parameters (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .filter(|e| e.trainable)
            .map(|e| e.grad.data().iter().map(|g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every trainable gradient by `alpha` (gradient clipping support).
    pub fn scale_grads(&mut self, alpha: f32) {
        for e in &mut self.entries {
            if e.trainable {
                e.grad.scale_inplace(alpha);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut p = Params::new();
        let a = p.insert("a", Tensor::zeros(&[2]), true);
        let b = p.insert("b", Tensor::ones(&[3]), false);
        assert_eq!(p.id("a"), Some(a));
        assert_eq!(p.id("b"), Some(b));
        assert_eq!(p.id("c"), None);
        assert_eq!(p.num_scalars(), 5);
        assert_eq!(p.num_trainable_scalars(), 2);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut p = Params::new();
        p.insert("a", Tensor::zeros(&[1]), true);
        p.insert("a", Tensor::zeros(&[1]), true);
    }

    #[test]
    fn flat_roundtrip() {
        let mut p = Params::new();
        p.insert("a", Tensor::from_vec(vec![1.0, 2.0], &[2]), true);
        p.insert("b", Tensor::from_vec(vec![3.0], &[1]), true);
        let flat = p.to_flat();
        assert_eq!(flat, vec![1.0, 2.0, 3.0]);
        let mut q = p.clone();
        q.load_flat(&[9.0, 8.0, 7.0]);
        assert_eq!(q.value(q.id("a").unwrap()).data(), &[9.0, 8.0]);
        assert_eq!(q.value(q.id("b").unwrap()).data(), &[7.0]);
    }

    #[test]
    fn zero_grad_clears_everything() {
        let mut p = Params::new();
        let a = p.insert("a", Tensor::zeros(&[2]), true);
        p.grad_mut(a).fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad(a).data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_norm_ignores_frozen() {
        let mut p = Params::new();
        let a = p.insert("a", Tensor::zeros(&[1]), true);
        let b = p.insert("b", Tensor::zeros(&[1]), false);
        p.grad_mut(a).fill(3.0);
        p.grad_mut(b).fill(4.0);
        assert!((p.grad_norm() - 3.0).abs() < 1e-6);
    }
}
