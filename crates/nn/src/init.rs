//! Weight initializers.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let w = refil_nn::init::xavier_uniform(4, 8, &mut rng);
/// assert_eq!(w.shape(), &[4, 8]);
/// ```
pub fn xavier_uniform<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(&[fan_in, fan_out], -limit, limit, rng)
}

/// Kaiming/He normal initialization for a `[fan_in, fan_out]` weight,
/// suited to ReLU/GELU networks.
pub fn kaiming_normal<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(&[fan_in, fan_out], std, rng)
}

/// Truncated-ish normal init used for prompt and token parameters.
pub fn prompt_normal<R: Rng>(shape: &[usize], rng: &mut R) -> Tensor {
    Tensor::randn(shape, 0.02, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(10, 10, &mut rng);
        let limit = (6.0f32 / 20.0).sqrt();
        for &x in w.data() {
            assert!(x.abs() <= limit);
        }
    }

    #[test]
    fn kaiming_variance_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = kaiming_normal(200, 50, &mut rng);
        let var = w.data().iter().map(|x| x * x).sum::<f32>() / w.numel() as f32;
        assert!((var - 0.01).abs() < 0.005, "var {var}");
    }
}
