//! Fast-kernel contract tests: `KernelPolicy::Fast` GEMM and conv outputs
//! must stay within the accumulation bound documented in
//! `crates/nn/src/gemm_fast.rs`:
//!
//! ```text
//! |fast(i,j) − bitexact(i,j)| ≤ 2k · ε · (|seed(i,j)| + Σ_p |a[i,p] · b[p,j]|)
//! ```
//!
//! with `ε = f32::EPSILON`, and the fast path must itself be run-to-run
//! deterministic (bitwise). These live in their own integration-test binary
//! because the kernel policy is process-global: flipping it inside the
//! crate's unit-test process would race the oracle-pinning tests in
//! `gemm.rs`. Oracles here are naive ascending-`k` loops, which the
//! bit-exact kernels are pinned (bitwise) against in the unit suite — so
//! the comparisons below are immune to the policy flips.

use std::sync::Mutex;

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use refil_nn::gemm_fast::{gelu_fast, gemm_fast, gemm_nt_fast, gemm_tn_fast};
use refil_nn::{set_kernel_policy, Graph, KernelPolicy, Tensor};

fn seeded(seed: u64, len: usize) -> Vec<f32> {
    let mut r = StdRng::seed_from_u64(seed);
    (0..len).map(|_| r.gen_range(-1.0f32..1.0)).collect()
}

/// Bit-exact oracle: one accumulator chain per element, ascending `p`.
/// The tiled kernels in `gemm.rs` are pinned bitwise against this shape.
fn naive_gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = out[i * n + j];
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Per-element tolerance from the documented contract:
/// `2k · ε · (|seed| + Σ_p |a[i,p] · b[p,j]|)`.
fn gemm_tolerances(a: &[f32], b: &[f32], seed: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut tol = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut mag = seed[i * n + j].abs() as f64;
            for p in 0..k {
                mag += (a[i * k + p] * b[p * n + j]).abs() as f64;
            }
            tol[i * n + j] = (2.0 * k as f64 * f32::EPSILON as f64 * mag) as f32;
        }
    }
    tol
}

fn assert_within(fast: &[f32], exact: &[f32], tol: &[f32]) -> Result<(), TestCaseError> {
    for (idx, ((&f, &e), &t)) in fast.iter().zip(exact).zip(tol).enumerate() {
        prop_assert!(
            (f - e).abs() <= t,
            "element {idx}: fast {f} vs bit-exact {e} exceeds tolerance {t}"
        );
    }
    Ok(())
}

/// Transpose a row-major `r × c` matrix into `c × r`.
fn transpose(src: &[f32], r: usize, c: usize) -> Vec<f32> {
    let mut dst = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            dst[j * r + i] = src[i * c + j];
        }
    }
    dst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `gemm_fast` (4×16 FMA tile + remainders) honors the contract for
    /// shapes straddling every tile boundary.
    #[test]
    fn fast_gemm_matches_bitexact_within_contract(
        m in 1usize..=21,
        k in 1usize..=48,
        n in 1usize..=37,
        seed in 0u64..1024,
    ) {
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0x9e37_79b9, k * n);
        let init = seeded(seed ^ 0x5175_7c15, m * n);

        let mut exact = init.clone();
        naive_gemm(&a, &b, &mut exact, m, k, n);
        let mut fast = init.clone();
        gemm_fast(&a, &b, &mut fast, m, k, n);

        assert_within(&fast, &exact, &gemm_tolerances(&a, &b, &init, m, k, n))?;
    }

    /// `gemm_nt_fast` (lane-parallel dot + fixed-order horizontal sum)
    /// honors the contract.
    #[test]
    fn fast_gemm_nt_matches_bitexact_within_contract(
        m in 1usize..=13,
        k in 1usize..=48,
        n in 1usize..=13,
        seed in 0u64..1024,
    ) {
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0x9e37_79b9, k * n);
        let bt = transpose(&b, k, n);
        let init = seeded(seed ^ 0x5175_7c15, m * n);

        let mut exact = init.clone();
        naive_gemm(&a, &b, &mut exact, m, k, n);
        let mut fast = init.clone();
        gemm_nt_fast(&a, &bt, &mut fast, m, k, n);

        assert_within(&fast, &exact, &gemm_tolerances(&a, &b, &init, m, k, n))?;
    }

    /// `gemm_tn_fast` (broadcast-from-Aᵀ FMA tile) honors the contract.
    #[test]
    fn fast_gemm_tn_matches_bitexact_within_contract(
        m in 1usize..=21,
        k in 1usize..=32,
        n in 1usize..=37,
        seed in 0u64..1024,
    ) {
        let a = seeded(seed, m * k);
        let at = transpose(&a, m, k);
        let b = seeded(seed ^ 0x9e37_79b9, k * n);
        let init = seeded(seed ^ 0x5175_7c15, m * n);

        let mut exact = init.clone();
        naive_gemm(&a, &b, &mut exact, m, k, n);
        let mut fast = init.clone();
        gemm_tn_fast(&at, &b, &mut fast, m, k, n);

        assert_within(&fast, &exact, &gemm_tolerances(&a, &b, &init, m, k, n))?;
    }

    /// A fixed shape always takes the same instruction sequence: the fast
    /// kernels are bitwise run-to-run stable.
    #[test]
    fn fast_kernels_are_run_to_run_bitwise_stable(
        m in 1usize..=17,
        k in 1usize..=40,
        n in 1usize..=19,
        seed in 0u64..1024,
    ) {
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0x9e37_79b9, k * n);
        let bt = transpose(&b, k, n);
        let at = transpose(&a, m, k);
        let init = seeded(seed ^ 0x5175_7c15, m * n);

        for run in 0..2usize {
            let mut first = init.clone();
            gemm_fast(&a, &b, &mut first, m, k, n);
            let mut again = init.clone();
            gemm_fast(&a, &b, &mut again, m, k, n);
            prop_assert_eq!(bits(&first), bits(&again), "gemm_fast unstable on run {}", run);

            let mut nt_a = init.clone();
            gemm_nt_fast(&a, &bt, &mut nt_a, m, k, n);
            let mut nt_b = init.clone();
            gemm_nt_fast(&a, &bt, &mut nt_b, m, k, n);
            prop_assert_eq!(bits(&nt_a), bits(&nt_b), "gemm_nt_fast unstable on run {}", run);

            let mut tn_a = init.clone();
            gemm_tn_fast(&at, &b, &mut tn_a, m, k, n);
            let mut tn_b = init.clone();
            gemm_tn_fast(&at, &b, &mut tn_b, m, k, n);
            prop_assert_eq!(bits(&tn_a), bits(&tn_b), "gemm_tn_fast unstable on run {}", run);
        }
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Serializes the policy-flipping tests below: the kernel policy is
/// process-global, so two of them interleaving would corrupt each other's
/// oracle runs.
static POLICY_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the global policy set to `Fast`, restoring `BitExact`
/// even on panic (so one failing case cannot poison the rest).
fn with_fast_policy<R>(f: impl FnOnce() -> R) -> R {
    let _lock = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel_policy(KernelPolicy::BitExact);
        }
    }
    let _restore = Restore;
    set_kernel_policy(KernelPolicy::Fast);
    f()
}

#[allow(clippy::too_many_arguments)]
fn conv_forward(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    b: usize,
    c_in: usize,
    l: usize,
    c_out: usize,
    k: usize,
    pad: usize,
) -> Vec<f32> {
    let g = Graph::new();
    let xv = g.constant(Tensor::from_vec(x.to_vec(), &[b, c_in, l]));
    let wv = g.constant(Tensor::from_vec(w.to_vec(), &[c_out, c_in, k]));
    let bv = g.constant(Tensor::from_vec(bias.to_vec(), &[c_out]));
    g.value(g.conv1d(xv, wv, bv, pad)).data().to_vec()
}

/// Per-element tolerance for the conv lowering: the reduction chain is
/// `c_in · k` taps seeded with the bias, so the contract bound is
/// `2 · c_in·k · ε · (|bias| + Σ |x · w|)` over the unpadded taps.
#[allow(clippy::too_many_arguments)]
fn conv_tolerances(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    b: usize,
    c_in: usize,
    l: usize,
    c_out: usize,
    k: usize,
    pad: usize,
) -> Vec<f32> {
    let l_out = l + 2 * pad - k + 1;
    let chain = 2.0 * (c_in * k) as f64 * f32::EPSILON as f64;
    let mut tol = vec![0.0f32; b * c_out * l_out];
    for bi in 0..b {
        for co in 0..c_out {
            for lo in 0..l_out {
                let mut mag = bias[co].abs() as f64;
                for ci in 0..c_in {
                    for kk in 0..k {
                        let xi = lo + kk;
                        if xi < pad || xi - pad >= l {
                            continue;
                        }
                        let xe = x[(bi * c_in + ci) * l + (xi - pad)];
                        let we = w[(co * c_in + ci) * k + kk];
                        mag += (xe * we).abs() as f64;
                    }
                }
                tol[(bi * c_out + co) * l_out + lo] = (chain * mag) as f32;
            }
        }
    }
    tol
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The graph-level conv lowering under `KernelPolicy::Fast` stays
    /// within the contract bound of the bit-exact run, and is itself
    /// bitwise run-to-run stable.
    #[test]
    fn fast_policy_conv_matches_bitexact_within_contract(
        b in 1usize..=2,
        c_in in 1usize..=3,
        c_out in 1usize..=3,
        l in 2usize..=10,
        k in 1usize..=3,
        pad in 0usize..=1,
        seed in 0u64..1024,
    ) {
        prop_assume!(l + 2 * pad >= k);
        let x = seeded(seed, b * c_in * l);
        let w = seeded(seed ^ 0x9e37_79b9, c_out * c_in * k);
        let bias = seeded(seed ^ 0x5175_7c15, c_out);

        let _lock = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_kernel_policy(KernelPolicy::BitExact);
        let exact = conv_forward(&x, &w, &bias, b, c_in, l, c_out, k, pad);
        drop(_lock);

        let (fast, again) = with_fast_policy(|| {
            (
                conv_forward(&x, &w, &bias, b, c_in, l, c_out, k, pad),
                conv_forward(&x, &w, &bias, b, c_in, l, c_out, k, pad),
            )
        });

        prop_assert_eq!(bits(&fast), bits(&again), "Fast conv unstable run-to-run");
        let tol = conv_tolerances(&x, &w, &bias, b, c_in, l, c_out, k, pad);
        assert_within(&fast, &exact, &tol)?;
    }

    /// Policy-level sanity: flipping the global policy routes the public
    /// `gemm` entry point through the fast path and back.
    #[test]
    fn policy_flip_round_trips_through_public_gemm(
        m in 1usize..=9,
        k in 1usize..=24,
        n in 1usize..=9,
        seed in 0u64..1024,
    ) {
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0x9e37_79b9, k * n);
        let init = seeded(seed ^ 0x5175_7c15, m * n);

        let mut oracle = init.clone();
        naive_gemm(&a, &b, &mut oracle, m, k, n);

        let mut fast = init.clone();
        with_fast_policy(|| refil_nn::gemm::gemm(&a, &b, &mut fast, m, k, n));

        let mut direct = init.clone();
        gemm_fast(&a, &b, &mut direct, m, k, n);
        prop_assert_eq!(
            bits(&fast),
            bits(&direct),
            "policy-routed gemm must take the fast kernel verbatim"
        );

        let _lock = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_kernel_policy(KernelPolicy::BitExact);
        let mut exact = init.clone();
        refil_nn::gemm::gemm(&a, &b, &mut exact, m, k, n);
        prop_assert_eq!(
            bits(&exact),
            bits(&oracle),
            "restored BitExact policy must be bit-identical to the oracle"
        );
    }
}

/// Exact tanh-GELU reference, mirroring `graph::gelu_fwd` (same constants,
/// same association, libm `tanh`).
fn gelu_exact(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

#[test]
fn fast_gelu_dense_grid_within_contract() {
    // |gelu_fast − gelu_fwd| ≤ 1e-6 · (1 + |x|), scanned densely across the
    // active region and well into both saturated tails (documented contract
    // in crates/nn/src/gemm_fast.rs).
    let src: Vec<f32> = (-12_000..=12_000).map(|i| i as f32 * 1e-3).collect();
    let mut fast = Vec::new();
    gelu_fast(&src, &mut fast);
    for (&x, &y) in src.iter().zip(&fast) {
        let exact = gelu_exact(x);
        let tol = 1e-6 * (1.0 + x.abs());
        assert!(
            (y - exact).abs() <= tol,
            "gelu_fast({x}) = {y}, exact {exact}, tol {tol}"
        );
    }
}

#[test]
fn fast_gelu_is_position_independent_bitwise() {
    // A value must produce the same bits whether it lands in an 8-wide SIMD
    // lane or the scalar tail: evaluate a slice whole, then element by
    // element (single-element slices always take the tail path).
    let src = seeded(99, 37); // non-multiple of 8 forces a real tail
    let mut whole = Vec::new();
    gelu_fast(&src, &mut whole);
    for (i, &x) in src.iter().enumerate() {
        let mut one = Vec::new();
        gelu_fast(&[x], &mut one);
        assert_eq!(one[0].to_bits(), whole[i].to_bits(), "element {i} ({x})");
    }
}

/// aarch64: the 4-wide NEON GELU must agree with the scalar fused sequence
/// bitwise for finite inputs — `vfmaq_f32` mirrors `mul_add` contraction for
/// contraction, so a value's bits cannot depend on whether it landed in a
/// vector lane or the scalar tail. (On x86_64 the same property is pinned by
/// `fast_gelu_is_position_independent_bitwise` against the AVX2 lanes.)
#[cfg(target_arch = "aarch64")]
#[test]
fn neon_gelu_matches_scalar_fma_bitwise() {
    use refil_nn::gemm_fast::gelu_fma;
    let src = seeded(7, 133); // non-multiple of 4 forces a real scalar tail
    let mut fast = Vec::new();
    gelu_fast(&src, &mut fast);
    assert_eq!(fast.len(), src.len());
    for (i, &x) in src.iter().enumerate() {
        assert_eq!(
            fast[i].to_bits(),
            gelu_fma(x).to_bits(),
            "lane {i} ({x}) diverges from the scalar fused sequence"
        );
    }
}

/// aarch64: the saturated tails and the clamp boundary stay inside the
/// documented error contract through the NEON path (the dense grid test
/// covers the active region; this pins the exact clamp edges).
#[cfg(target_arch = "aarch64")]
#[test]
fn neon_gelu_clamp_edges_within_contract() {
    let edges = [
        -7.905_311_5f32,
        7.905_311_5,
        -7.905_312,
        7.905_312,
        -30.0,
        30.0,
    ];
    let mut fast = Vec::new();
    gelu_fast(&edges, &mut fast);
    for (&x, &y) in edges.iter().zip(&fast) {
        let exact = gelu_exact(x);
        let tol = 1e-6 * (1.0 + x.abs());
        assert!(
            (y - exact).abs() <= tol,
            "gelu_fast({x}) = {y}, exact {exact}, tol {tol}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Graph::gelu` under `Fast` takes the vectorized kernel verbatim, and
    /// a restored `BitExact` policy reproduces the libm forward bitwise.
    #[test]
    fn policy_flip_round_trips_through_graph_gelu(
        seed in 0u64..1000,
        len in 1usize..64,
    ) {
        let src = seeded(seed, len);
        let mut kernel = Vec::new();
        gelu_fast(&src, &mut kernel);

        let fast = with_fast_policy(|| {
            let g = Graph::new();
            let x = g.constant(Tensor::from_vec(src.clone(), &[len]));
            g.value(g.gelu(x)).data().to_vec()
        });
        prop_assert_eq!(
            bits(&fast),
            bits(&kernel),
            "policy-routed gelu must take the fast kernel verbatim"
        );

        let _lock = POLICY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_kernel_policy(KernelPolicy::BitExact);
        let g = Graph::new();
        let x = g.constant(Tensor::from_vec(src.clone(), &[len]));
        let exact = g.value(g.gelu(x)).data().to_vec();
        let oracle: Vec<f32> = src.iter().map(|&v| gelu_exact(v)).collect();
        prop_assert_eq!(
            bits(&exact),
            bits(&oracle),
            "restored BitExact policy must reproduce the libm forward"
        );
    }
}
