//! Pluggable trace sinks: where streamed [`TraceEvent`]s go.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::{Level, TraceEvent};

/// Receiver for streamed trace events.
///
/// Sinks observe the event stream; aggregation for
/// [`crate::TelemetrySummary`] happens in the collector regardless of which
/// sink is installed, so a sink only has to care about its own output format.
pub trait Sink: Send + Sync {
    /// Handles one event. Called in program order from the emitting thread.
    fn event(&self, event: &TraceEvent);

    /// Flushes buffered output, if any.
    fn flush(&self) {}

    /// Whether this sink does anything with events. The collector caches
    /// this once at construction and skips building [`TraceEvent`] values
    /// (and the `String` clones they carry) entirely when it returns false —
    /// the aggregate-only fast path of [`crate::Telemetry::collecting`].
    fn wants_events(&self) -> bool {
        true
    }
}

/// Discards every event. The default sink; the collector additionally
/// short-circuits before event construction when telemetry is disabled, so
/// the disabled path costs one branch.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn event(&self, _event: &TraceEvent) {}

    fn wants_events(&self) -> bool {
        false
    }
}

/// Human-readable sink writing to stderr, filtered by maximum level.
///
/// Log events print when their level is at or above the threshold; spans,
/// counters, and observations are [`Level::Debug`] and print only when the
/// threshold admits debug output.
#[derive(Debug)]
pub struct StderrSink {
    max_level: Option<Level>,
}

impl StderrSink {
    /// A sink admitting events up to and including `max_level`.
    pub fn with_level(max_level: Level) -> Self {
        Self {
            max_level: Some(max_level),
        }
    }

    /// A sink whose threshold comes from the `REFIL_LOG` environment
    /// variable (`error`/`warn`/`info`/`debug`/`off`), defaulting to `info`
    /// when unset or unrecognised.
    pub fn from_env() -> Self {
        match std::env::var("REFIL_LOG") {
            Ok(raw) if raw.trim().eq_ignore_ascii_case("off") => Self { max_level: None },
            Ok(raw) => Self {
                max_level: Some(Level::parse(&raw).unwrap_or(Level::Info)),
            },
            Err(_) => Self {
                max_level: Some(Level::Info),
            },
        }
    }

    fn admits(&self, level: Level) -> bool {
        self.max_level.is_some_and(|max| level <= max)
    }
}

impl Sink for StderrSink {
    fn event(&self, event: &TraceEvent) {
        let line = match event {
            TraceEvent::Log { level, message } => {
                if !self.admits(*level) {
                    return;
                }
                format!("[{:5}] {message}", level.as_str())
            }
            _ if !self.admits(Level::Debug) => return,
            TraceEvent::SpanStart { path } => format!("[DEBUG] span open  {path}"),
            TraceEvent::SpanEnd { path, duration_ns } => {
                format!(
                    "[DEBUG] span close {path} ({})",
                    fmt_duration_ns(*duration_ns)
                )
            }
            TraceEvent::Counter { name, delta, total } => {
                format!("[DEBUG] counter {name} +{delta} -> {total}")
            }
            TraceEvent::Observe { name, value } => format!("[DEBUG] observe {name} = {value}"),
            TraceEvent::TimelineSpan {
                track,
                name,
                dur_ns,
                ..
            } => {
                format!("[DEBUG] lane {track} {name} ({})", fmt_duration_ns(*dur_ns))
            }
        };
        eprintln!("{line}");
    }
}

fn fmt_duration_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Streaming JSONL sink: one JSON-encoded [`TraceEvent`] per line.
///
/// Write errors after construction are swallowed (telemetry must never abort
/// a training run); construction itself reports file-creation failures.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn event(&self, event: &TraceEvent) {
        let Ok(line) = serde_json::to_string(event) else {
            return;
        };
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        let _ = writeln!(writer, "{line}");
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        let _ = writer.flush();
    }
}

/// Fans one event stream out to several sinks, in order — e.g. a JSONL
/// trace and a Chrome trace from the same run.
pub struct TeeSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl TeeSink {
    /// A sink forwarding every event (and flush) to each of `sinks`.
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        Self { sinks }
    }
}

impl Sink for TeeSink {
    fn event(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.event(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }

    fn wants_events(&self) -> bool {
        self.sinks.iter().any(|sink| sink.wants_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stderr_sink_level_threshold() {
        let sink = StderrSink::with_level(Level::Warn);
        assert!(sink.admits(Level::Error));
        assert!(sink.admits(Level::Warn));
        assert!(!sink.admits(Level::Info));
        assert!(!sink.admits(Level::Debug));
    }

    #[test]
    fn duration_formatting_scales_units() {
        assert_eq!(fmt_duration_ns(999), "999 ns");
        assert_eq!(fmt_duration_ns(1_500), "1.5 µs");
        assert_eq!(fmt_duration_ns(2_500_000), "2.5 ms");
        assert_eq!(fmt_duration_ns(3_210_000_000), "3.21 s");
    }

    #[test]
    fn tee_wants_events_only_when_a_member_does() {
        assert!(!TeeSink::new(vec![Box::new(NoopSink), Box::new(NoopSink)]).wants_events());
        assert!(TeeSink::new(vec![
            Box::new(NoopSink),
            Box::new(StderrSink::with_level(Level::Error))
        ])
        .wants_events());
    }

    #[test]
    fn jsonl_sink_writes_one_event_per_line() {
        let dir = std::env::temp_dir().join("refil-telemetry-test");
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create sink");
        sink.event(&TraceEvent::SpanStart { path: "run".into() });
        sink.event(&TraceEvent::Counter {
            name: "n".into(),
            delta: 1,
            total: 1,
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read trace");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: TraceEvent = serde_json::from_str(lines[0]).expect("parse line 0");
        assert_eq!(first, TraceEvent::SpanStart { path: "run".into() });
        std::fs::remove_file(&path).ok();
    }
}
