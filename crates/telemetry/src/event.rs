//! Trace event model: everything a [`crate::Sink`] can receive.

use serde::{Deserialize, Serialize};

/// Severity of a [`TraceEvent::Log`] message, ordered from most to least
/// severe. Structural events (spans, counters, observations) are treated as
/// [`Level::Debug`] by level-filtering sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Unrecoverable or correctness-threatening conditions.
    Error,
    /// Suspicious but survivable conditions.
    Warn,
    /// High-level progress (task/round milestones).
    Info,
    /// Fine-grained structural events.
    Debug,
}

impl Level {
    /// Parses a level name as found in `REFIL_LOG` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            "off" | "none" => None,
            _ => None,
        }
    }

    /// Fixed-width display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

/// One structured event emitted by [`crate::Telemetry`] and streamed to the
/// configured [`crate::Sink`].
///
/// Serialized one-per-line by [`crate::JsonlSink`] using the externally
/// tagged enum representation, e.g.
/// `{"SpanEnd":{"path":"run/task:0/round:1","duration_ns":1234}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A span opened. `path` is the `/`-joined chain of enclosing span
    /// names, ending with this span's own name.
    SpanStart {
        /// Full span path, e.g. `run/task:0/round:1/client:3`.
        path: String,
    },
    /// A span closed; `duration_ns` is the wall-clock time it was open.
    SpanEnd {
        /// Full span path, matching the corresponding `SpanStart`.
        path: String,
        /// Nanoseconds between open and close (non-negative by
        /// construction: measured with a monotonic clock).
        duration_ns: u64,
    },
    /// A monotonic counter moved forward.
    Counter {
        /// Counter name, e.g. `traffic.up_bytes`.
        name: String,
        /// Increment applied by this event.
        delta: u64,
        /// Running total after applying `delta`.
        total: u64,
    },
    /// A sampled value was recorded into a histogram.
    Observe {
        /// Histogram name, e.g. `client.samples_per_sec`.
        name: String,
        /// The sampled value.
        value: f64,
    },
    /// A human-readable message.
    Log {
        /// Message severity.
        level: Level,
        /// Message text.
        message: String,
    },
    /// One merged slice of a per-worker [`crate::Timeline`] lane: a named
    /// interval on a numbered track, with ticks measured from the collector's
    /// epoch. Emitted in batches when a pool's lanes are merged post-round —
    /// never from a hot path — and rendered by [`crate::ChromeTraceSink`] as
    /// one Perfetto track per worker.
    TimelineSpan {
        /// Track number: 0 is the driver thread, `1..=N` are worker slots.
        track: u32,
        /// Slice name, e.g. `client:3` or `eval:1`.
        name: String,
        /// Nanoseconds from the collector epoch to the slice start.
        start_ns: u64,
        /// Slice duration in nanoseconds.
        dur_ns: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_accepts_aliases_and_rejects_garbage() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn level_ordering_is_severity_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn trace_event_roundtrips_through_json() {
        let events = vec![
            TraceEvent::SpanStart {
                path: "run/task:0".into(),
            },
            TraceEvent::SpanEnd {
                path: "run/task:0".into(),
                duration_ns: 42,
            },
            TraceEvent::Counter {
                name: "traffic.up_bytes".into(),
                delta: 7,
                total: 21,
            },
            TraceEvent::Observe {
                name: "client.duration_s".into(),
                value: 0.125,
            },
            TraceEvent::Log {
                level: Level::Info,
                message: "hello".into(),
            },
            TraceEvent::TimelineSpan {
                track: 2,
                name: "client:5".into(),
                start_ns: 1_000,
                dur_ns: 2_500,
            },
        ];
        for event in events {
            let line = serde_json::to_string(&event).expect("serialize");
            let back: TraceEvent = serde_json::from_str(&line).expect("deserialize");
            assert_eq!(back, event);
        }
    }
}
