//! Round-structured profiling reports: the serde types the federated runner
//! emits once per round and aggregates onto its run result.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Scratch-arena accounting for one stretch of work (a client session, an
/// eval sweep, or a whole round). All byte figures count `f32` payload bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArenaStats {
    /// Bytes newly allocated because the arena pool had no reusable buffer.
    pub reserved_bytes: u64,
    /// Number of fresh allocations behind `reserved_bytes`.
    pub reserved_count: u64,
    /// Bytes served from the pool without allocating.
    pub reused_bytes: u64,
    /// Number of pool hits behind `reused_bytes`.
    pub reused_count: u64,
    /// High-water mark of bytes parked in arena pools.
    pub peak_pool_bytes: u64,
}

impl ArenaStats {
    /// Folds another window into this one: sums flows, takes the max peak.
    pub fn merge(&mut self, other: &ArenaStats) {
        self.reserved_bytes += other.reserved_bytes;
        self.reserved_count += other.reserved_count;
        self.reused_bytes += other.reused_bytes;
        self.reused_count += other.reused_count;
        self.peak_pool_bytes = self.peak_pool_bytes.max(other.peak_pool_bytes);
    }

    /// Fraction of buffer requests served from the pool, in `[0, 1]`.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.reserved_count + self.reused_count;
        if total == 0 {
            0.0
        } else {
            self.reused_count as f64 / total as f64
        }
    }
}

/// One worker slot's accounting for a single pool dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Chrome-trace track number (1-based; 0 is the driver).
    pub track: u32,
    /// Nanoseconds spent inside recorded work items.
    pub busy_ns: u64,
    /// `wall − busy`: nanoseconds the slot existed but ran nothing.
    pub idle_ns: u64,
    /// Work items this slot executed.
    pub items: u64,
    /// Items beyond the slot's static fair share `ceil(total/workers)` —
    /// load imbalance this worker absorbed from slower peers under the
    /// shared-counter scheduler.
    pub steals: u64,
}

impl WorkerStats {
    /// Busy fraction of the dispatch wall time, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let wall = self.busy_ns + self.idle_ns;
        if wall == 0 {
            0.0
        } else {
            self.busy_ns as f64 / wall as f64
        }
    }
}

/// Accounting for one scoped-pool dispatch (client fan-out or eval sweep).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Wall nanoseconds from first spawn to last join.
    pub wall_ns: u64,
    /// Per-slot accounting, in slot order.
    pub workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Total work items across all slots.
    pub fn total_items(&self) -> u64 {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Mean busy fraction across slots, in `[0, 1]`.
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() {
            0.0
        } else {
            self.workers
                .iter()
                .map(WorkerStats::utilization)
                .sum::<f64>()
                / self.workers.len() as f64
        }
    }
}

/// One client session's time on the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStat {
    /// Client id within the federation.
    pub client_id: u64,
    /// Track (worker slot + 1) the session ran on.
    pub track: u32,
    /// Wall nanoseconds of the session body.
    pub duration_ns: u64,
}

/// Wall nanoseconds per phase of one federated round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseNanos {
    /// Encoding and (simulated) sending of the global payloads.
    pub broadcast: u64,
    /// Parallel client-session fan-out, spawn to join.
    pub train: u64,
    /// Upload decode + strategy aggregation (e.g. FedAvg).
    pub aggregate: u64,
    /// Ordered merge of per-client artifacts into the global state.
    pub merge: u64,
    /// Domain-incremental evaluation (0 for non-boundary rounds).
    pub eval: u64,
}

/// Everything the runner measured about one federated round.
///
/// Emitted once per round and collected into `RunResult::rounds`. Wall
/// times, pool stats, and arena stats vary run-to-run (and with thread
/// count); the *semantic* fields — ids, counts, wire bytes, accuracies —
/// are deterministic for a fixed seed at any thread count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// 0-based task (domain) index.
    pub task: u64,
    /// 0-based round index within the task.
    pub round: u64,
    /// Wall nanoseconds for the whole round.
    pub wall_ns: u64,
    /// Per-phase wall breakdown.
    pub phases: PhaseNanos,
    /// Per-client session times, in client-id order.
    pub sessions: Vec<SessionStat>,
    /// Worker accounting for the client fan-out (absent when telemetry is
    /// disabled).
    pub train_pool: Option<PoolStats>,
    /// Worker accounting for the eval sweep (absent off task boundaries or
    /// when telemetry is disabled).
    pub eval_pool: Option<PoolStats>,
    /// Bytes moved this round, keyed by wire message kind (the same names
    /// as the `wire.<kind>_bytes` counters, without prefix/suffix).
    pub wire_bytes: BTreeMap<String, u64>,
    /// Clients that completed a session this round.
    pub clients_trained: u64,
    /// Clients dropped by the participation schedule this round.
    pub clients_dropped: u64,
    /// Networked runs: sessions whose results missed the round deadline
    /// (stragglers and dead peers). Always 0 on the in-process paths.
    /// `#[serde(default)]` keeps pre-networking reports deserializable.
    #[serde(default)]
    pub clients_late: u64,
    /// Sessions removed by sampled participation (`net.sample_fraction`)
    /// this round. Always 0 when sampling is disabled.
    /// `#[serde(default)]` keeps pre-sampling reports deserializable.
    #[serde(default)]
    pub clients_sampled_out: u64,
    /// Per-domain accuracies when this round closed a task, else `None`.
    pub eval_domain_acc: Option<Vec<f32>>,
    /// What this round's client updates would have cost as plain dense
    /// frames — the denominator of the compression ratio. Equals
    /// [`RoundReport::uplink_encoded_bytes`] when compression is off.
    /// `#[serde(default)]` keeps pre-compression reports deserializable.
    #[serde(default)]
    pub uplink_raw_bytes: u64,
    /// Encoded bytes the round's client update frames actually occupied on
    /// the wire (also counted per kind in [`RoundReport::wire_bytes`]).
    /// `#[serde(default)]` keeps pre-compression reports deserializable.
    #[serde(default)]
    pub uplink_encoded_bytes: u64,
    /// Scratch-arena accounting summed over the round's sessions and eval.
    pub scratch: ArenaStats,
}

impl RoundReport {
    /// Total bytes moved this round across all wire message kinds.
    pub fn total_wire_bytes(&self) -> u64 {
        self.wire_bytes.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_stats_merge_sums_flows_and_maxes_peak() {
        let mut a = ArenaStats {
            reserved_bytes: 100,
            reserved_count: 2,
            reused_bytes: 300,
            reused_count: 6,
            peak_pool_bytes: 400,
        };
        let b = ArenaStats {
            reserved_bytes: 50,
            reserved_count: 1,
            reused_bytes: 100,
            reused_count: 2,
            peak_pool_bytes: 900,
        };
        a.merge(&b);
        assert_eq!(a.reserved_bytes, 150);
        assert_eq!(a.reused_count, 8);
        assert_eq!(a.peak_pool_bytes, 900);
        assert!((a.reuse_ratio() - 8.0 / 11.0).abs() < 1e-12);
        assert_eq!(ArenaStats::default().reuse_ratio(), 0.0);
    }

    #[test]
    fn worker_utilization_is_busy_over_wall() {
        let w = WorkerStats {
            track: 1,
            busy_ns: 75,
            idle_ns: 25,
            items: 3,
            steals: 0,
        };
        assert_eq!(w.utilization(), 0.75);
    }

    #[test]
    fn pool_stats_aggregate_items_and_utilization() {
        let pool = PoolStats {
            wall_ns: 100,
            workers: vec![
                WorkerStats {
                    track: 1,
                    busy_ns: 100,
                    idle_ns: 0,
                    items: 4,
                    steals: 1,
                },
                WorkerStats {
                    track: 2,
                    busy_ns: 50,
                    idle_ns: 50,
                    items: 2,
                    steals: 0,
                },
            ],
        };
        assert_eq!(pool.total_items(), 6);
        assert_eq!(pool.mean_utilization(), 0.75);
        assert_eq!(PoolStats::default().mean_utilization(), 0.0);
    }

    #[test]
    fn round_report_roundtrips_through_json() {
        let mut report = RoundReport {
            task: 1,
            round: 2,
            wall_ns: 5_000,
            phases: PhaseNanos {
                broadcast: 100,
                train: 3_000,
                aggregate: 500,
                merge: 400,
                eval: 1_000,
            },
            sessions: vec![SessionStat {
                client_id: 3,
                track: 1,
                duration_ns: 2_800,
            }],
            train_pool: Some(PoolStats::default()),
            eval_pool: None,
            wire_bytes: BTreeMap::new(),
            clients_trained: 1,
            clients_dropped: 0,
            clients_late: 0,
            clients_sampled_out: 1,
            eval_domain_acc: Some(vec![0.5, 0.25]),
            uplink_raw_bytes: 128,
            uplink_encoded_bytes: 32,
            scratch: ArenaStats::default(),
        };
        report.wire_bytes.insert("model_broadcast".into(), 64);
        report.wire_bytes.insert("client_update".into(), 32);
        assert_eq!(report.total_wire_bytes(), 96);
        let json = serde_json::to_string(&report).expect("serialize");
        let back: RoundReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
    }
}
