//! Structured telemetry for the RefFiL training loop.
//!
//! A [`Telemetry`] handle is a cheaply clonable collector of hierarchical
//! timed [`Span`]s, monotonic counters, and value histograms. Every event is
//! aggregated in memory (surfaced as a [`TelemetrySummary`]) and streamed to
//! one pluggable [`Sink`]:
//!
//! - [`NoopSink`] — discard the stream (the default; disabled handles
//!   short-circuit before events are even constructed),
//! - [`StderrSink`] — human-readable lines, level-filtered via `REFIL_LOG`,
//! - [`JsonlSink`] — one JSON event per line, for offline analysis.
//!
//! ```
//! use refil_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::collecting(); // aggregate only, no stream
//! {
//!     let _run = telemetry.span("run");
//!     let _task = telemetry.span("task:0");
//!     telemetry.counter("traffic.up_bytes", 64);
//!     telemetry.observe("client.duration_s", 0.25);
//! }
//! let summary = telemetry.summary();
//! assert_eq!(summary.counter("traffic.up_bytes"), 64);
//! assert_eq!(summary.spans["task:0"].count, 1);
//! ```
//!
//! Telemetry never touches the training RNG streams, so enabling any sink
//! leaves run results bit-identical to a disabled run.

mod event;
mod sink;
mod summary;

pub use event::{Level, TraceEvent};
pub use sink::{JsonlSink, NoopSink, Sink, StderrSink};
pub use summary::{HistogramSummary, SpanSummary, TelemetrySummary};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
    spans: BTreeMap<String, SpanSummary>,
}

struct Inner {
    sink: Box<dyn Sink>,
    state: Mutex<State>,
}

/// Names of currently open spans, innermost last. Kept apart from the shared
/// aggregation state so concurrent workers can each own an independent stack
/// (see [`Telemetry::scoped`]) while still feeding one collector.
type SpanStack = Arc<Mutex<Vec<String>>>;

/// Collector handle threaded through the training loop.
///
/// Clones share the same collector *and* the same span stack, so a handle can
/// be stored both by the federated runner and by a strategy without
/// coordination. [`Telemetry::scoped`] instead forks an independent span
/// stack (rooted at an explicit parent path) over the same collector — the
/// form a worker thread needs so its spans neither race nor interleave with
/// other workers'. The default handle is disabled: every method is a
/// single-branch no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    stack: SpanStack,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle: records nothing, streams nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle streaming to `sink` (and always aggregating).
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                state: Mutex::new(State::default()),
            })),
            stack: SpanStack::default(),
        }
    }

    /// An enabled handle that aggregates a [`TelemetrySummary`] but streams
    /// nowhere.
    pub fn collecting() -> Self {
        Self::with_sink(Box::new(NoopSink))
    }

    /// An enabled handle streaming human-readable lines to stderr, with the
    /// level threshold taken from `REFIL_LOG`.
    pub fn stderr() -> Self {
        Self::with_sink(Box::new(StderrSink::from_env()))
    }

    /// An enabled handle streaming JSONL trace events to a file at `path`.
    pub fn jsonl(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::with_sink(Box::new(JsonlSink::create(path)?)))
    }

    /// Whether events are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Forks a handle over the same collector whose spans open under
    /// `parent_path` (a `/`-joined span path such as `run/task:0/round:3`)
    /// on an *independent* span stack.
    ///
    /// Plain clones share one stack, which is right for a single thread of
    /// control but races when workers open spans concurrently. A scoped
    /// handle gives each worker its own stack, reparented under the round
    /// that dispatched it, so per-worker span trees stay well-formed while
    /// counters, histograms, and span aggregates still land in the shared
    /// summary.
    pub fn scoped(&self, parent_path: &str) -> Telemetry {
        let base: Vec<String> = parent_path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        Telemetry {
            inner: self.inner.clone(),
            stack: Arc::new(Mutex::new(base)),
        }
    }

    /// The `/`-joined path of the currently open spans on this handle's
    /// stack (empty when no span is open). Feed this to [`Telemetry::scoped`]
    /// to reparent worker handles under the caller's current span.
    pub fn current_path(&self) -> String {
        self.stack
            .lock()
            .expect("telemetry stack poisoned")
            .join("/")
    }

    /// Opens a timed span nested under the currently open spans. Close is
    /// automatic when the returned guard drops.
    #[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                telemetry: Telemetry::disabled(),
                name: String::new(),
                depth: 0,
                start: None,
            };
        };
        let path = {
            let mut stack = self.stack.lock().expect("telemetry stack poisoned");
            stack.push(name.to_string());
            stack.join("/")
        };
        let depth = path.split('/').count();
        inner.sink.event(&TraceEvent::SpanStart { path });
        Span {
            telemetry: self.clone(),
            name: name.to_string(),
            depth,
            start: Some(Instant::now()),
        }
    }

    /// Advances a monotonic counter by `delta`.
    pub fn counter(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let total = {
            let mut state = inner.state.lock().expect("telemetry state poisoned");
            let slot = state.counters.entry(name.to_string()).or_insert(0);
            *slot += delta;
            *slot
        };
        inner.sink.event(&TraceEvent::Counter {
            name: name.to_string(),
            delta,
            total,
        });
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        {
            let mut state = inner.state.lock().expect("telemetry state poisoned");
            state
                .histograms
                .entry(name.to_string())
                .or_default()
                .record(value);
        }
        inner.sink.event(&TraceEvent::Observe {
            name: name.to_string(),
            value,
        });
    }

    /// Emits a log message at `level`.
    pub fn log(&self, level: Level, message: impl AsRef<str>) {
        let Some(inner) = &self.inner else { return };
        inner.sink.event(&TraceEvent::Log {
            level,
            message: message.as_ref().to_string(),
        });
    }

    /// Emits an [`Level::Info`] log message.
    pub fn info(&self, message: impl AsRef<str>) {
        self.log(Level::Info, message);
    }

    /// Emits a [`Level::Warn`] log message.
    pub fn warn(&self, message: impl AsRef<str>) {
        self.log(Level::Warn, message);
    }

    /// Emits a [`Level::Debug`] log message.
    pub fn debug(&self, message: impl AsRef<str>) {
        self.log(Level::Debug, message);
    }

    /// Snapshot of everything aggregated so far.
    pub fn summary(&self) -> TelemetrySummary {
        let Some(inner) = &self.inner else {
            return TelemetrySummary::default();
        };
        let state = inner.state.lock().expect("telemetry state poisoned");
        TelemetrySummary {
            counters: state.counters.clone(),
            histograms: state.histograms.clone(),
            spans: state.spans.clone(),
        }
    }

    /// Flushes the sink's buffered output, if any.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }

    fn close_span(&self, name: &str, depth: usize, start: Instant) {
        let Some(inner) = &self.inner else { return };
        let duration_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = {
            let mut stack = self.stack.lock().expect("telemetry stack poisoned");
            // Tolerate out-of-order guard drops: truncate to this span's depth.
            stack.truncate(depth);
            let path = stack.join("/");
            if stack.pop().is_none() {
                return; // unbalanced close; nothing sensible to report
            }
            path
        };
        {
            let mut state = inner.state.lock().expect("telemetry state poisoned");
            let span = state.spans.entry(name.to_string()).or_default();
            span.count += 1;
            span.total_ns += duration_ns;
        }
        inner.sink.event(&TraceEvent::SpanEnd { path, duration_ns });
    }
}

/// RAII guard for an open span; closes (and times) the span on drop.
pub struct Span {
    telemetry: Telemetry,
    name: String,
    depth: usize,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.telemetry.close_span(&self.name, self.depth, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let _span = t.span("run");
        t.counter("c", 5);
        t.observe("h", 1.0);
        t.info("ignored");
        assert!(t.summary().is_empty());
    }

    #[test]
    fn counters_accumulate_monotonically() {
        let t = Telemetry::collecting();
        t.counter("bytes", 10);
        t.counter("bytes", 32);
        t.counter("other", 1);
        let s = t.summary();
        assert_eq!(s.counter("bytes"), 42);
        assert_eq!(s.counter("other"), 1);
    }

    #[test]
    fn span_nesting_builds_slash_paths() {
        struct Capture(Mutex<Vec<TraceEvent>>);
        impl Sink for Capture {
            fn event(&self, event: &TraceEvent) {
                self.0.lock().unwrap().push(event.clone());
            }
        }
        let sink = Arc::new(Capture(Mutex::new(Vec::new())));
        struct Fwd(Arc<Capture>);
        impl Sink for Fwd {
            fn event(&self, event: &TraceEvent) {
                self.0.event(event);
            }
        }
        let t = Telemetry::with_sink(Box::new(Fwd(sink.clone())));
        {
            let _run = t.span("run");
            {
                let _task = t.span("task:0");
                let _round = t.span("round:1");
            }
            let _task2 = t.span("task:1");
        }
        let events = sink.0.lock().unwrap().clone();
        let paths: Vec<String> = events
            .iter()
            .map(|e| match e {
                TraceEvent::SpanStart { path } => format!("+{path}"),
                TraceEvent::SpanEnd { path, .. } => format!("-{path}"),
                _ => unreachable!("only span events emitted"),
            })
            .collect();
        assert_eq!(
            paths,
            vec![
                "+run",
                "+run/task:0",
                "+run/task:0/round:1",
                "-run/task:0/round:1",
                "-run/task:0",
                "+run/task:1",
                "-run/task:1",
                "-run",
            ]
        );
    }

    #[test]
    fn span_durations_are_monotone_with_nesting() {
        let t = Telemetry::collecting();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let s = t.summary();
        assert_eq!(s.spans["outer"].count, 1);
        assert_eq!(s.spans["inner"].count, 1);
        // The outer span was open for at least as long as the inner one.
        assert!(s.spans["outer"].total_ns >= s.spans["inner"].total_ns);
        assert!(s.spans["inner"].total_ns > 0);
    }

    #[test]
    fn summary_snapshot_is_independent_of_later_events() {
        let t = Telemetry::collecting();
        t.counter("c", 1);
        let snap = t.summary();
        t.counter("c", 1);
        assert_eq!(snap.counter("c"), 1);
        assert_eq!(t.summary().counter("c"), 2);
    }

    #[test]
    fn clones_share_one_collector() {
        let a = Telemetry::collecting();
        let b = a.clone();
        a.counter("shared", 1);
        b.counter("shared", 2);
        assert_eq!(a.summary().counter("shared"), 3);
    }

    #[test]
    fn current_path_tracks_open_spans() {
        let t = Telemetry::collecting();
        assert_eq!(t.current_path(), "");
        let _run = t.span("run");
        let _round = t.span("round:2");
        assert_eq!(t.current_path(), "run/round:2");
    }

    #[test]
    fn scoped_handle_reparents_spans_under_parent_path() {
        struct Capture(Mutex<Vec<TraceEvent>>);
        impl Sink for Capture {
            fn event(&self, event: &TraceEvent) {
                self.0.lock().unwrap().push(event.clone());
            }
        }
        let sink = Arc::new(Capture(Mutex::new(Vec::new())));
        struct Fwd(Arc<Capture>);
        impl Sink for Fwd {
            fn event(&self, event: &TraceEvent) {
                self.0.event(event);
            }
        }
        let t = Telemetry::with_sink(Box::new(Fwd(sink.clone())));
        {
            let _run = t.span("run");
            let _round = t.span("round:0");
            let worker = t.scoped(&t.current_path());
            let _client = worker.span("client:3");
        }
        let events = sink.0.lock().unwrap().clone();
        let client_paths: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SpanStart { path } if path.contains("client") => Some(path.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(client_paths, vec!["run/round:0/client:3"]);
        // The worker's span close must not have disturbed the parent stack.
        assert_eq!(t.summary().spans["client:3"].count, 1);
    }

    #[test]
    fn scoped_handles_aggregate_concurrently_without_interleaving() {
        let t = Telemetry::collecting();
        let _run = t.span("run");
        let parent = t.current_path();
        std::thread::scope(|s| {
            for w in 0..4 {
                let worker = t.scoped(&parent);
                s.spawn(move || {
                    for _ in 0..8 {
                        let _span = worker.span(&format!("client:{w}"));
                        worker.counter("sessions", 1);
                    }
                });
            }
        });
        let summary = t.summary();
        assert_eq!(summary.counter("sessions"), 32);
        for w in 0..4 {
            assert_eq!(summary.spans[&format!("client:{w}")].count, 8);
        }
    }
}
