//! Structured telemetry for the RefFiL training loop.
//!
//! A [`Telemetry`] handle is a cheaply clonable collector of hierarchical
//! timed [`Span`]s, monotonic counters, and value histograms. Every event is
//! aggregated in memory (surfaced as a [`TelemetrySummary`]) and streamed to
//! one pluggable [`Sink`]:
//!
//! - [`NoopSink`] — discard the stream (the default; disabled handles
//!   short-circuit before events are even constructed),
//! - [`StderrSink`] — human-readable lines, level-filtered via `REFIL_LOG`,
//! - [`JsonlSink`] — one JSON event per line, for offline analysis,
//! - [`ChromeTraceSink`] — Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`), one track per worker,
//! - [`PrometheusSink`] — a Prometheus-style text exposition snapshot,
//! - [`TeeSink`] — fan one stream out to several of the above.
//!
//! ```
//! use refil_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::collecting(); // aggregate only, no stream
//! {
//!     let _run = telemetry.span("run");
//!     let _task = telemetry.span("task:0");
//!     telemetry.counter("traffic.up_bytes", 64);
//!     telemetry.observe("client.duration_s", 0.25);
//! }
//! let summary = telemetry.summary();
//! assert_eq!(summary.counter("traffic.up_bytes"), 64);
//! assert_eq!(summary.spans["task:0"].count, 1);
//! ```
//!
//! # Profiling layer
//!
//! On top of the span/counter stream sits a round-structured profiling
//! layer: [`Timeline`] hands out per-worker [`Lane`]s whose preallocated
//! event buffers record `(label, start, end)` ticks with no locking and no
//! allocation on the hot path, merged post-round into per-worker
//! busy/idle/steal accounting ([`PoolStats`]) and streamed as
//! [`TraceEvent::TimelineSpan`]s. The federated runner folds those, wire
//! bytes, and arena stats into one [`RoundReport`] per round.
//!
//! Telemetry never touches the training RNG streams, so enabling any sink
//! leaves run results bit-identical to a disabled run. A disabled handle
//! costs one branch per call — no locks, no clock reads, no allocation.

mod chrome;
mod event;
mod prometheus;
mod report;
mod sink;
mod summary;
mod timeline;

pub use chrome::ChromeTraceSink;
pub use event::{Level, TraceEvent};
pub use prometheus::PrometheusSink;
pub use report::{ArenaStats, PhaseNanos, PoolStats, RoundReport, SessionStat, WorkerStats};
pub use sink::{JsonlSink, NoopSink, Sink, StderrSink, TeeSink};
pub use summary::{HistogramSummary, SpanSummary, TelemetrySummary};
pub use timeline::{Lane, LaneEvent, Timeline};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
    spans: BTreeMap<String, SpanSummary>,
}

struct Inner {
    sink: Box<dyn Sink>,
    /// Cached [`Sink::wants_events`]: when false (the [`NoopSink`] of
    /// [`Telemetry::collecting`]), event structs — and the path/name `String`
    /// clones they carry — are never constructed.
    stream: bool,
    /// Origin for every monotonic tick this collector hands out
    /// ([`Telemetry::now_ns`], timeline lanes, Chrome trace timestamps).
    epoch: Instant,
    state: Mutex<State>,
}

/// The currently open span path, maintained incrementally: one reused
/// `String` holding the `/`-joined path plus a stack of offsets marking
/// where each segment starts. Pushing a span appends to the buffer and
/// popping truncates it, so the hot path never re-joins (reallocates) the
/// full dotted path per span — the fix for the PR 1 span-path churn.
#[derive(Default)]
struct PathStack {
    path: String,
    /// `marks[i]` = `path.len()` before segment `i` (and its separator) was
    /// appended; truncating to `marks[i]` removes segments `i..`.
    marks: Vec<usize>,
}

impl PathStack {
    fn from_path(parent: &str) -> Self {
        let mut stack = PathStack::default();
        for seg in parent.split('/').filter(|s| !s.is_empty()) {
            stack.push(seg);
        }
        stack
    }

    fn push(&mut self, name: &str) {
        self.marks.push(self.path.len());
        if !self.path.is_empty() {
            self.path.push('/');
        }
        self.path.push_str(name);
    }

    fn depth(&self) -> usize {
        self.marks.len()
    }

    /// Truncates to `depth` open segments (tolerating out-of-order guard
    /// drops), then returns the innermost segment's start offset — or `None`
    /// when the stack is already shallower (unbalanced close).
    fn seek(&mut self, depth: usize) -> Option<usize> {
        while self.marks.len() > depth {
            let mark = self.marks.pop().expect("len checked");
            self.path.truncate(mark);
        }
        self.marks.last().copied()
    }

    /// Removes the innermost segment.
    fn pop(&mut self) {
        if let Some(mark) = self.marks.pop() {
            self.path.truncate(mark);
        }
    }

    /// The innermost segment (without its separator) given its start mark.
    fn leaf(&self, mark: usize) -> &str {
        let start = if mark == 0 { 0 } else { mark + 1 };
        &self.path[start..]
    }
}

/// Names of currently open spans, innermost last. Kept apart from the shared
/// aggregation state so concurrent workers can each own an independent stack
/// (see [`Telemetry::scoped`]) while still feeding one collector.
type SpanStack = Arc<Mutex<PathStack>>;

/// Collector handle threaded through the training loop.
///
/// Clones share the same collector *and* the same span stack, so a handle can
/// be stored both by the federated runner and by a strategy without
/// coordination. [`Telemetry::scoped`] instead forks an independent span
/// stack (rooted at an explicit parent path) over the same collector — the
/// form a worker thread needs so its spans neither race nor interleave with
/// other workers'. The default handle is disabled: every method is a
/// single-branch no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    stack: SpanStack,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle: records nothing, streams nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle streaming to `sink` (and always aggregating).
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        let stream = sink.wants_events();
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                stream,
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
            stack: SpanStack::default(),
        }
    }

    /// An enabled handle that aggregates a [`TelemetrySummary`] but streams
    /// nowhere.
    pub fn collecting() -> Self {
        Self::with_sink(Box::new(NoopSink))
    }

    /// An enabled handle streaming human-readable lines to stderr, with the
    /// level threshold taken from `REFIL_LOG`.
    pub fn stderr() -> Self {
        Self::with_sink(Box::new(StderrSink::from_env()))
    }

    /// An enabled handle streaming JSONL trace events to a file at `path`.
    pub fn jsonl(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::with_sink(Box::new(JsonlSink::create(path)?)))
    }

    /// An enabled handle writing a Chrome trace-event JSON file to `path` on
    /// flush — load it in Perfetto or `chrome://tracing` to see one track
    /// per worker.
    pub fn chrome(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::with_sink(Box::new(ChromeTraceSink::create(path)?)))
    }

    /// An enabled handle writing a Prometheus-style text exposition snapshot
    /// to `path` on flush.
    pub fn prometheus(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(Self::with_sink(Box::new(PrometheusSink::create(path)?)))
    }

    /// Whether events are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Monotonic nanoseconds since this collector was created, or 0 on a
    /// disabled handle. All timeline ticks and Chrome trace timestamps share
    /// this origin.
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => u64::try_from(inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    pub(crate) fn epoch(&self) -> Option<Instant> {
        self.inner.as_ref().map(|inner| inner.epoch)
    }

    /// Forks a handle over the same collector whose spans open under
    /// `parent_path` (a `/`-joined span path such as `run/task:0/round:3`)
    /// on an *independent* span stack.
    ///
    /// Plain clones share one stack, which is right for a single thread of
    /// control but races when workers open spans concurrently. A scoped
    /// handle gives each worker its own stack, reparented under the round
    /// that dispatched it, so per-worker span trees stay well-formed while
    /// counters, histograms, and span aggregates still land in the shared
    /// summary.
    pub fn scoped(&self, parent_path: &str) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            stack: Arc::new(Mutex::new(PathStack::from_path(parent_path))),
        }
    }

    /// The `/`-joined path of the currently open spans on this handle's
    /// stack (empty when no span is open). Feed this to [`Telemetry::scoped`]
    /// to reparent worker handles under the caller's current span.
    pub fn current_path(&self) -> String {
        self.stack
            .lock()
            .expect("telemetry stack poisoned")
            .path
            .clone()
    }

    /// A per-pool timeline over this collector: hand one [`Lane`] to each
    /// worker, merge them post-round. Disabled handles yield a disabled
    /// timeline whose lanes record nothing.
    pub fn timeline(&self) -> Timeline {
        Timeline::new(self)
    }

    /// Streams one merged timeline slice. Called by [`Timeline::merge`] and
    /// by the runner for driver-track phase envelopes — never from a hot
    /// path. Also folds the slice into the span aggregates under its `kind:`
    /// prefix (e.g. every `client:<id>` slice aggregates as `client`).
    pub fn timeline_span(&self, track: u32, name: &str, start_ns: u64, dur_ns: u64) {
        let Some(inner) = &self.inner else { return };
        {
            let mut state = inner.state.lock().expect("telemetry state poisoned");
            let kind = name.split(':').next().unwrap_or(name);
            let span = match state.spans.get_mut(kind) {
                Some(span) => span,
                None => state.spans.entry(kind.to_string()).or_default(),
            };
            span.count += 1;
            span.total_ns += dur_ns;
        }
        if inner.stream {
            inner.sink.event(&TraceEvent::TimelineSpan {
                track,
                name: name.to_string(),
                start_ns,
                dur_ns,
            });
        }
    }

    /// Opens a timed span nested under the currently open spans. Close is
    /// automatic when the returned guard drops.
    #[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
    pub fn span(&self, name: &str) -> Span {
        if self.inner.is_none() {
            return Span { open: None };
        }
        let depth = {
            let mut stack = self.stack.lock().expect("telemetry stack poisoned");
            stack.push(name);
            if self.stream() {
                let path = stack.path.clone();
                self.sink_event(&TraceEvent::SpanStart { path });
            }
            stack.depth()
        };
        Span {
            open: Some(OpenSpan {
                telemetry: self.clone(),
                depth,
                start: Instant::now(),
            }),
        }
    }

    fn stream(&self) -> bool {
        self.inner.as_ref().is_some_and(|inner| inner.stream)
    }

    fn sink_event(&self, event: &TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.sink.event(event);
        }
    }

    /// Advances a monotonic counter by `delta`.
    pub fn counter(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let total = {
            let mut state = inner.state.lock().expect("telemetry state poisoned");
            // `get_mut` first: the entry API would allocate the key `String`
            // on every call, not just the first one per name.
            let slot = match state.counters.get_mut(name) {
                Some(slot) => slot,
                None => state.counters.entry(name.to_string()).or_insert(0),
            };
            *slot += delta;
            *slot
        };
        if inner.stream {
            inner.sink.event(&TraceEvent::Counter {
                name: name.to_string(),
                delta,
                total,
            });
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        {
            let mut state = inner.state.lock().expect("telemetry state poisoned");
            let slot = match state.histograms.get_mut(name) {
                Some(slot) => slot,
                None => state.histograms.entry(name.to_string()).or_default(),
            };
            slot.record(value);
        }
        if inner.stream {
            inner.sink.event(&TraceEvent::Observe {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Emits a log message at `level`.
    pub fn log(&self, level: Level, message: impl AsRef<str>) {
        let Some(inner) = &self.inner else { return };
        if inner.stream {
            inner.sink.event(&TraceEvent::Log {
                level,
                message: message.as_ref().to_string(),
            });
        }
    }

    /// Emits an [`Level::Info`] log message.
    pub fn info(&self, message: impl AsRef<str>) {
        self.log(Level::Info, message);
    }

    /// Emits a [`Level::Warn`] log message.
    pub fn warn(&self, message: impl AsRef<str>) {
        self.log(Level::Warn, message);
    }

    /// Emits a [`Level::Debug`] log message.
    pub fn debug(&self, message: impl AsRef<str>) {
        self.log(Level::Debug, message);
    }

    /// Snapshot of everything aggregated so far.
    pub fn summary(&self) -> TelemetrySummary {
        let Some(inner) = &self.inner else {
            return TelemetrySummary::default();
        };
        let state = inner.state.lock().expect("telemetry state poisoned");
        TelemetrySummary {
            counters: state.counters.clone(),
            histograms: state.histograms.clone(),
            spans: state.spans.clone(),
        }
    }

    /// Flushes the sink's buffered output, if any.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }

    fn close_span(&self, depth: usize, start: Instant) {
        let Some(inner) = &self.inner else { return };
        let duration_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = {
            let mut stack = self.stack.lock().expect("telemetry stack poisoned");
            // Tolerate out-of-order guard drops: truncate to this span's depth.
            let Some(mark) = stack.seek(depth) else {
                return; // unbalanced close; nothing sensible to report
            };
            {
                let name = stack.leaf(mark);
                let mut state = inner.state.lock().expect("telemetry state poisoned");
                let span = match state.spans.get_mut(name) {
                    Some(span) => span,
                    None => state.spans.entry(name.to_string()).or_default(),
                };
                span.count += 1;
                span.total_ns += duration_ns;
            }
            let path = if inner.stream {
                Some(stack.path.clone())
            } else {
                None
            };
            stack.pop();
            path
        };
        if let Some(path) = path {
            inner.sink.event(&TraceEvent::SpanEnd { path, duration_ns });
        }
    }
}

/// Live part of a [`Span`] guard; absent entirely on disabled handles, so a
/// disabled span costs one branch and no allocation, clock read, or
/// refcount traffic.
struct OpenSpan {
    telemetry: Telemetry,
    depth: usize,
    start: Instant,
}

/// RAII guard for an open span; closes (and times) the span on drop.
pub struct Span {
    open: Option<OpenSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            open.telemetry.close_span(open.depth, open.start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let _span = t.span("run");
        t.counter("c", 5);
        t.observe("h", 1.0);
        t.info("ignored");
        assert_eq!(t.now_ns(), 0);
        assert!(t.summary().is_empty());
    }

    #[test]
    fn counters_accumulate_monotonically() {
        let t = Telemetry::collecting();
        t.counter("bytes", 10);
        t.counter("bytes", 32);
        t.counter("other", 1);
        let s = t.summary();
        assert_eq!(s.counter("bytes"), 42);
        assert_eq!(s.counter("other"), 1);
    }

    #[test]
    fn span_nesting_builds_slash_paths() {
        struct Capture(Mutex<Vec<TraceEvent>>);
        impl Sink for Capture {
            fn event(&self, event: &TraceEvent) {
                self.0.lock().unwrap().push(event.clone());
            }
        }
        let sink = Arc::new(Capture(Mutex::new(Vec::new())));
        struct Fwd(Arc<Capture>);
        impl Sink for Fwd {
            fn event(&self, event: &TraceEvent) {
                self.0.event(event);
            }
        }
        let t = Telemetry::with_sink(Box::new(Fwd(sink.clone())));
        {
            let _run = t.span("run");
            {
                let _task = t.span("task:0");
                let _round = t.span("round:1");
            }
            let _task2 = t.span("task:1");
        }
        let events = sink.0.lock().unwrap().clone();
        let paths: Vec<String> = events
            .iter()
            .map(|e| match e {
                TraceEvent::SpanStart { path } => format!("+{path}"),
                TraceEvent::SpanEnd { path, .. } => format!("-{path}"),
                _ => unreachable!("only span events emitted"),
            })
            .collect();
        assert_eq!(
            paths,
            vec![
                "+run",
                "+run/task:0",
                "+run/task:0/round:1",
                "-run/task:0/round:1",
                "-run/task:0",
                "+run/task:1",
                "-run/task:1",
                "-run",
            ]
        );
    }

    #[test]
    fn span_durations_are_monotone_with_nesting() {
        let t = Telemetry::collecting();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let s = t.summary();
        assert_eq!(s.spans["outer"].count, 1);
        assert_eq!(s.spans["inner"].count, 1);
        // The outer span was open for at least as long as the inner one.
        assert!(s.spans["outer"].total_ns >= s.spans["inner"].total_ns);
        assert!(s.spans["inner"].total_ns > 0);
    }

    #[test]
    fn summary_snapshot_is_independent_of_later_events() {
        let t = Telemetry::collecting();
        t.counter("c", 1);
        let snap = t.summary();
        t.counter("c", 1);
        assert_eq!(snap.counter("c"), 1);
        assert_eq!(t.summary().counter("c"), 2);
    }

    #[test]
    fn clones_share_one_collector() {
        let a = Telemetry::collecting();
        let b = a.clone();
        a.counter("shared", 1);
        b.counter("shared", 2);
        assert_eq!(a.summary().counter("shared"), 3);
    }

    #[test]
    fn current_path_tracks_open_spans() {
        let t = Telemetry::collecting();
        assert_eq!(t.current_path(), "");
        let _run = t.span("run");
        let _round = t.span("round:2");
        assert_eq!(t.current_path(), "run/round:2");
    }

    #[test]
    fn path_stack_reuses_one_buffer() {
        let mut stack = PathStack::from_path("run/task:0");
        assert_eq!(stack.path, "run/task:0");
        assert_eq!(stack.depth(), 2);
        stack.push("round:1");
        assert_eq!(stack.path, "run/task:0/round:1");
        let cap = stack.path.capacity();
        // Pops truncate in place; re-pushing a same-length segment must not
        // grow the buffer.
        stack.pop();
        stack.push("round:2");
        assert_eq!(stack.path, "run/task:0/round:2");
        assert_eq!(stack.path.capacity(), cap, "path buffer must be reused");
        let mark = stack.seek(3).unwrap();
        assert_eq!(stack.leaf(mark), "round:2");
        let mark = stack.seek(1).unwrap();
        assert_eq!(stack.leaf(mark), "run");
        assert_eq!(stack.path, "run");
    }

    #[test]
    fn scoped_handle_reparents_spans_under_parent_path() {
        struct Capture(Mutex<Vec<TraceEvent>>);
        impl Sink for Capture {
            fn event(&self, event: &TraceEvent) {
                self.0.lock().unwrap().push(event.clone());
            }
        }
        let sink = Arc::new(Capture(Mutex::new(Vec::new())));
        struct Fwd(Arc<Capture>);
        impl Sink for Fwd {
            fn event(&self, event: &TraceEvent) {
                self.0.event(event);
            }
        }
        let t = Telemetry::with_sink(Box::new(Fwd(sink.clone())));
        {
            let _run = t.span("run");
            let _round = t.span("round:0");
            let worker = t.scoped(&t.current_path());
            let _client = worker.span("client:3");
        }
        let events = sink.0.lock().unwrap().clone();
        let client_paths: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SpanStart { path } if path.contains("client") => Some(path.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(client_paths, vec!["run/round:0/client:3"]);
        // The worker's span close must not have disturbed the parent stack.
        assert_eq!(t.summary().spans["client:3"].count, 1);
    }

    #[test]
    fn scoped_handles_aggregate_concurrently_without_interleaving() {
        let t = Telemetry::collecting();
        let _run = t.span("run");
        let parent = t.current_path();
        std::thread::scope(|s| {
            for w in 0..4 {
                let worker = t.scoped(&parent);
                s.spawn(move || {
                    for _ in 0..8 {
                        let _span = worker.span(&format!("client:{w}"));
                        worker.counter("sessions", 1);
                    }
                });
            }
        });
        let summary = t.summary();
        assert_eq!(summary.counter("sessions"), 32);
        for w in 0..4 {
            assert_eq!(summary.spans[&format!("client:{w}")].count, 8);
        }
    }

    #[test]
    fn timeline_span_aggregates_under_kind_prefix() {
        let t = Telemetry::collecting();
        t.timeline_span(1, "client:3", 100, 50);
        t.timeline_span(2, "client:7", 120, 30);
        t.timeline_span(0, "fedavg", 200, 10);
        let s = t.summary();
        assert_eq!(s.spans["client"].count, 2);
        assert_eq!(s.spans["client"].total_ns, 80);
        assert_eq!(s.spans["fedavg"].count, 1);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let t = Telemetry::collecting();
        let a = t.now_ns();
        let b = t.now_ns();
        assert!(b >= a);
    }
}
