//! In-memory aggregation of the event stream, surfaced on run results.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Aggregate of one histogram's observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Default for HistogramSummary {
    fn default() -> Self {
        Self {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }
}

impl HistogramSummary {
    /// Folds one observation into the aggregate.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
    }

    /// Arithmetic mean of the observations, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregate of all closings of spans sharing one name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanSummary {
    /// Number of times a span with this name closed.
    pub count: u64,
    /// Total nanoseconds spent across all closings.
    pub total_ns: u64,
}

/// Aggregated view of everything the collector saw, keyed by name.
///
/// Maps are `BTreeMap` so serialized summaries are deterministic. Span
/// durations aggregate under the span *name* (e.g. all `round` spans
/// together), not the full path — path-level detail lives in the trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Final totals of every monotonic counter.
    pub counters: BTreeMap<String, u64>,
    /// Aggregates of every histogram.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Count and total duration per span name.
    pub spans: BTreeMap<String, SpanSummary>,
}

impl TelemetrySummary {
    /// True when nothing was recorded (e.g. telemetry was disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// Final total of a counter, or 0 if it never moved.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters whose name starts with `prefix`, in name order — e.g.
    /// `counters_with_prefix("wire.")` yields the per-message-kind byte
    /// counters the federated runner records.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(name, _)| name.starts_with(prefix))
            .map(|(name, total)| (name.as_str(), *total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = HistogramSummary::default();
        for v in [2.0, -1.0, 5.0, 2.0] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(HistogramSummary::default().mean(), 0.0);
    }

    #[test]
    fn prefix_query_returns_exactly_the_matching_counters() {
        let mut summary = TelemetrySummary::default();
        summary
            .counters
            .insert("wire.model_broadcast_bytes".into(), 64);
        summary
            .counters
            .insert("wire.prompt_upload_bytes".into(), 32);
        summary.counters.insert("traffic.up_bytes".into(), 96);
        summary.counters.insert("wirex".into(), 1);
        let wire: Vec<(&str, u64)> = summary.counters_with_prefix("wire.").collect();
        assert_eq!(
            wire,
            vec![
                ("wire.model_broadcast_bytes", 64),
                ("wire.prompt_upload_bytes", 32),
            ]
        );
        assert_eq!(summary.counters_with_prefix("absent.").count(), 0);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let mut summary = TelemetrySummary::default();
        summary.counters.insert("traffic.up_bytes".into(), 128);
        summary
            .histograms
            .entry("client.duration_s".into())
            .or_default()
            .record(0.5);
        summary.spans.insert(
            "round".into(),
            SpanSummary {
                count: 3,
                total_ns: 900,
            },
        );
        let json = serde_json::to_string(&summary).expect("serialize");
        let back: TelemetrySummary = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, summary);
        assert_eq!(back.counter("traffic.up_bytes"), 128);
        assert_eq!(back.counter("missing"), 0);
        assert!(!back.is_empty());
    }
}
