//! Per-worker timelines: allocation-light interval recording for the
//! runner's scoped thread pools.
//!
//! A [`Timeline`] is created once per pool dispatch ([`crate::Telemetry::timeline`]).
//! Each worker records `(label, start, end)` tick pairs into its own
//! [`Lane`] — a preallocated buffer with no locking and no per-event
//! allocation. Persistent pools keep one [`Lane::detached`] per slot alive
//! across dispatches and revive it with [`Timeline::rearm`] (clear events,
//! keep capacity); one-shot callers mint fresh lanes with
//! [`Timeline::lane`]. [`Timeline::merge`] then — on the driver thread, off
//! the hot path — computes per-worker busy/idle/steal accounting over the
//! lanes that actually ran items and streams every slice as a
//! [`crate::TraceEvent::TimelineSpan`].
//!
//! On a disabled collector every lane method is a branch on a bool: no clock
//! reads, no buffer, no events.

use std::time::Instant;

use crate::report::{PoolStats, WorkerStats};
use crate::Telemetry;

/// Upfront capacity of each lane's event buffer. Lanes grow past this only
/// on unusually long rounds (hundreds of items per worker), keeping the
/// steady-state hot path reallocation-free.
const LANE_CAPACITY: usize = 64;

/// One recorded interval on a worker's lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneEvent {
    /// Static label of the work kind, e.g. `"client"` or `"eval"`.
    pub kind: &'static str,
    /// Optional item id rendered after the kind (`client:7`); `None` renders
    /// the bare kind.
    pub id: Option<u64>,
    /// Nanoseconds from the collector epoch to the interval start.
    pub start_ns: u64,
    /// Nanoseconds from the collector epoch to the interval end.
    pub end_ns: u64,
}

/// A single worker's event buffer. Move it into the worker thread, call
/// [`Lane::tick`]/[`Lane::record`] around each work item, and return it via
/// the thread's join result for [`Timeline::merge`].
#[derive(Debug)]
pub struct Lane {
    enabled: bool,
    epoch: Option<Instant>,
    /// Track number this lane renders to: 0 is the driver, `1..=N` workers.
    track: u32,
    events: Vec<LaneEvent>,
}

impl Lane {
    /// A dormant lane: disabled, no epoch, no buffer. Persistent pools
    /// preallocate one per worker slot and bring it to life with
    /// [`Timeline::rearm`] at each dispatch, so the event buffer is
    /// allocated once and reused across rounds.
    pub fn detached() -> Self {
        Self {
            enabled: false,
            epoch: None,
            track: 0,
            events: Vec::new(),
        }
    }

    /// Current tick (nanoseconds since the collector epoch), or 0 when the
    /// lane is disabled. Pair with [`Lane::record`] around a work item.
    #[inline]
    pub fn tick(&self) -> u64 {
        match self.epoch {
            Some(epoch) if self.enabled => {
                u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            _ => 0,
        }
    }

    /// Records one completed interval that started at `start_ns` (a prior
    /// [`Lane::tick`]) and ends now. No-op when disabled — the end tick is
    /// never even read.
    #[inline]
    pub fn record(&mut self, kind: &'static str, id: Option<u64>, start_ns: u64) {
        if !self.enabled {
            return;
        }
        let end_ns = self.tick();
        self.events.push(LaneEvent {
            kind,
            id,
            start_ns,
            end_ns,
        });
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Factory for one pool dispatch's worker lanes, plus the merge step that
/// turns returned lanes into [`PoolStats`] and streamed trace slices.
#[derive(Debug)]
pub struct Timeline {
    telemetry: Telemetry,
    enabled: bool,
    epoch: Option<Instant>,
}

impl Timeline {
    pub(crate) fn new(telemetry: &Telemetry) -> Self {
        let epoch = telemetry.epoch();
        Self {
            telemetry: telemetry.clone(),
            enabled: epoch.is_some(),
            epoch,
        }
    }

    /// Whether lanes from this timeline record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A fresh lane for worker slot `slot` (0-based). Rendered as track
    /// `slot + 1`; track 0 is reserved for the driver thread's phase
    /// envelopes.
    pub fn lane(&self, slot: usize) -> Lane {
        Lane {
            enabled: self.enabled,
            epoch: self.epoch,
            track: u32::try_from(slot + 1).unwrap_or(u32::MAX),
            events: if self.enabled {
                Vec::with_capacity(LANE_CAPACITY)
            } else {
                Vec::new()
            },
        }
    }

    /// Re-arms a (possibly reused) lane for worker slot `slot` under this
    /// timeline: adopts this dispatch's enablement, epoch, and track, and
    /// clears prior events while keeping the buffer's capacity. This is the
    /// persistent-pool counterpart of [`Timeline::lane`] — same semantics,
    /// zero steady-state allocation.
    pub fn rearm(&self, lane: &mut Lane, slot: usize) {
        lane.enabled = self.enabled;
        lane.epoch = self.epoch;
        lane.track = u32::try_from(slot + 1).unwrap_or(u32::MAX);
        lane.events.clear();
        if self.enabled && lane.events.capacity() < LANE_CAPACITY {
            lane.events.reserve(LANE_CAPACITY - lane.events.capacity());
        }
    }

    /// Current tick on the shared clock (0 when disabled) — use for the
    /// pool's wall-clock envelope around dispatch and merge.
    pub fn tick(&self) -> u64 {
        match self.epoch {
            Some(epoch) => u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    /// Folds the returned worker lanes into per-worker accounting and
    /// streams every recorded slice as a [`crate::TraceEvent::TimelineSpan`].
    ///
    /// `wall_ns` is the pool's dispatch wall time (`tick()` delta around the
    /// dispatch/completion barrier). Lanes are borrowed, not consumed, so a
    /// persistent pool's lanes survive the merge and are reused next round.
    ///
    /// Workers that never won a single item off the shared counter are
    /// dropped entirely: their all-idle tracks are scheduling noise, not
    /// real workers (the old threads=4 table on a 2-core box reported two
    /// phantom 0%-busy tracks). Per *participating* worker: `busy` is the
    /// sum of recorded interval durations, `idle` is `wall − busy`, and
    /// `steals` counts items executed beyond the fair share
    /// `ceil(total_items / participating_workers)` — with the runner's
    /// shared-counter scheduling, that is exactly the load imbalance a
    /// worker absorbed from slower peers. Returns `None` when the timeline
    /// is disabled.
    pub fn merge(&self, lanes: &[&Lane], wall_ns: u64) -> Option<PoolStats> {
        if !self.enabled {
            return None;
        }
        let live: Vec<&Lane> = lanes
            .iter()
            .copied()
            .filter(|lane| !lane.events.is_empty())
            .collect();
        let workers = live.len();
        let total_items: usize = live.iter().map(|lane| lane.events.len()).sum();
        let fair_share = if workers == 0 {
            0
        } else {
            total_items.div_ceil(workers)
        };
        let mut per_worker = Vec::with_capacity(workers);
        let mut name = String::new();
        for lane in &live {
            let mut busy_ns = 0u64;
            for event in &lane.events {
                let dur_ns = event.end_ns.saturating_sub(event.start_ns);
                busy_ns += dur_ns;
                name.clear();
                name.push_str(event.kind);
                if let Some(id) = event.id {
                    name.push(':');
                    name.push_str(itoa(id).as_str());
                }
                self.telemetry
                    .timeline_span(lane.track, &name, event.start_ns, dur_ns);
            }
            let items = lane.events.len() as u64;
            per_worker.push(WorkerStats {
                track: lane.track,
                busy_ns,
                idle_ns: wall_ns.saturating_sub(busy_ns),
                items,
                steals: items.saturating_sub(fair_share as u64),
            });
        }
        Some(PoolStats {
            wall_ns,
            workers: per_worker,
        })
    }
}

/// Minimal integer formatting into a stack buffer — avoids `format!`
/// allocation in the merge loop (which can run thousands of times per
/// round for eval chunks).
fn itoa(mut v: u64) -> ItoaBuf {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    ItoaBuf { buf, start: i }
}

struct ItoaBuf {
    buf: [u8; 20],
    start: usize,
}

impl ItoaBuf {
    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[self.start..]).expect("digits are ascii")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timeline_records_nothing() {
        let t = Telemetry::disabled();
        let timeline = t.timeline();
        assert!(!timeline.is_enabled());
        let mut lane = timeline.lane(0);
        let start = lane.tick();
        assert_eq!(start, 0);
        lane.record("client", Some(3), start);
        assert!(lane.is_empty());
        assert_eq!(
            lane.events.capacity(),
            0,
            "disabled lanes must not allocate"
        );
        assert!(timeline.merge(&[&lane], 0).is_none());
    }

    #[test]
    fn rearm_revives_a_detached_lane_and_keeps_capacity() {
        let t = Telemetry::collecting();
        let timeline = t.timeline();
        let mut lane = Lane::detached();
        assert_eq!(lane.tick(), 0, "detached lanes are dormant");
        timeline.rearm(&mut lane, 2);
        assert_eq!(lane.track, 3);
        assert!(lane.events.capacity() >= LANE_CAPACITY);
        let s = lane.tick();
        lane.record("eval", Some(1), s);
        assert_eq!(lane.len(), 1);
        let cap = lane.events.capacity();
        timeline.rearm(&mut lane, 0);
        assert!(lane.is_empty(), "rearm clears prior events");
        assert_eq!(lane.track, 1);
        assert_eq!(lane.events.capacity(), cap, "rearm keeps the buffer");
    }

    #[test]
    fn merge_drops_workers_that_never_ran_an_item() {
        let t = Telemetry::collecting();
        let timeline = t.timeline();
        // Three slots, but only two ever win items: the idle slot must not
        // appear in the stats, and fair share is computed over the live pair
        // (4 items / 2 workers = 2 each → one steal for the 3-item worker).
        let mut a = timeline.lane(0);
        let mut b = timeline.lane(1);
        let idle = timeline.lane(2);
        for i in 0..3 {
            let s = a.tick();
            a.record("eval", Some(i), s);
        }
        let s = b.tick();
        b.record("eval", Some(9), s);
        let stats = timeline.merge(&[&a, &b, &idle], 1_000).expect("enabled");
        assert_eq!(stats.workers.len(), 2, "idle slot reported as a worker");
        assert!(stats.workers.iter().all(|w| w.items > 0));
        assert_eq!(stats.workers[0].steals, 1);
        assert_eq!(stats.workers[1].steals, 0);
    }

    #[test]
    fn lanes_record_intervals_and_merge_computes_busy_idle() {
        let t = Telemetry::collecting();
        let timeline = t.timeline();
        let mut lane = timeline.lane(0);
        let start = lane.tick();
        std::thread::sleep(std::time::Duration::from_millis(1));
        lane.record("client", Some(7), start);
        assert_eq!(lane.len(), 1);
        let busy = lane.events[0].end_ns - lane.events[0].start_ns;
        assert!(busy >= 1_000_000, "recorded at least the sleep: {busy}");
        let wall = busy + 500;
        let stats = timeline.merge(&[&lane], wall).expect("enabled");
        assert_eq!(stats.workers.len(), 1);
        let w = &stats.workers[0];
        assert_eq!(w.track, 1);
        assert_eq!(w.items, 1);
        assert_eq!(w.busy_ns, busy);
        assert_eq!(w.idle_ns, 500);
        assert_eq!(w.steals, 0);
        // The merged slice reached the aggregates under its kind.
        assert_eq!(t.summary().spans["client"].count, 1);
    }

    #[test]
    fn steals_count_items_beyond_fair_share() {
        let t = Telemetry::collecting();
        let timeline = t.timeline();
        // Two workers, 6 items split 5/1: fair share is 3, so worker 0
        // absorbed 2 items of imbalance.
        let mut a = timeline.lane(0);
        let mut b = timeline.lane(1);
        for i in 0..5 {
            let s = a.tick();
            a.record("eval", Some(i), s);
        }
        let s = b.tick();
        b.record("eval", Some(9), s);
        let stats = timeline.merge(&[&a, &b], 1_000).expect("enabled");
        assert_eq!(stats.workers[0].steals, 2);
        assert_eq!(stats.workers[1].steals, 0);
        assert_eq!(stats.total_items(), 6);
    }

    #[test]
    fn lane_tracks_are_one_based() {
        let t = Telemetry::collecting();
        let timeline = t.timeline();
        assert_eq!(timeline.lane(0).track, 1);
        assert_eq!(timeline.lane(3).track, 4);
    }

    #[test]
    fn itoa_formats_decimal() {
        assert_eq!(itoa(0).as_str(), "0");
        assert_eq!(itoa(42).as_str(), "42");
        assert_eq!(itoa(u64::MAX).as_str(), "18446744073709551615");
    }
}
