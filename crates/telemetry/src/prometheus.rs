//! Prometheus-style text exposition exporter.
//!
//! Folds the event stream into metric families and writes a snapshot in the
//! text exposition format on every [`Sink::flush`]:
//!
//! - counters → `refil_<name>_total` (counter),
//! - observations → `refil_<name>_{count,sum,min,max}` (gauges),
//! - span closes and timeline slices → `refil_span_seconds_{count,sum}`
//!   with a `{name="..."}` label.
//!
//! Names are sanitised to `[a-z0-9_]`; numeric id suffixes (`client:7`) are
//! stripped to the kind (`client`) so label cardinality stays bounded.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::event::TraceEvent;
use crate::sink::Sink;
use crate::summary::HistogramSummary;

#[derive(Default)]
struct Families {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
    /// Per span/slice kind: (count, total seconds).
    spans: BTreeMap<String, (u64, f64)>,
}

/// Buffering [`Sink`] writing a Prometheus text exposition snapshot to a
/// file on every [`Sink::flush`].
pub struct PrometheusSink {
    path: PathBuf,
    families: Mutex<Families>,
}

impl PrometheusSink {
    /// Creates the sink; the file at `path` is written on flush.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        File::create(&path)?;
        Ok(Self {
            path,
            families: Mutex::new(Families::default()),
        })
    }

    fn write(&self, fam: &Families) -> std::io::Result<()> {
        let file = File::create(&self.path)?;
        let mut w = BufWriter::new(file);
        for (name, total) in &fam.counters {
            let metric = format!("refil_{}_total", sanitize(name));
            writeln!(w, "# TYPE {metric} counter")?;
            writeln!(w, "{metric} {total}")?;
        }
        for (name, h) in &fam.histograms {
            let base = format!("refil_{}", sanitize(name));
            writeln!(w, "# TYPE {base}_count gauge")?;
            writeln!(w, "{base}_count {}", h.count)?;
            writeln!(w, "{base}_sum {}", h.sum)?;
            if h.count > 0 {
                writeln!(w, "{base}_min {}", h.min)?;
                writeln!(w, "{base}_max {}", h.max)?;
            }
        }
        if !fam.spans.is_empty() {
            writeln!(w, "# TYPE refil_span_seconds_count gauge")?;
            writeln!(w, "# TYPE refil_span_seconds_sum gauge")?;
            for (name, (count, secs)) in &fam.spans {
                let label = sanitize(name);
                writeln!(w, "refil_span_seconds_count{{name=\"{label}\"}} {count}")?;
                writeln!(w, "refil_span_seconds_sum{{name=\"{label}\"}} {secs}")?;
            }
        }
        w.flush()
    }
}

/// Lowercases and maps everything outside `[a-z0-9_]` to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| match c.to_ascii_lowercase() {
            c @ ('a'..='z' | '0'..='9' | '_') => c,
            _ => '_',
        })
        .collect()
}

/// `run/task:0/client:7` → `client`; `fedavg` → `fedavg`. Takes the last
/// path segment and strips a trailing `:<digits>` id so per-client and
/// per-chunk slices fold into one labelled series.
fn span_kind(path: &str) -> &str {
    let leaf = path.rsplit('/').next().unwrap_or(path);
    match leaf.rsplit_once(':') {
        Some((kind, id)) if !id.is_empty() && id.bytes().all(|b| b.is_ascii_digit()) => kind,
        _ => leaf,
    }
}

impl Sink for PrometheusSink {
    fn event(&self, event: &TraceEvent) {
        let mut fam = self.families.lock().expect("prometheus buffer poisoned");
        match event {
            TraceEvent::Counter { name, delta, .. } => {
                *fam.counters.entry(name.clone()).or_insert(0) += delta;
            }
            TraceEvent::Observe { name, value } => {
                fam.histograms
                    .entry(name.clone())
                    .or_default()
                    .record(*value);
            }
            TraceEvent::SpanEnd { path, duration_ns } => {
                let slot = fam
                    .spans
                    .entry(span_kind(path).to_string())
                    .or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += *duration_ns as f64 / 1e9;
            }
            TraceEvent::TimelineSpan { name, dur_ns, .. } => {
                let slot = fam
                    .spans
                    .entry(span_kind(name).to_string())
                    .or_insert((0, 0.0));
                slot.0 += 1;
                slot.1 += *dur_ns as f64 / 1e9;
            }
            TraceEvent::SpanStart { .. } | TraceEvent::Log { .. } => {}
        }
    }

    fn flush(&self) {
        let fam = self.families.lock().expect("prometheus buffer poisoned");
        let _ = self.write(&fam);
    }
}

impl Drop for PrometheusSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Level;

    #[test]
    fn kind_extraction_strips_path_and_numeric_id() {
        assert_eq!(span_kind("run/task:0/client:7"), "client");
        assert_eq!(span_kind("fedavg"), "fedavg");
        assert_eq!(span_kind("client:x"), "client:x");
        assert_eq!(span_kind("round:12"), "round");
    }

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(
            sanitize("wire.model_broadcast_bytes"),
            "wire_model_broadcast_bytes"
        );
        assert_eq!(sanitize("Client:7"), "client_7");
    }

    #[test]
    fn exposition_snapshot_contains_all_families() {
        let path = std::env::temp_dir()
            .join("refil-telemetry-test")
            .join(format!("prom-{}.txt", std::process::id()));
        let sink = PrometheusSink::create(&path).expect("create");
        sink.event(&TraceEvent::Counter {
            name: "traffic.up_bytes".into(),
            delta: 64,
            total: 64,
        });
        sink.event(&TraceEvent::Counter {
            name: "traffic.up_bytes".into(),
            delta: 36,
            total: 100,
        });
        sink.event(&TraceEvent::Observe {
            name: "client.duration_s".into(),
            value: 0.5,
        });
        sink.event(&TraceEvent::SpanEnd {
            path: "run/round:1".into(),
            duration_ns: 2_000_000_000,
        });
        sink.event(&TraceEvent::TimelineSpan {
            track: 1,
            name: "client:3".into(),
            start_ns: 0,
            dur_ns: 1_000_000_000,
        });
        sink.event(&TraceEvent::Log {
            level: Level::Info,
            message: "ignored".into(),
        });
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("refil_traffic_up_bytes_total 100"));
        assert!(text.contains("refil_client_duration_s_count 1"));
        assert!(text.contains("refil_span_seconds_count{name=\"round\"} 1"));
        assert!(text.contains("refil_span_seconds_sum{name=\"client\"} 1"));
        assert!(!text.contains("ignored"));
        std::fs::remove_file(&path).ok();
    }
}
