//! Chrome trace-event exporter: renders the event stream as a JSON file
//! loadable in Perfetto or `chrome://tracing`.
//!
//! Rendering rules:
//! - [`TraceEvent::TimelineSpan`] → one `"X"` (complete) event on the slice's
//!   track (`tid`), so each worker appears as its own named thread row.
//!   Slices carry exact start/end ticks from one monotonic epoch, so strict
//!   nesting per track holds by construction.
//! - [`TraceEvent::Counter`] → a `"C"` counter sample at arrival time.
//! - [`TraceEvent::Log`] → an `"i"` instant event on track 0.
//! - `SpanStart`/`SpanEnd`/`Observe` are ignored: span paths already
//!   aggregate in the summary and would double-draw the timeline slices.
//!
//! Timestamps are microseconds as `f64` (the format's native unit); the
//! ns→µs division is monotone, so interval ordering survives conversion.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::TraceEvent;
use crate::sink::Sink;

/// One rendered trace-event row, buffered until flush.
enum Row {
    Complete {
        name: String,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
    },
    Counter {
        name: String,
        ts_us: f64,
        total: u64,
    },
    Instant {
        name: String,
        ts_us: f64,
    },
}

/// Buffering [`Sink`] that writes a complete Chrome trace JSON document
/// (`{"traceEvents": [...]}`) to a file on every [`Sink::flush`].
pub struct ChromeTraceSink {
    path: PathBuf,
    epoch: Instant,
    rows: Mutex<Vec<Row>>,
}

impl ChromeTraceSink {
    /// Creates the sink; the file at `path` is written on flush.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // Fail now (not at flush) if the location is unwritable.
        File::create(&path)?;
        Ok(Self {
            path,
            epoch: Instant::now(),
            rows: Mutex::new(Vec::new()),
        })
    }

    fn arrival_us(&self) -> f64 {
        self.epoch.elapsed().as_nanos() as f64 / 1_000.0
    }

    fn write(&self, rows: &[Row]) -> std::io::Result<()> {
        let file = File::create(&self.path)?;
        let mut w = BufWriter::new(file);
        write!(w, "{{\"traceEvents\":[")?;
        let mut first = true;
        let mut tracks: Vec<u32> = rows
            .iter()
            .filter_map(|row| match row {
                Row::Complete { tid, .. } => Some(*tid),
                _ => None,
            })
            .collect();
        tracks.sort_unstable();
        tracks.dedup();
        for tid in tracks {
            let label = if tid == 0 {
                "driver".to_string()
            } else {
                format!("worker-{}", tid - 1)
            };
            sep(&mut w, &mut first)?;
            write!(
                w,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json_str(&label)
            )?;
        }
        for row in rows {
            sep(&mut w, &mut first)?;
            match row {
                Row::Complete {
                    name,
                    tid,
                    ts_us,
                    dur_us,
                } => write!(
                    w,
                    "{{\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                     \"ts\":{ts_us},\"dur\":{dur_us}}}",
                    json_str(name)
                )?,
                Row::Counter { name, ts_us, total } => write!(
                    w,
                    "{{\"name\":{},\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{ts_us},\
                     \"args\":{{\"total\":{total}}}}}",
                    json_str(name)
                )?,
                Row::Instant { name, ts_us } => write!(
                    w,
                    "{{\"name\":{},\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":{ts_us},\
                     \"s\":\"t\"}}",
                    json_str(name)
                )?,
            }
        }
        write!(w, "]}}")?;
        w.flush()
    }
}

fn sep(w: &mut impl Write, first: &mut bool) -> std::io::Result<()> {
    if *first {
        *first = false;
        Ok(())
    } else {
        write!(w, ",")
    }
}

fn json_str(s: &str) -> String {
    serde_json::to_string(s).expect("string serialization is infallible")
}

impl Sink for ChromeTraceSink {
    fn event(&self, event: &TraceEvent) {
        let row = match event {
            TraceEvent::TimelineSpan {
                track,
                name,
                start_ns,
                dur_ns,
            } => Row::Complete {
                name: name.clone(),
                tid: *track,
                ts_us: *start_ns as f64 / 1_000.0,
                dur_us: *dur_ns as f64 / 1_000.0,
            },
            TraceEvent::Counter { name, total, .. } => Row::Counter {
                name: name.clone(),
                ts_us: self.arrival_us(),
                total: *total,
            },
            TraceEvent::Log { message, .. } => Row::Instant {
                name: message.clone(),
                ts_us: self.arrival_us(),
            },
            TraceEvent::SpanStart { .. }
            | TraceEvent::SpanEnd { .. }
            | TraceEvent::Observe { .. } => return,
        };
        self.rows
            .lock()
            .expect("chrome trace buffer poisoned")
            .push(row);
    }

    fn flush(&self) {
        let rows = self.rows.lock().expect("chrome trace buffer poisoned");
        let _ = self.write(&rows);
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir()
            .join("refil-telemetry-test")
            .join(format!("{name}-{}.json", std::process::id()))
    }

    fn ph(e: &Value) -> &str {
        e.get("ph").and_then(Value::as_str).unwrap_or("")
    }

    #[test]
    fn chrome_trace_is_valid_json_with_worker_tracks() {
        let path = tmp("chrome");
        let sink = ChromeTraceSink::create(&path).expect("create");
        sink.event(&TraceEvent::TimelineSpan {
            track: 0,
            name: "round:0".into(),
            start_ns: 0,
            dur_ns: 10_000,
        });
        sink.event(&TraceEvent::TimelineSpan {
            track: 1,
            name: "client:3".into(),
            start_ns: 1_000,
            dur_ns: 4_000,
        });
        sink.event(&TraceEvent::Counter {
            name: "traffic.up_bytes".into(),
            delta: 8,
            total: 8,
        });
        sink.event(&TraceEvent::Log {
            level: crate::Level::Info,
            message: "task 0 done".into(),
        });
        // Ignored kinds must not appear.
        sink.event(&TraceEvent::SpanStart { path: "run".into() });
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read");
        let doc = serde_json::parse_value(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        let metas: Vec<&str> = events
            .iter()
            .filter(|e| ph(e) == "M")
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(metas, vec!["driver", "worker-0"]);
        let slices: Vec<&Value> = events.iter().filter(|e| ph(e) == "X").collect();
        assert_eq!(slices.len(), 2);
        assert_eq!(
            slices[1].get("name").and_then(Value::as_str),
            Some("client:3")
        );
        assert_eq!(slices[1].get("tid").and_then(Value::as_u64), Some(1));
        assert_eq!(slices[1].get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(slices[1].get("dur").and_then(Value::as_f64), Some(4.0));
        assert_eq!(events.iter().filter(|e| ph(e) == "C").count(), 1);
        assert_eq!(events.iter().filter(|e| ph(e) == "i").count(), 1);
        assert!(events.iter().all(|e| ph(e) != "B" && ph(e) != "E"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_rewrites_the_whole_document() {
        let path = tmp("chrome-reflush");
        let sink = ChromeTraceSink::create(&path).expect("create");
        sink.event(&TraceEvent::TimelineSpan {
            track: 1,
            name: "a".into(),
            start_ns: 0,
            dur_ns: 1,
        });
        sink.flush();
        sink.event(&TraceEvent::TimelineSpan {
            track: 1,
            name: "b".into(),
            start_ns: 2,
            dur_ns: 1,
        });
        sink.flush();
        let doc =
            serde_json::parse_value(&std::fs::read_to_string(&path).expect("read")).expect("json");
        let slices = doc
            .get("traceEvents")
            .and_then(Value::as_seq)
            .unwrap()
            .iter()
            .filter(|e| ph(e) == "X")
            .count();
        assert_eq!(slices, 2, "second flush must contain both events");
        std::fs::remove_file(&path).ok();
    }
}
