//! Box-plot statistics (Figure 4's per-domain accuracy distributions).

use serde::{Deserialize, Serialize};

/// Five-number summary plus outliers (1.5 IQR whisker convention).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Lower whisker (smallest non-outlier).
    pub whisker_lo: f32,
    /// First quartile.
    pub q1: f32,
    /// Median.
    pub median: f32,
    /// Third quartile.
    pub q3: f32,
    /// Upper whisker (largest non-outlier).
    pub whisker_hi: f32,
    /// Points beyond the whiskers.
    pub outliers: Vec<f32>,
}

/// Linear-interpolation quantile of a sorted slice.
fn quantile(sorted: &[f32], q: f32) -> f32 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Computes box-plot statistics for `values`.
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
pub fn box_stats(values: &[f32]) -> BoxStats {
    assert!(!values.is_empty(), "box stats of empty data");
    let mut sorted: Vec<f32> = values.to_vec();
    assert!(sorted.iter().all(|v| !v.is_nan()), "NaN in box stats input");
    sorted.sort_by(f32::total_cmp);
    let q1 = quantile(&sorted, 0.25);
    let median = quantile(&sorted, 0.5);
    let q3 = quantile(&sorted, 0.75);
    let iqr = q3 - q1;
    let lo_fence = q1 - 1.5 * iqr;
    let hi_fence = q3 + 1.5 * iqr;
    let whisker_lo = sorted
        .iter()
        .copied()
        .find(|&v| v >= lo_fence)
        .unwrap_or(sorted[0]);
    let whisker_hi = sorted
        .iter()
        .rev()
        .copied()
        .find(|&v| v <= hi_fence)
        .unwrap_or(*sorted.last().expect("non-empty"));
    let outliers = sorted
        .iter()
        .copied()
        .filter(|&v| v < lo_fence || v > hi_fence)
        .collect();
    BoxStats {
        whisker_lo,
        q1,
        median,
        q3,
        whisker_hi,
        outliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_distribution() {
        let s = box_stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert!(s.outliers.is_empty());
        assert_eq!(s.whisker_lo, 1.0);
        assert_eq!(s.whisker_hi, 5.0);
    }

    #[test]
    fn detects_outlier() {
        let s = box_stats(&[10.0, 11.0, 12.0, 11.5, 10.5, 50.0]);
        assert_eq!(s.outliers, vec![50.0]);
        assert!(s.whisker_hi <= 12.0);
    }

    #[test]
    fn single_value() {
        let s = box_stats(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.whisker_hi, 7.0);
    }

    #[test]
    fn quartiles_bracket_median() {
        let vals: Vec<f32> = (0..100).map(|i| (i as f32).sin() * 10.0).collect();
        let s = box_stats(&vals);
        assert!(s.q1 <= s.median && s.median <= s.q3);
        assert!(s.whisker_lo <= s.q1 && s.q3 <= s.whisker_hi);
    }
}
