//! Exact (O(n^2)) t-SNE for the Figure 5/6 decision-boundary visualizations.
//!
//! van der Maaten & Hinton (2008): Gaussian input affinities with per-point
//! perplexity calibration, Student-t output affinities, gradient descent with
//! momentum and early exaggeration. Exact pairwise computation is fine at the
//! few-hundred-point scale of the paper's figures.

use rand::rngs::StdRng;
use rand::SeedableRng;

use refil_nn::gaussian;

/// t-SNE hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbour count).
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Early-exaggeration factor applied for the first quarter of iterations.
    pub exaggeration: f32,
    /// Seed for the random initialization.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 20.0,
            iterations: 300,
            learning_rate: 100.0,
            exaggeration: 4.0,
            seed: 0,
        }
    }
}

/// Embeds `points` into 2-D. Returns one `[x, y]` pair per input point.
///
/// # Panics
///
/// Panics if points have inconsistent dimensionality.
pub fn tsne(points: &[Vec<f32>], cfg: &TsneConfig) -> Vec<[f32; 2]> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![[0.0, 0.0]];
    }
    let dim = points[0].len();
    for p in points {
        assert_eq!(p.len(), dim, "inconsistent point dims");
    }

    // Pairwise squared distances.
    let mut d2 = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist: f32 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    // Per-point sigma via binary search on perplexity.
    let target_entropy = cfg.perplexity.max(2.0).ln();
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        let row = &d2[i * n..(i + 1) * n];
        let (mut beta, mut beta_lo, mut beta_hi) = (1.0f32, 0.0f32, f32::INFINITY);
        for _ in 0..50 {
            let mut sum = 0.0f32;
            let mut sum_dp = 0.0f32;
            for (j, &dj) in row.iter().enumerate() {
                if j == i {
                    continue;
                }
                let pij = (-beta * dj).exp();
                sum += pij;
                sum_dp += beta * dj * pij;
            }
            let entropy = if sum > 0.0 {
                sum.ln() + sum_dp / sum
            } else {
                0.0
            };
            if (entropy - target_entropy).abs() < 1e-4 {
                break;
            }
            if entropy > target_entropy {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        let mut sum = 0.0f32;
        for (j, &dj) in row.iter().enumerate() {
            if j != i {
                let v = (-beta * dj).exp();
                p[i * n + j] = v;
                sum += v;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize.
    let mut psym = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            psym[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }

    // Gradient descent on 2-D embedding.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut y: Vec<[f32; 2]> = (0..n)
        .map(|_| [gaussian(&mut rng) * 1e-2, gaussian(&mut rng) * 1e-2])
        .collect();
    let mut vel = vec![[0.0f32; 2]; n];
    let exag_iters = cfg.iterations / 4;
    for it in 0..cfg.iterations {
        let exag = if it < exag_iters {
            cfg.exaggeration
        } else {
            1.0
        };
        // Student-t affinities.
        let mut num = vec![0.0f32; n * n];
        let mut qsum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let v = 1.0 / (1.0 + dx * dx + dy * dy);
                num[i * n + j] = v;
                num[j * n + i] = v;
                qsum += 2.0 * v;
            }
        }
        let qsum = qsum.max(1e-12);
        let momentum = if it < exag_iters { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = [0.0f32; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = (num[i * n + j] / qsum).max(1e-12);
                let mult = (exag * psym[i * n + j] - q) * num[i * n + j];
                grad[0] += 4.0 * mult * (y[i][0] - y[j][0]);
                grad[1] += 4.0 * mult * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                vel[i][k] = momentum * vel[i][k] - cfg.learning_rate * grad[k];
            }
        }
        for i in 0..n {
            y[i][0] += vel[i][0];
            y[i][1] += vel[i][1];
        }
    }
    y
}

/// Mean intra-cluster vs. inter-cluster distance ratio of an embedding — a
/// scalar check that t-SNE separated labelled groups (used in tests and the
/// Figure 5 bench's summary line).
pub fn separation_score(embedding: &[[f32; 2]], labels: &[usize]) -> f32 {
    assert_eq!(embedding.len(), labels.len());
    let mut intra = 0.0f32;
    let mut intra_n = 0usize;
    let mut inter = 0.0f32;
    let mut inter_n = 0usize;
    for i in 0..embedding.len() {
        for j in (i + 1)..embedding.len() {
            let dx = embedding[i][0] - embedding[j][0];
            let dy = embedding[i][1] - embedding[j][1];
            let d = (dx * dx + dy * dy).sqrt();
            if labels[i] == labels[j] {
                intra += d;
                intra_n += 1;
            } else {
                inter += d;
                inter_n += 1;
            }
        }
    }
    if intra_n == 0 || inter_n == 0 || intra == 0.0 {
        return f32::INFINITY;
    }
    (inter / inter_n as f32) / (intra / intra_n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn trivial_inputs() {
        assert!(tsne(&[], &TsneConfig::default()).is_empty());
        assert_eq!(
            tsne(&[vec![1.0, 2.0]], &TsneConfig::default()),
            vec![[0.0, 0.0]]
        );
    }

    #[test]
    fn separates_two_gaussian_blobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for k in 0..2 {
            for _ in 0..30 {
                let center = if k == 0 { 5.0 } else { -5.0 };
                points.push(vec![
                    center + gaussian(&mut rng) * 0.5,
                    center + gaussian(&mut rng) * 0.5,
                    gaussian(&mut rng) * 0.5,
                ]);
                labels.push(k);
            }
        }
        let cfg = TsneConfig {
            iterations: 200,
            perplexity: 10.0,
            ..TsneConfig::default()
        };
        let emb = tsne(&points, &cfg);
        let score = separation_score(&emb, &labels);
        assert!(score > 2.0, "blobs not separated: score {score}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(5);
        let points: Vec<Vec<f32>> = (0..20)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let cfg = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        assert_eq!(tsne(&points, &cfg), tsne(&points, &cfg));
    }
}
