//! Markdown / CSV table rendering for the benchmark harness.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use refil_eval::Table;
///
/// let mut t = Table::new(vec!["Method".into(), "Avg".into()]);
/// t.row(vec!["RefFiL".into(), "86.94".into()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| RefFiL"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown with aligned columns.
    pub fn to_markdown(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {c:<w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        let _ = cols;
        out
    }

    /// Renders CSV (no quoting — cells are expected to be plain numbers/names).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an accuracy as the paper does (two decimals).
pub fn pct(x: f32) -> String {
    format!("{x:.2}")
}

/// Formats a signed delta with two decimals.
pub fn signed(x: f32) -> String {
    format!("{x:+.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_rows() {
        let mut t = Table::new(vec!["A".into(), "B".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("|--") || lines[1].starts_with("|-"));
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new(vec!["A".into(), "B".into()]);
        t.row(vec!["x".into(), "y".into()]);
        assert_eq!(t.to_csv(), "A,B\nx,y\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        Table::new(vec!["A".into()]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(86.938), "86.94");
        assert_eq!(signed(9.55), "+9.55");
        assert_eq!(signed(-1.2), "-1.20");
    }
}
