//! Continual-learning transfer metrics and per-class diagnostics.
//!
//! Beyond the paper's Avg/Last, the standard continual-learning analysis
//! quantifies *backward transfer* (how much learning later tasks changed
//! earlier-task accuracy) and per-class confusion — both used by the
//! extension benches.

use serde::{Deserialize, Serialize};

/// Backward transfer (Lopez-Paz & Ranzato, 2017): mean over earlier domains
/// of `final accuracy - accuracy right after learning`. Negative values are
/// forgetting; positive values mean later tasks *helped* earlier ones.
///
/// # Panics
///
/// Panics if the matrix is empty or not lower-triangular.
pub fn backward_transfer(domain_acc: &[Vec<f32>]) -> f32 {
    assert!(!domain_acc.is_empty(), "empty accuracy matrix");
    let t_final = domain_acc.len() - 1;
    if t_final == 0 {
        return 0.0;
    }
    let final_row = &domain_acc[t_final];
    let mut sum = 0.0f32;
    for d in 0..t_final {
        assert!(domain_acc[d].len() == d + 1, "matrix not lower-triangular");
        sum += final_row[d] - domain_acc[d][d];
    }
    sum / t_final as f32
}

/// A `classes x classes` confusion matrix (rows = true class, columns =
/// predicted class).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes, "true class {truth} out of range");
        assert!(
            predicted < self.classes,
            "predicted class {predicted} out of range"
        );
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Records a batch of observations.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any index is out of range.
    pub fn record_batch(&mut self, truths: &[usize], predictions: &[usize]) {
        assert_eq!(truths.len(), predictions.len(), "length mismatch");
        for (&t, &p) in truths.iter().zip(predictions) {
            self.record(t, p);
        }
    }

    /// The raw count at `(truth, predicted)`.
    pub fn count(&self, truth: usize, predicted: usize) -> u32 {
        self.counts[truth * self.classes + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Overall accuracy in percent (0 for an empty matrix).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u32 = (0..self.classes).map(|k| self.count(k, k)).sum();
        100.0 * correct as f32 / total as f32
    }

    /// Per-class recall in percent (`None` for classes never observed).
    pub fn per_class_recall(&self) -> Vec<Option<f32>> {
        (0..self.classes)
            .map(|k| {
                let row: u32 = (0..self.classes).map(|j| self.count(k, j)).sum();
                if row == 0 {
                    None
                } else {
                    Some(100.0 * self.count(k, k) as f32 / row as f32)
                }
            })
            .collect()
    }

    /// The most confused off-diagonal pair `(truth, predicted, count)`, if
    /// any misclassification was recorded.
    pub fn worst_confusion(&self) -> Option<(usize, usize, u32)> {
        let mut best: Option<(usize, usize, u32)> = None;
        for t in 0..self.classes {
            for p in 0..self.classes {
                if t == p {
                    continue;
                }
                let c = self.count(t, p);
                if c > 0 && best.is_none_or(|(_, _, bc)| c > bc) {
                    best = Some((t, p, c));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_transfer_measures_change() {
        // Domain 0 learned at 90, ends at 60: BWT for it is -30.
        // Domain 1 learned at 80, ends at 85: +5. Mean = -12.5.
        let m = vec![vec![90.0], vec![70.0, 80.0], vec![60.0, 85.0, 95.0]];
        assert!((backward_transfer(&m) + 12.5).abs() < 1e-5);
    }

    #[test]
    fn backward_transfer_single_task_is_zero() {
        assert_eq!(backward_transfer(&[vec![75.0]]), 0.0);
    }

    #[test]
    fn confusion_accuracy_and_recall() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record_batch(&[0, 0, 1, 1, 2], &[0, 1, 1, 1, 0]);
        assert_eq!(cm.total(), 5);
        assert!((cm.accuracy() - 60.0).abs() < 1e-5);
        let recall = cm.per_class_recall();
        assert_eq!(recall[0], Some(50.0));
        assert_eq!(recall[1], Some(100.0));
        assert_eq!(recall[2], Some(0.0));
    }

    #[test]
    fn unobserved_class_has_no_recall() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        assert_eq!(cm.per_class_recall()[1], None);
    }

    #[test]
    fn worst_confusion_finds_biggest_error() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record_batch(&[0, 0, 0, 1], &[2, 2, 1, 0]);
        assert_eq!(cm.worst_confusion(), Some((0, 2, 2)));
        let empty = ConfusionMatrix::new(2);
        assert_eq!(empty.worst_confusion(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_checks_bounds() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
