//! Evaluation metrics (§4.1 of the paper).
//!
//! * **Avg** — iCaRL's average incremental accuracy: the mean of the step
//!   accuracies `A_t` (accuracy over all domains seen so far, after task `t`);
//! * **Last** — the step accuracy after the final task;
//! * **Forgetting** — mean over domains of the drop from each domain's best
//!   step accuracy to its final accuracy (standard continual-learning
//!   forgetting measure, used for the analysis benches).

use serde::{Deserialize, Serialize};

/// Per-method summary scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scores {
    /// Average incremental accuracy (%).
    pub avg: f32,
    /// Final-step accuracy (%).
    pub last: f32,
    /// Forgetting measure (%), `>= 0`.
    pub forgetting: f32,
}

/// Computes step accuracies from a lower-triangular domain-accuracy matrix
/// (`acc[t][d]` for `d <= t`).
///
/// # Panics
///
/// Panics if the matrix is empty or a row is empty.
pub fn step_accuracies(domain_acc: &[Vec<f32>]) -> Vec<f32> {
    assert!(!domain_acc.is_empty(), "empty accuracy matrix");
    domain_acc
        .iter()
        .map(|row| {
            assert!(!row.is_empty(), "empty accuracy row");
            row.iter().sum::<f32>() / row.len() as f32
        })
        .collect()
}

/// Computes the full score triple from a domain-accuracy matrix.
pub fn scores(domain_acc: &[Vec<f32>]) -> Scores {
    let steps = step_accuracies(domain_acc);
    let avg = steps.iter().sum::<f32>() / steps.len() as f32;
    let last = *steps.last().expect("non-empty steps");

    // Forgetting: for each domain d (except the last), the best accuracy it
    // ever had minus its accuracy at the end.
    let t_final = domain_acc.len() - 1;
    let final_row = &domain_acc[t_final];
    let mut forgetting = 0.0f32;
    let mut counted = 0usize;
    for d in 0..t_final {
        let best = domain_acc[d..=t_final]
            .iter()
            .map(|row| row[d])
            .fold(f32::NEG_INFINITY, f32::max);
        forgetting += (best - final_row[d]).max(0.0);
        counted += 1;
    }
    let forgetting = if counted > 0 {
        forgetting / counted as f32
    } else {
        0.0
    };
    Scores {
        avg,
        last,
        forgetting,
    }
}

/// The paper's `Δ` column: how much `reference` (RefFiL) beats `other`.
pub fn delta(reference: f32, other: f32) -> f32 {
    reference - other
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Vec<Vec<f32>> {
        vec![vec![90.0], vec![70.0, 80.0], vec![50.0, 60.0, 85.0]]
    }

    #[test]
    fn step_accuracy_means() {
        let s = step_accuracies(&matrix());
        assert_eq!(s, vec![90.0, 75.0, 65.0]);
    }

    #[test]
    fn scores_avg_last() {
        let sc = scores(&matrix());
        assert!((sc.avg - (90.0 + 75.0 + 65.0) / 3.0).abs() < 1e-5);
        assert!((sc.last - 65.0).abs() < 1e-5);
    }

    #[test]
    fn forgetting_measures_best_minus_final() {
        let sc = scores(&matrix());
        // Domain 0: best 90, final 50 -> 40. Domain 1: best 80, final 60 -> 20.
        assert!((sc.forgetting - 30.0).abs() < 1e-5);
    }

    #[test]
    fn no_forgetting_single_task() {
        let sc = scores(&[vec![77.0]]);
        assert_eq!(sc.forgetting, 0.0);
        assert_eq!(sc.avg, 77.0);
        assert_eq!(sc.last, 77.0);
    }

    #[test]
    fn improvement_counts_as_zero_forgetting() {
        let sc = scores(&[vec![50.0], vec![90.0, 60.0]]);
        // Domain 0 improved from 50 to 90: forgetting clamps at 0.
        assert_eq!(sc.forgetting, 0.0);
    }

    #[test]
    fn delta_is_signed_difference() {
        assert!((delta(86.94, 77.39) - 9.55).abs() < 1e-4);
        assert!(delta(50.0, 60.0) < 0.0);
    }
}
