//! # refil-eval
//!
//! Evaluation utilities for the RefFiL reproduction: the paper's Avg/Last
//! accuracy metrics (plus a forgetting measure), box-plot statistics for the
//! Figure 4 distributions, an exact t-SNE implementation for the Figure 5/6
//! decision-boundary visualizations, and markdown/CSV table rendering for the
//! benchmark harness.
//!
//! # Examples
//!
//! ```
//! use refil_eval::scores;
//!
//! let domain_acc = vec![vec![90.0], vec![70.0, 80.0]];
//! let s = scores(&domain_acc);
//! assert!((s.avg - 82.5).abs() < 1e-5);
//! assert!((s.last - 75.0).abs() < 1e-5);
//! ```

#![warn(missing_docs)]

mod boxplot;
mod metrics;
mod tables;
mod transfer;
mod tsne;

pub use boxplot::{box_stats, BoxStats};
pub use metrics::{delta, scores, step_accuracies, Scores};
pub use tables::{pct, signed, Table};
pub use transfer::{backward_transfer, ConfusionMatrix};
pub use tsne::{separation_score, tsne, TsneConfig};
