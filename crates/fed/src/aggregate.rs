//! FedAvg aggregation (McMahan et al., 2017).

/// One client's contribution to an aggregation round: a flat parameter vector
/// plus its weight (the paper weights by local dataset size, Algorithm 1
/// line 8).
#[derive(Debug, Clone)]
pub struct WeightedUpdate {
    /// Flattened model parameters.
    pub flat: Vec<f32>,
    /// Aggregation weight (e.g. `|D_m|`).
    pub weight: f32,
}

/// Weighted average of client parameter vectors:
/// `theta <- sum_m (w_m / sum w) * theta_m`.
///
/// # Panics
///
/// Panics if `updates` is empty, lengths differ, or the total weight is not
/// positive and finite.
pub fn fedavg(updates: &[WeightedUpdate]) -> Vec<f32> {
    assert!(!updates.is_empty(), "fedavg needs at least one update");
    let len = updates[0].flat.len();
    let total: f32 = updates.iter().map(|u| u.weight).sum();
    assert!(
        total.is_finite() && total > 0.0,
        "total aggregation weight must be positive, got {total}"
    );
    let mut out = vec![0.0f32; len];
    for u in updates {
        assert_eq!(u.flat.len(), len, "parameter length mismatch in fedavg");
        let w = u.weight / total;
        for (o, &x) in out.iter_mut().zip(&u.flat) {
            *o += w * x;
        }
    }
    out
}

/// Unweighted mean of equal-length vectors — the balanced averaging RefFiL
/// uses for prompt sharing (Eq. 2: "averaging across all clients, ensuring
/// equitable influence from each participant ... regardless of their data
/// volume").
///
/// # Panics
///
/// Panics if `vectors` is empty or lengths differ.
pub fn balanced_mean(vectors: &[Vec<f32>]) -> Vec<f32> {
    assert!(
        !vectors.is_empty(),
        "balanced_mean needs at least one vector"
    );
    let len = vectors[0].len();
    let mut out = vec![0.0f32; len];
    for v in vectors {
        assert_eq!(v.len(), len, "length mismatch in balanced_mean");
        for (o, &x) in out.iter_mut().zip(v) {
            *o += x;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    for o in &mut out {
        *o *= inv;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_weighted_mean() {
        let updates = vec![
            WeightedUpdate {
                flat: vec![0.0, 0.0],
                weight: 1.0,
            },
            WeightedUpdate {
                flat: vec![3.0, 6.0],
                weight: 2.0,
            },
        ];
        assert_eq!(fedavg(&updates), vec![2.0, 4.0]);
    }

    #[test]
    fn fedavg_single_update_is_identity() {
        let u = vec![WeightedUpdate {
            flat: vec![1.5, -2.0],
            weight: 7.0,
        }];
        assert_eq!(fedavg(&u), vec![1.5, -2.0]);
    }

    #[test]
    fn fedavg_is_convex_combination() {
        let updates = vec![
            WeightedUpdate {
                flat: vec![1.0],
                weight: 3.0,
            },
            WeightedUpdate {
                flat: vec![5.0],
                weight: 1.0,
            },
        ];
        let out = fedavg(&updates);
        assert!(out[0] > 1.0 && out[0] < 5.0);
        assert!((out[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fedavg_rejects_zero_weight() {
        fedavg(&[WeightedUpdate {
            flat: vec![1.0],
            weight: 0.0,
        }]);
    }

    #[test]
    fn balanced_mean_ignores_weights() {
        let m = balanced_mean(&[vec![0.0, 2.0], vec![4.0, 0.0]]);
        assert_eq!(m, vec![2.0, 1.0]);
    }
}
