//! Persistent, core-clamped worker pool for the runner's fan-outs.
//!
//! The runner used to re-spawn a `crossbeam::scope` of worker threads for
//! every round's client fan-out and every eval sweep — thousands of thread
//! spawns per run, plus fresh `Timeline` lanes and cold `refil_nn` scratch
//! arenas on each. A [`WorkerPool`] is created once per runner (lazily, on
//! the first dispatch that wants more than one worker) and reused for every
//! subsequent dispatch: the threads park on a condvar between jobs, each
//! slot's [`Lane`] is revived in place with [`Timeline::rearm`], and the
//! workers' thread-local scratch pools stay warm across rounds.
//!
//! Scheduling semantics are identical to the scoped pool it replaces: a job
//! is a closure run once per participating slot (`0..workers`), workers
//! pull work items off a caller-owned shared counter, and results land in
//! slot-indexed cells — so outputs stay byte-identical at any thread count.
//!
//! # Safety
//!
//! [`WorkerPool::run`] hands the borrowed job closure to the worker threads
//! by erasing its lifetime. This is sound for the same reason scoped
//! threads are: `run` does not return until every participating worker has
//! finished the job (a condvar completion barrier), so the closure — and
//! everything it borrows — outlives every use. Workers never touch the job
//! pointer outside the generation that published it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use refil_telemetry::Lane;

/// A job published to the pool: the erased closure plus how many leading
/// slots participate.
#[derive(Clone, Copy)]
struct Job {
    /// Lifetime-erased borrow of the caller's closure; valid for the whole
    /// generation because [`WorkerPool::run`] blocks until `active == 0`.
    task: *const (dyn Fn(usize) + Sync),
    workers: usize,
}

// The raw pointer targets a `Sync` closure and is only dereferenced while
// the publishing `run` call keeps the underlying borrow alive.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per published job; workers use it to tell "new job" from
    /// spurious wakeups and to run each job exactly once.
    generation: u64,
    /// Participating workers still inside the current job.
    active: usize,
    /// Workers whose job closure panicked this generation.
    panicked: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers: new job published, or shutdown.
    dispatch: Condvar,
    /// Signals the driver: all participating workers finished.
    complete: Condvar,
}

/// A fixed-size pool of persistent worker threads plus one reusable
/// [`Lane`] per slot. Created via [`WorkerPool::new`]; dropping the pool
/// shuts the threads down and joins them.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    lanes: Vec<Mutex<Lane>>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes whole dispatches (job + post-job lane merge) so two
    /// threads sharing one runner cannot interleave jobs or clobber each
    /// other's lanes. Held via [`WorkerPool::serialize`].
    serial: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `size` persistent workers (at least 1).
    pub(crate) fn new(size: usize) -> Self {
        let size = size.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                active: 0,
                panicked: 0,
                shutdown: false,
            }),
            dispatch: Condvar::new(),
            complete: Condvar::new(),
        });
        let handles = (0..size)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("refil-worker-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawn pool worker")
            })
            .collect();
        let lanes = (0..size).map(|_| Mutex::new(Lane::detached())).collect();
        Self {
            shared,
            lanes,
            handles,
            serial: Mutex::new(()),
        }
    }

    /// Takes the dispatch lock: hold the guard around a [`WorkerPool::run`]
    /// call *and* the lane reads that follow it, so concurrent dispatches on
    /// a shared pool cannot interleave.
    pub(crate) fn serialize(&self) -> MutexGuard<'_, ()> {
        self.serial.lock().expect("pool dispatch lock poisoned")
    }

    /// Number of worker threads.
    pub(crate) fn size(&self) -> usize {
        self.handles.len()
    }

    /// Runs `task` once on each of the first `workers` slots, blocking until
    /// every participating worker has returned.
    ///
    /// # Panics
    ///
    /// Panics if `workers` exceeds the pool size, and re-raises (as a fresh
    /// panic, after all workers finished the job) if any worker's closure
    /// panicked — matching the joined-scope semantics it replaces.
    pub(crate) fn run(&self, workers: usize, task: &(dyn Fn(usize) + Sync)) {
        assert!(
            workers <= self.size(),
            "job wants {workers} workers but the pool has {}",
            self.size()
        );
        if workers == 0 {
            return;
        }
        // Erase the closure's lifetime. Sound: we hold `state` through
        // publication and do not return until `active == 0`, so the borrow
        // outlives every dereference (see module docs).
        let task: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        debug_assert!(state.job.is_none() && state.active == 0, "pool reentered");
        state.job = Some(Job { task, workers });
        state.generation += 1;
        state.active = workers;
        state.panicked = 0;
        self.shared.dispatch.notify_all();
        while state.active > 0 {
            state = self
                .shared
                .complete
                .wait(state)
                .expect("pool state poisoned");
        }
        state.job = None;
        let panicked = state.panicked;
        drop(state);
        assert!(panicked == 0, "{panicked} pool worker(s) panicked");
    }

    /// The persistent [`Lane`] for worker slot `slot`. Workers lock it for
    /// the duration of a job; the driver locks it afterwards to merge.
    pub(crate) fn lane(&self, slot: usize) -> MutexGuard<'_, Lane> {
        self.lanes[slot].lock().expect("pool lane poisoned")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            self.shared.dispatch.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, slot: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    seen_generation = state.generation;
                    break;
                }
                state = shared.dispatch.wait(state).expect("pool state poisoned");
            }
            state.job
        };
        let Some(job) = job else { continue };
        if slot >= job.workers {
            continue;
        }
        // SAFETY: the publishing `run` call blocks until we decrement
        // `active`, keeping the closure borrow alive (module docs).
        let task = unsafe { &*job.task };
        let outcome = catch_unwind(AssertUnwindSafe(|| task(slot)));
        let mut state = shared.state.lock().expect("pool state poisoned");
        if outcome.is_err() {
            state.panicked += 1;
        }
        state.active -= 1;
        if state.active == 0 {
            shared.complete.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_participating_slot_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(3, &|slot| {
            hits[slot].fetch_add(1, Ordering::SeqCst);
        });
        let counts: Vec<usize> = hits.iter().map(|h| h.load(Ordering::SeqCst)).collect();
        assert_eq!(counts, vec![1, 1, 1, 0]);
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(2, &|_slot| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn shared_counter_scheduling_covers_all_items() {
        let pool = WorkerPool::new(4);
        let next = AtomicUsize::new(0);
        let done: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        pool.run(4, &|_slot| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(cell) = done.get(i) else { break };
            cell.fetch_add(1, Ordering::SeqCst);
        });
        assert!(done.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn worker_panic_is_reraised_after_the_job_completes() {
        let pool = WorkerPool::new(2);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|slot| {
                if slot == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(err.is_err(), "worker panic must surface to the driver");
        // The pool survives a panicked job and keeps serving.
        let ran = AtomicUsize::new(0);
        pool.run(2, &|_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(3);
        pool.run(3, &|_| {});
        drop(pool); // must not hang or leak threads
    }
}
