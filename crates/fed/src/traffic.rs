//! Communication accounting for the simulated federation.

use serde::{Deserialize, Serialize};

/// Bytes moved between server and clients within one task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskTraffic {
    /// The task index this slice covers.
    pub task: usize,
    /// Server -> client bytes during this task.
    pub down_bytes: u64,
    /// Client -> server bytes during this task.
    pub up_bytes: u64,
    /// Communication rounds executed during this task.
    pub rounds: u64,
    /// Client updates received during this task.
    pub client_updates: u64,
}

/// Bytes moved between server and clients over a run.
///
/// Totals are always maintained; when the driver calls
/// [`TrafficStats::start_task`] at task boundaries, a per-task breakdown
/// accumulates in [`TrafficStats::per_task`] whose slices sum exactly to the
/// run totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Server -> client bytes (model broadcasts + global prompts).
    pub down_bytes: u64,
    /// Client -> server bytes (model updates + prompt uploads).
    pub up_bytes: u64,
    /// Total communication rounds executed.
    pub rounds: u64,
    /// Total client updates received.
    pub client_updates: u64,
    /// Per-task breakdown, in task order; empty if `start_task` was never
    /// called (e.g. ad-hoc accounting outside the driver).
    pub per_task: Vec<TaskTraffic>,
}

impl TrafficStats {
    /// Opens a new per-task accounting slice; subsequent records accrue to it.
    pub fn start_task(&mut self, task: usize) {
        self.per_task.push(TaskTraffic {
            task,
            ..TaskTraffic::default()
        });
    }

    /// Records one client's participation in a round. Both arguments are
    /// measured encoded-frame sizes (header + payload): `up_bytes` covers the
    /// client's `ClientModelUpdate` frame plus any merge frame, `down_bytes`
    /// the `ModelBroadcast` frame plus any strategy broadcast frame.
    pub fn record_client(&mut self, up_bytes: u64, down_bytes: u64) {
        self.down_bytes += down_bytes;
        self.up_bytes += up_bytes;
        self.client_updates += 1;
        if let Some(t) = self.per_task.last_mut() {
            t.down_bytes += down_bytes;
            t.up_bytes += up_bytes;
            t.client_updates += 1;
        }
    }

    /// Records the completion of one round.
    pub fn record_round(&mut self) {
        self.rounds += 1;
        if let Some(t) = self.per_task.last_mut() {
            t.rounds += 1;
        }
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.down_bytes + self.up_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_adds_up() {
        let mut t = TrafficStats::default();
        t.record_client(110, 105);
        t.record_client(100, 100);
        t.record_round();
        assert_eq!(t.down_bytes, 205);
        assert_eq!(t.up_bytes, 210);
        assert_eq!(t.total_bytes(), 415);
        assert_eq!(t.rounds, 1);
        assert_eq!(t.client_updates, 2);
        assert!(t.per_task.is_empty(), "no task slices without start_task");
    }

    #[test]
    fn per_task_slices_sum_to_run_totals() {
        let mut t = TrafficStats::default();
        t.start_task(0);
        t.record_client(110, 105);
        t.record_round();
        t.start_task(1);
        t.record_client(100, 100);
        t.record_client(107, 103);
        t.record_round();
        t.record_round();

        assert_eq!(t.per_task.len(), 2);
        assert_eq!(t.per_task[0].task, 0);
        assert_eq!(t.per_task[1].task, 1);
        assert_eq!(t.per_task[0].rounds, 1);
        assert_eq!(t.per_task[1].rounds, 2);

        let down: u64 = t.per_task.iter().map(|s| s.down_bytes).sum();
        let up: u64 = t.per_task.iter().map(|s| s.up_bytes).sum();
        let rounds: u64 = t.per_task.iter().map(|s| s.rounds).sum();
        let updates: u64 = t.per_task.iter().map(|s| s.client_updates).sum();
        assert_eq!(down, t.down_bytes);
        assert_eq!(up, t.up_bytes);
        assert_eq!(rounds, t.rounds);
        assert_eq!(updates, t.client_updates);
    }

    #[test]
    fn records_before_first_task_only_hit_totals() {
        let mut t = TrafficStats::default();
        t.record_client(10, 10);
        t.start_task(0);
        t.record_client(10, 10);
        assert_eq!(t.client_updates, 2);
        assert_eq!(t.per_task[0].client_updates, 1);
    }
}
