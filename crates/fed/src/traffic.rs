//! Communication accounting for the simulated federation.

use serde::{Deserialize, Serialize};

/// Bytes moved between server and clients over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Server -> client bytes (model broadcasts + global prompts).
    pub down_bytes: u64,
    /// Client -> server bytes (model updates + prompt uploads).
    pub up_bytes: u64,
    /// Total communication rounds executed.
    pub rounds: u64,
    /// Total client updates received.
    pub client_updates: u64,
}

impl TrafficStats {
    /// Records one client's participation in a round.
    pub fn record_client(&mut self, model_bytes: u64, extra_up: u64, extra_down: u64) {
        self.down_bytes += model_bytes + extra_down;
        self.up_bytes += model_bytes + extra_up;
        self.client_updates += 1;
    }

    /// Records the completion of one round.
    pub fn record_round(&mut self) {
        self.rounds += 1;
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.down_bytes + self.up_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_adds_up() {
        let mut t = TrafficStats::default();
        t.record_client(100, 10, 5);
        t.record_client(100, 0, 0);
        t.record_round();
        assert_eq!(t.down_bytes, 205);
        assert_eq!(t.up_bytes, 210);
        assert_eq!(t.total_bytes(), 415);
        assert_eq!(t.rounds, 1);
        assert_eq!(t.client_updates, 2);
    }
}
