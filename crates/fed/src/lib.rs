//! # refil-fed
//!
//! Federated-learning substrate for the RefFiL reproduction: FedAvg
//! aggregation, the paper's client-increment protocol (`U_o`/`U_b`/`U_n`
//! groups with 80 % gradual transition and growing client counts), the
//! quantity-shift data assignment, communication accounting, and a generic
//! FDIL round driver that any [`FdilStrategy`] plugs into.
//!
//! # Examples
//!
//! ```
//! use refil_fed::{build_schedule, IncrementConfig};
//!
//! let cfg = IncrementConfig::default(); // 20 clients, +2 per task, 80 % transition
//! let schedule = build_schedule(&cfg, 5, 42);
//! assert_eq!(schedule[4].clients.len(), 28);
//! ```

#![warn(missing_docs)]

mod aggregate;
mod config;
mod increment;
mod net;
mod pool;
mod runner;
pub mod secure;
mod traffic;

pub use aggregate::{balanced_mean, fedavg, WeightedUpdate};
pub use config::{ConfigError, NetConfig, RunConfig, RunConfigBuilder, WireConfig, WireQuant};
pub use increment::{
    build_schedule, select_clients, ClientGroup, ClientPlan, IncrementConfig, TaskSchedule,
};
pub use net::{
    client_handshake, process_thread_count, run_client, run_client_resumable, run_clients_pumped,
    ClientError, ClientOptions, ClientReport,
};
pub use runner::{
    evaluate_domain, ClientUpdate, DomainEvaluator, EvalContext, FdilRunner, FdilStrategy,
    RoundContext, RunResult, SessionOutput, TrainSetting,
};
pub use traffic::{TaskTraffic, TrafficStats};

// Re-exported so strategy implementors can name the telemetry and wire types
// that appear in the `FdilStrategy` trait without a separate dependency.
pub use refil_telemetry::{
    ArenaStats, PhaseNanos, PoolStats, RoundReport, SessionStat, Telemetry, TelemetrySummary,
    WorkerStats,
};
pub use refil_wire::{
    connect, ClientModelUpdate, CompressedModelUpdate, CompressionSpec, ConnectError, Endpoint,
    GlobalPromptBroadcast, Interest, Link, Listener, Loopback, MaskedModelUpdate, MessageKind,
    ModelBroadcast, NetLink, NetListener, PeerId, PollSet, PromptGroup, PromptUpload, QuantMode,
    RecvError, RehearsalMemory, Resume, WireError, WireMessage, WireSample, SERVER_PEER,
};
