//! The FDIL round driver: executes Algorithm 1's outer loop for any strategy.
//!
//! The driver owns everything protocol-side — task sequencing, client
//! increments and group membership, quantity-shift data partitioning, client
//! selection, FedAvg, traffic accounting, and per-task evaluation — while the
//! [`FdilStrategy`] implementations (Finetune, FedLwF, FedEWC, FedL2P,
//! FedDualPrompt, RefFiL) own the model and the local/server learning rules.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use refil_data::{partition_quantity_shift, FdilDataset, QuantityShift, Sample};
use refil_nn::Tensor;
use refil_telemetry::{Telemetry, TelemetrySummary};

use crate::aggregate::{fedavg, WeightedUpdate};
use crate::increment::{build_schedule, select_clients, ClientGroup, IncrementConfig};
use crate::traffic::TrafficStats;

/// Everything a strategy needs to run one local training session.
#[derive(Debug)]
pub struct TrainSetting<'a> {
    /// Global client id.
    pub client_id: usize,
    /// Current task (0-based).
    pub task: usize,
    /// Current round within the task.
    pub round: usize,
    /// The client's group this round.
    pub group: ClientGroup,
    /// Effective local training data (old, new, or concatenated per group).
    pub samples: &'a [Sample],
    /// Local epochs to run.
    pub local_epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Deterministic seed for this (task, round, client) session.
    pub seed: u64,
}

/// A client's answer to one round: updated parameters plus payload size.
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Updated flat parameters.
    pub flat: Vec<f32>,
    /// FedAvg weight (normally the local sample count).
    pub weight: f32,
    /// Extra client->server payload bytes (e.g. uploaded prompts).
    pub upload_bytes: u64,
    /// Extra server->client payload bytes (e.g. broadcast global prompts).
    pub download_bytes: u64,
}

/// A federated domain-incremental learning strategy.
///
/// Implementations own the model architecture and any persistent client or
/// server state; the driver only sees flat parameter vectors.
pub trait FdilStrategy {
    /// Human-readable method name (e.g. `"RefFiL"`, `"FedEWC"`).
    fn name(&self) -> String;

    /// Hands the strategy a telemetry handle before the run starts, so its
    /// hot paths can open spans and record observations. Handles are cheap
    /// clones sharing one collector; the default implementation ignores it.
    fn attach_telemetry(&mut self, _telemetry: &Telemetry) {}

    /// Produces the initial global parameter vector.
    fn init_global(&mut self) -> Vec<f32>;

    /// Called once when task `task` begins, before any round.
    fn on_task_start(&mut self, _task: usize, _global: &[f32]) {}

    /// Runs local training for one selected client and returns its update.
    fn train_client(&mut self, setting: &TrainSetting<'_>, global: &[f32]) -> ClientUpdate;

    /// Called after FedAvg each round with the new global parameters.
    fn on_round_end(&mut self, _task: usize, _round: usize, _global: &[f32]) {}

    /// Called when a task finishes, with each active client's current local
    /// data (used e.g. to estimate the EWC Fisher information).
    fn on_task_end(
        &mut self,
        _task: usize,
        _global: &[f32],
        _client_data: &[(usize, Vec<Sample>)],
    ) {
    }

    /// Predicts class labels for a `[batch, dim]` feature tensor under the
    /// given global parameters.
    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize>;

    /// Returns the model's final `[CLS]` representation for each row of
    /// `features` — the embedding the paper's t-SNE figures visualize.
    /// Defaults to the raw input features (identity embedding).
    fn cls_embeddings(&mut self, _global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        let d = features.shape()[1];
        features.data().chunks(d).map(<[f32]>::to_vec).collect()
    }

    /// Domain-aware prediction: like [`FdilStrategy::predict`], but told which
    /// task/domain the batch comes from. Defaults to ignoring the hint.
    ///
    /// RefFiL overrides this: its prompt generator is conditioned on the
    /// local task ID (a dependence the paper's Limitations section makes
    /// explicit), so evaluation on domain `d` uses task-`d` key embeddings.
    fn predict_domain(&mut self, global: &[f32], features: &Tensor, _domain: usize) -> Vec<usize> {
        self.predict(global, features)
    }
}

/// Run-level configuration (protocol side).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunConfig {
    /// Client increment protocol parameters.
    pub increment: IncrementConfig,
    /// Local epochs per selected client per round (paper: 20).
    pub local_epochs: usize,
    /// Local minibatch size.
    pub batch_size: usize,
    /// Log-normal sigma of the quantity-shift partition.
    pub quantity_sigma: f32,
    /// Evaluation minibatch size.
    pub eval_batch: usize,
    /// Probability that a selected client drops out of a round before
    /// reporting (straggler/failure simulation; the paper's setting has
    /// resource-constrained devices). `0.0` disables dropout.
    pub dropout_prob: f32,
    /// Master seed for the run.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            increment: IncrementConfig::default(),
            local_epochs: 2,
            batch_size: 32,
            quantity_sigma: 0.6,
            eval_batch: 256,
            dropout_prob: 0.0,
            seed: 0,
        }
    }
}

/// Outcome of a full FDIL run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Domain names in task order.
    pub domain_names: Vec<String>,
    /// `acc[t][d]` = accuracy (%) on domain `d`'s test set after task `t`,
    /// for `d <= t`.
    pub domain_acc: Vec<Vec<f32>>,
    /// Communication accounting.
    pub traffic: TrafficStats,
    /// Group sizes `(M_o, M_b, M_n)` sampled at the start, middle, and end
    /// round of each task (for the Fig. 1 transition timeline).
    pub group_timeline: Vec<[(usize, usize, usize); 3]>,
    /// The final global parameter vector (for post-hoc analysis such as the
    /// t-SNE embeddings of Figures 5/6).
    pub final_global: Vec<f32>,
    /// Aggregated telemetry (span timings, counters, histograms); empty when
    /// the run used a disabled [`Telemetry`] handle.
    pub telemetry: TelemetrySummary,
}

impl RunResult {
    /// Step accuracy `A_t`: mean over all domains seen up to task `t`
    /// (the per-column values in the paper's Tables 3/4).
    pub fn step_accuracies(&self) -> Vec<f32> {
        self.domain_acc
            .iter()
            .map(|row| row.iter().sum::<f32>() / row.len() as f32)
            .collect()
    }

    /// `Avg` metric: mean of step accuracies across all learning steps
    /// (iCaRL's average incremental accuracy).
    pub fn avg_accuracy(&self) -> f32 {
        let steps = self.step_accuracies();
        steps.iter().sum::<f32>() / steps.len() as f32
    }

    /// `Last` metric: step accuracy after the final task.
    pub fn last_accuracy(&self) -> f32 {
        *self.step_accuracies().last().expect("at least one task")
    }

    /// Accuracy on each domain after the final task (for forgetting analysis).
    pub fn final_domain_accuracies(&self) -> &[f32] {
        self.domain_acc.last().expect("at least one task")
    }
}

fn session_seed(master: u64, task: usize, round: usize, client: usize) -> u64 {
    // SplitMix64-style mixing for decorrelated per-session seeds.
    // `round` may be a `usize::MAX` sentinel, so the +1 must wrap too.
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul((task as u64).wrapping_add(1)))
        .wrapping_add(0xbf58_476d_1ce4_e5b9u64.wrapping_mul((round as u64).wrapping_add(1)))
        .wrapping_add(0x94d0_49bb_1331_11ebu64.wrapping_mul((client as u64).wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-client data holdings maintained by the driver.
#[derive(Debug, Default, Clone)]
struct Holdings {
    /// Data carried from previous tasks.
    old: Vec<Sample>,
    /// New-domain data received this task (empty for `U_o` clients).
    new: Vec<Sample>,
    /// Cached `old ++ new` for `U_b` rounds.
    both: Vec<Sample>,
}

/// Executes the full FDIL protocol of Algorithm 1 for `strategy` on `dataset`.
///
/// Equivalent to [`run_fdil_traced`] with a disabled [`Telemetry`] handle.
///
/// # Panics
///
/// Panics if the dataset has no domains or a domain has no test data.
pub fn run_fdil(
    dataset: &FdilDataset,
    strategy: &mut dyn FdilStrategy,
    cfg: &RunConfig,
) -> RunResult {
    run_fdil_traced(dataset, strategy, cfg, &Telemetry::disabled())
}

/// Executes the full FDIL protocol of Algorithm 1 for `strategy` on
/// `dataset`, recording spans, counters, and histograms into `telemetry`.
///
/// The span hierarchy is `run > task:<t> > round:<r> > client:<c>`, with
/// sibling `fedavg` and `evaluate_domain` spans. The
/// `traffic.up_bytes` / `traffic.down_bytes` counters are incremented at the
/// same sites as [`TrafficStats::record_client`], so their final totals in
/// the trace equal the run's [`TrafficStats`] exactly. Telemetry never
/// touches the run's RNG streams: results are identical whichever sink (or
/// none) is installed.
///
/// # Panics
///
/// Panics if the dataset has no domains or a domain has no test data.
pub fn run_fdil_traced(
    dataset: &FdilDataset,
    strategy: &mut dyn FdilStrategy,
    cfg: &RunConfig,
    telemetry: &Telemetry,
) -> RunResult {
    assert!(dataset.num_domains() > 0, "dataset has no domains");
    let num_tasks = dataset.num_domains();
    let schedules = build_schedule(&cfg.increment, num_tasks, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);

    strategy.attach_telemetry(telemetry);
    let _run_span = telemetry.span("run");
    telemetry.info(format!(
        "run start: method={} dataset={} tasks={} seed={}",
        strategy.name(),
        dataset.name,
        num_tasks,
        cfg.seed
    ));

    let mut global = strategy.init_global();
    let model_bytes = (global.len() * 4) as u64;
    let mut holdings: Vec<Holdings> = Vec::new();
    let mut traffic = TrafficStats::default();
    let mut domain_acc: Vec<Vec<f32>> = Vec::with_capacity(num_tasks);
    let mut group_timeline = Vec::with_capacity(num_tasks);

    for (task, schedule) in schedules.iter().enumerate() {
        let _task_span = telemetry.span(&format!("task:{task}"));
        traffic.start_task(task);
        strategy.on_task_start(task, &global);
        holdings.resize_with(schedule.clients.len(), Holdings::default);

        // Distribute the new domain's training data among recipients.
        let recipients = schedule.new_data_recipients();
        if !recipients.is_empty() {
            let parts = partition_quantity_shift(
                dataset.domains[task].train.clone(),
                recipients.len(),
                QuantityShift::Lognormal(cfg.quantity_sigma),
                session_seed(cfg.seed, task, usize::MAX, 0),
            );
            for (cid, part) in recipients.iter().zip(parts) {
                holdings[*cid].new = part;
                holdings[*cid].both = holdings[*cid]
                    .old
                    .iter()
                    .cloned()
                    .chain(holdings[*cid].new.iter().cloned())
                    .collect();
            }
        }

        let rounds = cfg.increment.rounds_per_task;
        group_timeline.push([
            schedule.group_sizes(0),
            schedule.group_sizes(rounds / 2),
            schedule.group_sizes(rounds.saturating_sub(1)),
        ]);

        for round in 0..rounds {
            let _round_span = telemetry.span(&format!("round:{round}"));
            let selected = select_clients(schedule, cfg.increment.select_per_round, &mut rng);
            let mut updates = Vec::new();
            for &cid in &selected {
                if cfg.dropout_prob > 0.0 && rng.gen::<f32>() < cfg.dropout_prob {
                    telemetry.counter("clients.dropped", 1);
                    continue; // straggler: selected but never reports
                }
                let plan = &schedule.clients[cid];
                let group = plan.group_at(round);
                let samples: &[Sample] = match group {
                    ClientGroup::Old => &holdings[cid].old,
                    ClientGroup::New => &holdings[cid].new,
                    ClientGroup::Between => &holdings[cid].both,
                };
                if samples.is_empty() {
                    continue;
                }
                let setting = TrainSetting {
                    client_id: cid,
                    task,
                    round,
                    group,
                    samples,
                    local_epochs: cfg.local_epochs,
                    batch_size: cfg.batch_size,
                    seed: session_seed(cfg.seed, task, round, cid),
                };
                let _client_span = telemetry.span(&format!("client:{cid}"));
                let session_start = std::time::Instant::now();
                let update = strategy.train_client(&setting, &global);
                let elapsed = session_start.elapsed().as_secs_f64();
                telemetry.observe("client.duration_s", elapsed);
                if elapsed > 0.0 {
                    let processed = (samples.len() * cfg.local_epochs.max(1)) as f64;
                    telemetry.observe("client.samples_per_sec", processed / elapsed);
                }
                traffic.record_client(model_bytes, update.upload_bytes, update.download_bytes);
                // Mirror record_client exactly so trace totals match traffic.
                telemetry.counter("traffic.up_bytes", model_bytes + update.upload_bytes);
                telemetry.counter("traffic.down_bytes", model_bytes + update.download_bytes);
                telemetry.counter("clients.trained", 1);
                updates.push(WeightedUpdate {
                    flat: update.flat,
                    weight: update.weight,
                });
            }
            if !updates.is_empty() {
                let _fedavg_span = telemetry.span("fedavg");
                global = fedavg(&updates);
            }
            traffic.record_round();
            telemetry.counter("rounds", 1);
            strategy.on_round_end(task, round, &global);
        }

        // Task-end hook: expose each client's effective data (for Fisher etc.).
        let client_data: Vec<(usize, Vec<Sample>)> = schedule
            .clients
            .iter()
            .map(|plan| {
                let h = &holdings[plan.id];
                let data = match plan.group_at(rounds.saturating_sub(1)) {
                    ClientGroup::Old => h.old.clone(),
                    ClientGroup::New => h.new.clone(),
                    ClientGroup::Between => h.both.clone(),
                };
                (plan.id, data)
            })
            .collect();
        strategy.on_task_end(task, &global, &client_data);

        // Clients that saw the new domain carry it forward as their data.
        for plan in &schedule.clients {
            if plan.receives_new_data() {
                let h = &mut holdings[plan.id];
                h.old = std::mem::take(&mut h.new);
                h.both.clear();
            }
        }

        // Evaluate on every domain seen so far.
        let mut row = Vec::with_capacity(task + 1);
        for d in 0..=task {
            let _eval_span = telemetry.span("evaluate_domain");
            let acc = evaluate_domain(strategy, &global, dataset, d, cfg.eval_batch);
            telemetry.observe("eval.domain_acc", f64::from(acc));
            row.push(acc);
        }
        let step_acc = row.iter().sum::<f32>() / row.len() as f32;
        telemetry.info(format!("task {task} done: step accuracy {step_acc:.2}%"));
        domain_acc.push(row);
    }

    telemetry.info(format!(
        "run done: {} rounds, {} client updates, {} bytes total",
        traffic.rounds,
        traffic.client_updates,
        traffic.total_bytes()
    ));
    drop(_run_span);
    telemetry.flush();

    RunResult {
        method: strategy.name(),
        dataset: dataset.name.clone(),
        domain_names: dataset.domains.iter().map(|d| d.name.clone()).collect(),
        domain_acc,
        traffic,
        group_timeline,
        final_global: global,
        telemetry: telemetry.summary(),
    }
}

/// Accuracy (%) of the strategy's global model on one domain's test split.
pub fn evaluate_domain(
    strategy: &mut dyn FdilStrategy,
    global: &[f32],
    dataset: &FdilDataset,
    domain: usize,
    eval_batch: usize,
) -> f32 {
    let test = &dataset.domains[domain].test;
    assert!(!test.is_empty(), "domain {domain} has no test data");
    let dim = test[0].features.len();
    let mut correct = 0usize;
    for chunk in test.chunks(eval_batch.max(1)) {
        let mut data = Vec::with_capacity(chunk.len() * dim);
        for s in chunk {
            data.extend_from_slice(&s.features);
        }
        let features = Tensor::from_vec(data, &[chunk.len(), dim]);
        let preds = strategy.predict_domain(global, &features, domain);
        correct += preds
            .iter()
            .zip(chunk)
            .filter(|(p, s)| **p == s.label)
            .count();
    }
    100.0 * correct as f32 / test.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use refil_data::{DatasetSpec, DomainSpec};

    /// A trivial strategy: nearest-class-mean in input space, "trained" by
    /// moving stored class means toward local data. Parameters = flat class
    /// means, so FedAvg is meaningful.
    struct CentroidStrategy {
        classes: usize,
        dim: usize,
    }

    impl FdilStrategy for CentroidStrategy {
        fn name(&self) -> String {
            "Centroid".into()
        }

        fn init_global(&mut self) -> Vec<f32> {
            vec![0.0; self.classes * self.dim]
        }

        fn train_client(&mut self, s: &TrainSetting<'_>, global: &[f32]) -> ClientUpdate {
            let mut flat = global.to_vec();
            let mut counts = vec![0usize; self.classes];
            let mut sums = vec![0.0f32; self.classes * self.dim];
            for sample in s.samples {
                counts[sample.label] += 1;
                for (i, &f) in sample.features.iter().enumerate() {
                    sums[sample.label * self.dim + i] += f;
                }
            }
            for k in 0..self.classes {
                if counts[k] > 0 {
                    for i in 0..self.dim {
                        flat[k * self.dim + i] = sums[k * self.dim + i] / counts[k] as f32;
                    }
                }
            }
            ClientUpdate {
                flat,
                weight: s.samples.len() as f32,
                upload_bytes: 0,
                download_bytes: 0,
            }
        }

        fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
            let n = features.shape()[0];
            (0..n)
                .map(|i| {
                    let x = &features.data()[i * self.dim..(i + 1) * self.dim];
                    (0..self.classes)
                        .min_by(|&a, &b| {
                            let da: f32 = x
                                .iter()
                                .zip(&global[a * self.dim..(a + 1) * self.dim])
                                .map(|(u, v)| (u - v) * (u - v))
                                .sum();
                            let db: f32 = x
                                .iter()
                                .zip(&global[b * self.dim..(b + 1) * self.dim])
                                .map(|(u, v)| (u - v) * (u - v))
                                .sum();
                            da.total_cmp(&db)
                        })
                        .unwrap_or(0)
                })
                .collect()
        }
    }

    fn tiny_dataset() -> FdilDataset {
        DatasetSpec {
            name: "tiny".into(),
            classes: 3,
            feature_dim: 6,
            proto_scale: 3.0,
            within_std: 0.3,
            test_fraction: 0.3,
            signature_dim: 2,
            signature_scale: 0.6,
            domains: vec![
                DomainSpec::new("d0", 120, 0.1, 0.0),
                DomainSpec::new("d1", 120, 0.1, 0.2),
            ],
        }
        .generate(11)
    }

    fn tiny_config() -> RunConfig {
        RunConfig {
            increment: IncrementConfig {
                initial_clients: 4,
                select_per_round: 3,
                increment_per_task: 1,
                transition_fraction: 0.8,
                rounds_per_task: 3,
            },
            local_epochs: 1,
            batch_size: 16,
            quantity_sigma: 0.5,
            eval_batch: 64,
            dropout_prob: 0.0,
            seed: 3,
        }
    }

    #[test]
    fn runner_executes_full_protocol() {
        let ds = tiny_dataset();
        let mut strat = CentroidStrategy { classes: 3, dim: 6 };
        let res = run_fdil(&ds, &mut strat, &tiny_config());
        assert_eq!(res.domain_acc.len(), 2);
        assert_eq!(res.domain_acc[0].len(), 1);
        assert_eq!(res.domain_acc[1].len(), 2);
        assert_eq!(res.traffic.rounds, 6);
        assert!(res.traffic.client_updates > 0);
        // Centroids on an easy first domain should beat chance (33 %).
        assert!(res.domain_acc[0][0] > 50.0, "acc {:?}", res.domain_acc);
    }

    #[test]
    fn run_is_deterministic() {
        let ds = tiny_dataset();
        let mut s1 = CentroidStrategy { classes: 3, dim: 6 };
        let mut s2 = CentroidStrategy { classes: 3, dim: 6 };
        let r1 = run_fdil(&ds, &mut s1, &tiny_config());
        let r2 = run_fdil(&ds, &mut s2, &tiny_config());
        assert_eq!(r1.domain_acc, r2.domain_acc);
    }

    #[test]
    fn dropout_reduces_client_updates() {
        let ds = tiny_dataset();
        let mut s1 = CentroidStrategy { classes: 3, dim: 6 };
        let r_full = run_fdil(&ds, &mut s1, &tiny_config());
        let mut s2 = CentroidStrategy { classes: 3, dim: 6 };
        let mut cfg = tiny_config();
        cfg.dropout_prob = 0.6;
        let r_drop = run_fdil(&ds, &mut s2, &cfg);
        assert!(
            r_drop.traffic.client_updates < r_full.traffic.client_updates,
            "dropout had no effect: {} vs {}",
            r_drop.traffic.client_updates,
            r_full.traffic.client_updates
        );
        // The protocol must survive rounds where every client drops.
        assert_eq!(r_drop.domain_acc.len(), ds.num_domains());
    }

    #[test]
    fn metrics_derive_from_domain_matrix() {
        let res = RunResult {
            method: "m".into(),
            dataset: "d".into(),
            domain_names: vec!["a".into(), "b".into()],
            domain_acc: vec![vec![90.0], vec![60.0, 80.0]],
            traffic: TrafficStats::default(),
            group_timeline: vec![],
            final_global: vec![],
            telemetry: TelemetrySummary::default(),
        };
        let steps = res.step_accuracies();
        assert_eq!(steps, vec![90.0, 70.0]);
        assert!((res.avg_accuracy() - 80.0).abs() < 1e-5);
        assert!((res.last_accuracy() - 70.0).abs() < 1e-5);
        assert_eq!(res.final_domain_accuracies(), &[60.0, 80.0]);
    }

    #[test]
    fn session_seeds_decorrelate() {
        let a = session_seed(1, 0, 0, 0);
        let b = session_seed(1, 0, 0, 1);
        let c = session_seed(1, 0, 1, 0);
        let d = session_seed(2, 0, 0, 0);
        assert!(a != b && a != c && a != d && b != c);
    }
}
