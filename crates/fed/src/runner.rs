//! The FDIL round driver: executes Algorithm 1's outer loop for any strategy.
//!
//! The driver owns everything protocol-side — task sequencing, client
//! increments and group membership, quantity-shift data partitioning, client
//! selection, FedAvg, traffic accounting, and per-task evaluation — while the
//! [`FdilStrategy`] implementations (Finetune, FedLwF, FedEWC, FedL2P,
//! FedDualPrompt, RefFiL) own the model and the local/server learning rules.
//!
//! # Concurrency model
//!
//! Client sessions within a round are independent by construction: each round
//! the strategy exposes a shared read-only [`RoundContext`] and every selected
//! client trains as a pure function of that context plus its own
//! [`TrainSetting`]. The driver pre-draws all per-round randomness (selection,
//! dropout, session seeds) *before* dispatching any session, runs sessions on
//! a scoped thread pool, and consumes the outputs in ascending client-id
//! order — so the result is byte-for-byte identical at any thread count.
//! Cross-client state (prompt ingest, rehearsal memory) mutates only through
//! [`FdilStrategy::merge_client`], applied in client-id order after FedAvg.
//!
//! # Wire layer
//!
//! Every client↔server exchange travels as a typed [`WireMessage`] encoded
//! through the `refil-wire` codec and moved over a peer-addressed
//! [`Link`]: the global model goes down as a `ModelBroadcast` frame (plus
//! any [`FdilStrategy::round_broadcast`] message, e.g. RefFiL's
//! `GlobalPromptBroadcast`), and each client's trained parameters come back
//! as a `ClientModelUpdate` frame alongside an optional strategy merge
//! message (`PromptUpload`, `RehearsalMemory`, ...). [`TrafficStats`] counts
//! the actual framed byte lengths. The driver performs all link and codec
//! work in client-id order on its own thread, so the wire layer does not
//! perturb the concurrency model above; because the codec is bit-exact for
//! `f32`, a loopback-transported run is byte-identical to the
//! codec-bypassing direct path ([`FdilRunner::direct`]), which exists
//! precisely to enforce that equivalence in tests.
//!
//! [`FdilRunner::serve`] runs the same loop over real sockets: planned
//! sessions are assigned to connected peer processes, trained remotely, and
//! collected under a per-round deadline — see the `net` module. Because
//! remote results ride inside control frames as the *same* nested payload
//! frames, the per-client traffic accounting stays byte-identical to the
//! loopback run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use refil_data::{partition_quantity_shift, FdilDataset, QuantityShift, Sample};
use refil_nn::Tensor;
use refil_telemetry::{
    ArenaStats, Lane, PoolStats, RoundReport, SessionStat, Telemetry, TelemetrySummary,
};

use crate::pool::WorkerPool;
use refil_wire::{
    ClientModelUpdate as WireClientModelUpdate, CompressedModelUpdate, Link, Listener, Loopback,
    ModelBroadcast, SessionAssignment, WireMessage,
};

use crate::aggregate::{fedavg, WeightedUpdate};
use crate::config::RunConfig;
use crate::increment::{build_schedule, select_clients, ClientGroup, TaskSchedule};
use crate::net::{group_code, RemoteSession, RemoteUpdate, ServeState};
use crate::traffic::TrafficStats;

/// Everything a strategy needs to run one local training session.
#[derive(Debug)]
pub struct TrainSetting<'a> {
    /// Global client id.
    pub client_id: usize,
    /// Current task (0-based).
    pub task: usize,
    /// Current round within the task.
    pub round: usize,
    /// The client's group this round.
    pub group: ClientGroup,
    /// Effective local training data (old, new, or concatenated per group).
    pub samples: &'a [Sample],
    /// Local epochs to run.
    pub local_epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Deterministic seed for this (task, round, client) session.
    pub seed: u64,
}

/// A client's answer to one round: updated parameters plus FedAvg weight.
/// Byte accounting is no longer the session's job — the driver measures the
/// encoded `ClientModelUpdate` / merge frames it actually moves.
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Updated flat parameters.
    pub flat: Vec<f32>,
    /// FedAvg weight (normally the local sample count).
    pub weight: f32,
}

/// What one client session hands back to the driver.
#[derive(Debug)]
pub struct SessionOutput {
    /// The FedAvg contribution.
    pub update: ClientUpdate,
    /// Optional cross-client state as a typed wire message (e.g. a
    /// `PromptUpload` for RefFiL's server-side ingest, or `RehearsalMemory`
    /// for the rehearsal oracle), delivered to
    /// [`FdilStrategy::merge_client`] in client-id order after FedAvg. The
    /// driver encodes, transports, and decodes it like every other exchange.
    pub merge: Option<WireMessage>,
}

impl From<ClientUpdate> for SessionOutput {
    fn from(update: ClientUpdate) -> Self {
        Self {
            update,
            merge: None,
        }
    }
}

/// Shared read-only view of a strategy for one round.
///
/// Created once per round by [`FdilStrategy::round_ctx`] and shared by
/// reference across worker threads (hence the `Sync` bound); every client
/// session must be a pure function of the context and its [`TrainSetting`] —
/// no interior mutation — so sessions can run in any order on any number of
/// threads and still produce identical results.
pub trait RoundContext: Sync {
    /// Runs one client's local training session.
    ///
    /// `telemetry` is a per-worker scoped handle already parented under the
    /// surrounding `round:<r>` span; spans opened here land in the right
    /// place in the trace even when sessions run concurrently.
    fn train_client(&self, setting: &TrainSetting<'_>, telemetry: &Telemetry) -> SessionOutput;
}

/// Shared read-only view of a strategy for evaluation.
///
/// Created once per evaluation sweep by [`FdilStrategy::eval_ctx`] under a
/// fixed global parameter vector and shared by reference across worker
/// threads (hence the `Sync` bound). Each worker obtains its own mutable
/// [`DomainEvaluator`] through [`EvalContext::evaluator`], so per-worker
/// prediction state (a reusable tape-free inference session, scratch
/// buffers) never crosses threads.
pub trait EvalContext: Sync {
    /// A fresh per-worker evaluator borrowing this context's weights.
    fn evaluator(&self) -> Box<dyn DomainEvaluator + '_>;
}

/// One worker's mutable prediction handle during evaluation.
///
/// Implementations typically own a [`refil_nn::InferenceSession`] whose
/// forward plan (node and scratch buffers) is recycled across batches.
/// Predictions must be a pure function of the context's weights and the
/// inputs — no interior mutation that leaks across calls — so batches can be
/// evaluated in any order on any number of workers with identical results.
pub trait DomainEvaluator {
    /// Predicts class labels for a `[batch, dim]` feature tensor drawn from
    /// the given domain.
    fn predict_domain(&mut self, features: &Tensor, domain: usize) -> Vec<usize>;
}

/// A federated domain-incremental learning strategy.
///
/// Implementations own the model architecture and any persistent client or
/// server state; the driver only sees flat parameter vectors. During a round
/// the strategy is borrowed immutably through [`FdilStrategy::round_ctx`];
/// all mutation happens in the explicitly ordered hooks
/// ([`FdilStrategy::merge_client`], [`FdilStrategy::on_round_end`],
/// [`FdilStrategy::on_task_end`]).
pub trait FdilStrategy {
    /// Human-readable method name (e.g. `"RefFiL"`, `"FedEWC"`).
    fn name(&self) -> String;

    /// Hands the strategy a telemetry handle before the run starts, so its
    /// hot paths can open spans and record observations. Handles are cheap
    /// clones sharing one collector; the default implementation ignores it.
    fn attach_telemetry(&mut self, _telemetry: &Telemetry) {}

    /// Produces the initial global parameter vector.
    fn init_global(&mut self) -> Vec<f32>;

    /// Called once when task `task` begins, before any round.
    fn on_task_start(&mut self, _task: usize, _global: &[f32]) {}

    /// The strategy's extra server→client message for this round, if any
    /// (e.g. RefFiL's `GlobalPromptBroadcast`). The driver encodes it,
    /// transports it alongside the `ModelBroadcast`, and hands the decoded
    /// message back into [`FdilStrategy::round_ctx`].
    fn round_broadcast(&self, _task: usize, _round: usize) -> Option<WireMessage> {
        None
    }

    /// The subset of flat-parameter coordinates this strategy exchanges in
    /// client updates during `task`, as strictly ascending indices into the
    /// flat layout — or `None` (the default) to exchange every coordinate.
    ///
    /// A masked exchange sends only those coordinates over the wire
    /// (a `CompressedModelUpdate` sparse frame); the server keeps its
    /// broadcast values for the rest. The mask may vary by task: RefFiL's
    /// prompt-only mode exchanges the full model during task 0 (while the
    /// shared backbone is still being learned collaboratively) and only the
    /// prompt/head coordinates from task 1 on, once the backbone has entered
    /// its stabilized regime.
    fn exchange_mask(&self, task: u64) -> Option<Vec<u32>> {
        let _ = task;
        None
    }

    /// Returns the shared read-only context for round `round` of task `task`
    /// under the given global parameters and the decoded
    /// [`FdilStrategy::round_broadcast`] message (if one was sent). Sessions
    /// for every selected client run against this one context, possibly
    /// concurrently.
    fn round_ctx<'a>(
        &'a self,
        task: usize,
        round: usize,
        global: &'a [f32],
        broadcast: Option<&'a WireMessage>,
    ) -> Box<dyn RoundContext + 'a>;

    /// Applies one client's cross-client state (its decoded
    /// [`SessionOutput::merge`] message). The driver calls this after FedAvg,
    /// in ascending client-id order, before
    /// [`FdilStrategy::on_round_end`] — so ingestion is deterministic
    /// regardless of which worker thread finished first.
    fn merge_client(
        &mut self,
        _task: usize,
        _round: usize,
        _client_id: usize,
        _message: WireMessage,
    ) {
    }

    /// Convenience for tests and ad-hoc callers: runs one session through
    /// [`FdilStrategy::round_ctx`] (fed its own
    /// [`FdilStrategy::round_broadcast`]) and immediately applies its merge
    /// message, returning the update. Equivalent to what the driver does for
    /// a single client on the direct path.
    fn train_once(&mut self, setting: &TrainSetting<'_>, global: &[f32]) -> ClientUpdate
    where
        Self: Sized,
    {
        let broadcast = self.round_broadcast(setting.task, setting.round);
        let out = self
            .round_ctx(setting.task, setting.round, global, broadcast.as_ref())
            .train_client(setting, &Telemetry::disabled());
        if let Some(message) = out.merge {
            self.merge_client(setting.task, setting.round, setting.client_id, message);
        }
        out.update
    }

    /// Called after FedAvg (and after all [`FdilStrategy::merge_client`]
    /// calls) each round with the new global parameters.
    fn on_round_end(&mut self, _task: usize, _round: usize, _global: &[f32]) {}

    /// Called when a task finishes, with each active client's current local
    /// data (used e.g. to estimate the EWC Fisher information).
    fn on_task_end(
        &mut self,
        _task: usize,
        _global: &[f32],
        _client_data: &[(usize, Vec<Sample>)],
    ) {
    }

    /// Predicts class labels for a `[batch, dim]` feature tensor under the
    /// given global parameters.
    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize>;

    /// Returns the model's final `[CLS]` representation for each row of
    /// `features` — the embedding the paper's t-SNE figures visualize.
    /// Defaults to the raw input features (identity embedding).
    fn cls_embeddings(&mut self, _global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        let d = features.shape()[1];
        features.data().chunks(d).map(<[f32]>::to_vec).collect()
    }

    /// Returns the shared read-only evaluation context for the given global
    /// parameters. The driver creates one context per evaluation sweep and
    /// fans `(domain, batch)` work items across its worker pool, each worker
    /// predicting through its own [`EvalContext::evaluator`] — so inference
    /// here must not depend on `&mut self` state. See [`evaluate_domain`] and
    /// [`FdilRunner::evaluate_task`].
    fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a>;

    /// Domain-aware prediction: like [`FdilStrategy::predict`], but told which
    /// task/domain the batch comes from. Routes through a one-shot
    /// [`FdilStrategy::eval_ctx`]; strategies whose prompts are conditioned on
    /// the local task ID (RefFiL — a dependence the paper's Limitations
    /// section makes explicit) consume the hint there.
    fn predict_domain(&mut self, global: &[f32], features: &Tensor, domain: usize) -> Vec<usize> {
        let ctx = self.eval_ctx(global);
        let mut evaluator = ctx.evaluator();
        evaluator.predict_domain(features, domain)
    }
}

/// Outcome of a full FDIL run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Domain names in task order.
    pub domain_names: Vec<String>,
    /// `acc[t][d]` = accuracy (%) on domain `d`'s test set after task `t`,
    /// for `d <= t`.
    pub domain_acc: Vec<Vec<f32>>,
    /// Communication accounting.
    pub traffic: TrafficStats,
    /// Group sizes `(M_o, M_b, M_n)` sampled at the start, middle, and end
    /// round of each task (for the Fig. 1 transition timeline).
    pub group_timeline: Vec<[(usize, usize, usize); 3]>,
    /// The final global parameter vector (for post-hoc analysis such as the
    /// t-SNE embeddings of Figures 5/6).
    pub final_global: Vec<f32>,
    /// Aggregated telemetry (span timings, counters, histograms); empty when
    /// the run used a disabled [`Telemetry`] handle.
    pub telemetry: TelemetrySummary,
    /// One [`RoundReport`] per executed round, in execution order: per-phase
    /// wall time, per-client session time, per-kind wire bytes, scratch-arena
    /// accounting, and (with telemetry enabled) per-worker pool stats. The
    /// round that closes a task additionally carries the eval phase and
    /// per-domain accuracies.
    pub rounds: Vec<RoundReport>,
}

impl RunResult {
    /// Step accuracy `A_t`: mean over all domains seen up to task `t`
    /// (the per-column values in the paper's Tables 3/4).
    pub fn step_accuracies(&self) -> Vec<f32> {
        self.domain_acc
            .iter()
            .map(|row| row.iter().sum::<f32>() / row.len() as f32)
            .collect()
    }

    /// `Avg` metric: mean of step accuracies across all learning steps
    /// (iCaRL's average incremental accuracy).
    pub fn avg_accuracy(&self) -> f32 {
        let steps = self.step_accuracies();
        steps.iter().sum::<f32>() / steps.len() as f32
    }

    /// `Last` metric: step accuracy after the final task.
    pub fn last_accuracy(&self) -> f32 {
        *self.step_accuracies().last().expect("at least one task")
    }

    /// Accuracy on each domain after the final task (for forgetting analysis).
    pub fn final_domain_accuracies(&self) -> &[f32] {
        self.domain_acc.last().expect("at least one task")
    }
}

/// Session outputs paired with their timing stats, indexed by session slot
/// (`None` until the slot's worker completes it).
type SessionSlots = Vec<Option<(SessionOutput, SessionStat)>>;

/// One round's session results, indexed by planned-session slot: trained
/// locally on the worker pool, or collected from remote peers (`None` =
/// the result missed the round deadline).
enum RoundOutputs {
    Local(SessionSlots),
    Remote(Vec<Option<RemoteSession>>),
}

/// Converts the nn crate's thread-local scratch accounting into the
/// telemetry report type.
fn arena_stats(s: refil_nn::ScratchStats) -> ArenaStats {
    ArenaStats {
        reserved_bytes: s.reserved_bytes,
        reserved_count: s.reserved_count,
        reused_bytes: s.reused_bytes,
        reused_count: s.reused_count,
        peak_pool_bytes: s.peak_pool_bytes,
    }
}

fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

pub(crate) fn session_seed(master: u64, task: usize, round: usize, client: usize) -> u64 {
    // SplitMix64-style mixing for decorrelated per-session seeds.
    // `round` may be a `usize::MAX` sentinel, so the +1 must wrap too.
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul((task as u64).wrapping_add(1)))
        .wrapping_add(0xbf58_476d_1ce4_e5b9u64.wrapping_mul((round as u64).wrapping_add(1)))
        .wrapping_add(0x94d0_49bb_1331_11ebu64.wrapping_mul((client as u64).wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seed for the sampled-participation RNG: its own stream (decorrelated
/// from selection/dropout and from session seeds via the sentinel client
/// id) so enabling sampling never perturbs the other draws.
pub(crate) fn sample_seed(master: u64, task: usize, round: usize) -> u64 {
    session_seed(master ^ 0x5a4d_9e00, task, round, usize::MAX - 1)
}

/// Per-client data holdings maintained by the driver.
///
/// `pub(crate)` because the networked client replica (`crate::net`) evolves
/// an identical copy from the same deterministic inputs.
#[derive(Debug, Default, Clone)]
pub(crate) struct Holdings {
    /// Data carried from previous tasks.
    pub(crate) old: Vec<Sample>,
    /// New-domain data received this task (empty for `U_o` clients).
    pub(crate) new: Vec<Sample>,
    /// Cached `old ++ new` for `U_b` rounds.
    pub(crate) both: Vec<Sample>,
}

impl Holdings {
    /// Rebuilds the cached `old ++ new` concatenation in place, reusing the
    /// existing buffer's capacity instead of re-cloning through an iterator
    /// chain and reallocating every task.
    fn rebuild_both(&mut self) {
        self.both.clear();
        self.both.reserve(self.old.len() + self.new.len());
        self.both.extend_from_slice(&self.old);
        self.both.extend_from_slice(&self.new);
    }

    /// The client's effective training data for `group`.
    pub(crate) fn for_group(&self, group: ClientGroup) -> &[Sample] {
        match group {
            ClientGroup::Old => &self.old,
            ClientGroup::New => &self.new,
            ClientGroup::Between => &self.both,
        }
    }
}

/// Distributes task `task`'s new-domain training data among the schedule's
/// recipients: the deterministic holdings evolution shared verbatim by the
/// in-process driver, the networked server, and every client replica (the
/// partition is seeded from `cfg.seed` alone, never from the round RNG).
pub(crate) fn distribute_task_data(
    holdings: &mut Vec<Holdings>,
    schedule: &TaskSchedule,
    dataset: &FdilDataset,
    cfg: &RunConfig,
    task: usize,
) {
    holdings.resize_with(schedule.clients.len(), Holdings::default);
    let recipients = schedule.new_data_recipients();
    if !recipients.is_empty() {
        let parts = partition_quantity_shift(
            dataset.domains[task].train.clone(),
            recipients.len(),
            QuantityShift::Lognormal(cfg.quantity_sigma),
            session_seed(cfg.seed, task, usize::MAX, 0),
        );
        for (cid, part) in recipients.iter().zip(parts) {
            holdings[*cid].new = part;
            holdings[*cid].rebuild_both();
        }
    }
}

/// Each client's effective data at the end of a task (for
/// [`FdilStrategy::on_task_end`]), in client-id order.
pub(crate) fn collect_client_data(
    holdings: &[Holdings],
    schedule: &TaskSchedule,
    rounds: usize,
) -> Vec<(usize, Vec<Sample>)> {
    schedule
        .clients
        .iter()
        .map(|plan| {
            let h = &holdings[plan.id];
            let data = h
                .for_group(plan.group_at(rounds.saturating_sub(1)))
                .to_vec();
            (plan.id, data)
        })
        .collect()
}

/// Task-boundary holdings transition: clients that saw the new domain carry
/// it forward as their old data.
pub(crate) fn carry_forward(holdings: &mut [Holdings], schedule: &TaskSchedule) {
    for plan in &schedule.clients {
        if plan.receives_new_data() {
            let h = &mut holdings[plan.id];
            h.old = std::mem::take(&mut h.new);
            h.both.clear();
        }
    }
}

/// One client session planned for dispatch: all inputs are resolved before
/// any worker starts, so execution order cannot affect the result.
struct PlannedSession<'a> {
    cid: usize,
    task: usize,
    round: usize,
    group: ClientGroup,
    samples: &'a [Sample],
    seed: u64,
}

/// Runs one planned session, recording the per-client span and throughput
/// observations, and returns the output plus the session's wall nanoseconds.
///
/// `t` is a handle already scoped under the round span — created once per
/// worker, not per session, so the hot path pays no parent-path rebuild.
fn run_session(
    ctx: &dyn RoundContext,
    session: &PlannedSession<'_>,
    cfg: &RunConfig,
    t: &Telemetry,
) -> (SessionOutput, u64) {
    let _client_span = t.span(&format!("client:{}", session.cid));
    let setting = TrainSetting {
        client_id: session.cid,
        task: session.task,
        round: session.round,
        group: session.group,
        samples: session.samples,
        local_epochs: cfg.local_epochs,
        batch_size: cfg.batch_size,
        seed: session.seed,
    };
    let session_start = std::time::Instant::now();
    let out = ctx.train_client(&setting, t);
    let elapsed = session_start.elapsed();
    let secs = elapsed.as_secs_f64();
    t.observe("client.duration_s", secs);
    if secs > 0.0 {
        let processed = (session.samples.len() * cfg.local_epochs.max(1)) as f64;
        t.observe("client.samples_per_sec", processed / secs);
    }
    (out, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX))
}

/// Resolves a user-facing thread-count request: `0` means "all available
/// parallelism", anything else is taken literally.
fn resolve_threads(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        n
    }
}

/// Default thread count: the `REFIL_THREADS` environment variable when set
/// and parseable (`0` = all cores), otherwise 1 (sequential).
fn threads_from_env() -> usize {
    match std::env::var("REFIL_THREADS") {
        Ok(raw) => raw
            .trim()
            .parse::<usize>()
            .map(resolve_threads)
            .unwrap_or(1),
        Err(_) => 1,
    }
}

/// Builder-style entry point for executing the full FDIL protocol of
/// Algorithm 1.
///
/// ```no_run
/// # use refil_fed::{FdilRunner, FdilStrategy, RunConfig, Telemetry};
/// # fn demo(dataset: &refil_data::FdilDataset, strategy: &mut dyn FdilStrategy) {
/// let telemetry = Telemetry::disabled();
/// let result = FdilRunner::new(RunConfig::default())
///     .telemetry(&telemetry)
///     .threads(4)
///     .run(dataset, strategy);
/// # let _ = result;
/// # }
/// ```
///
/// Client sessions within a round execute on `threads` scoped workers; the
/// result is byte-for-byte identical at any thread count (see the module
/// docs for why). By default every exchange is encoded through the
/// `refil-wire` codec and moved over an in-memory [`Loopback`] link pair;
/// [`FdilRunner::direct`] bypasses the codec (identical results, same
/// measured traffic via `WireMessage::encoded_len`),
/// [`FdilRunner::run_with_links`] plugs in custom links, and
/// [`FdilRunner::serve`] drives the same protocol over real sockets.
#[derive(Debug)]
pub struct FdilRunner {
    cfg: RunConfig,
    telemetry: Telemetry,
    threads: usize,
    clamp: bool,
    direct: bool,
    /// Lazily-created persistent worker pool, sized to
    /// [`FdilRunner::effective_threads`] on the first dispatch that wants
    /// more than one worker and reused for every round and eval sweep after.
    pool: OnceLock<Arc<WorkerPool>>,
}

impl Clone for FdilRunner {
    /// Clones the configuration, not the pool: each clone lazily builds its
    /// own worker pool, so clones can run concurrently without serializing
    /// on shared workers.
    fn clone(&self) -> Self {
        Self {
            cfg: self.cfg,
            telemetry: self.telemetry.clone(),
            threads: self.threads,
            clamp: self.clamp,
            direct: self.direct,
            pool: OnceLock::new(),
        }
    }
}

impl FdilRunner {
    /// A runner for `cfg` with telemetry disabled and the thread count taken
    /// from [`RunConfig::threads`] when nonzero, otherwise from the
    /// `REFIL_THREADS` environment variable (default 1).
    pub fn new(cfg: RunConfig) -> Self {
        let threads = if cfg.threads == 0 {
            threads_from_env()
        } else {
            resolve_threads(cfg.threads)
        };
        Self {
            cfg,
            telemetry: Telemetry::disabled(),
            threads,
            clamp: true,
            direct: false,
            pool: OnceLock::new(),
        }
    }

    /// Records spans, counters, and histograms into `telemetry` during the
    /// run. Handles are cheap clones sharing one collector.
    #[must_use]
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Sets the number of worker threads for client sessions. `0` means all
    /// available parallelism; `1` runs sessions inline on the driver thread.
    /// Results are identical for every value.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads);
        self.pool = OnceLock::new();
        self
    }

    /// Controls whether the worker count is clamped to the machine's
    /// available parallelism (default `true`). Oversubscribing threads past
    /// physical cores only adds spawn and contention cost — the clamp is
    /// what lets callers say `.threads(16)` portably. Disable it only to
    /// deliberately oversubscribe (e.g. pool-scheduling tests that need
    /// more workers than this machine has cores).
    #[must_use]
    pub fn clamp_threads(mut self, clamp: bool) -> Self {
        self.clamp = clamp;
        self.pool = OnceLock::new();
        self
    }

    /// The run configuration this runner was built with.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// The requested worker-thread count (`0` already resolved to all
    /// cores). See [`FdilRunner::effective_threads`] for the count actually
    /// dispatched.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The worker count dispatches actually use: the requested count clamped
    /// to available parallelism (unless [`FdilRunner::clamp_threads`]
    /// disabled the clamp).
    pub fn effective_threads(&self) -> usize {
        if self.clamp {
            self.threads.min(resolve_threads(0))
        } else {
            self.threads
        }
    }

    /// The persistent worker pool, created on first use at the effective
    /// worker count.
    fn pool(&self) -> &WorkerPool {
        self.pool
            .get_or_init(|| Arc::new(WorkerPool::new(self.effective_threads())))
    }

    /// Bypasses the wire codec: typed messages move in memory without being
    /// encoded, while [`TrafficStats`] still reports the identical
    /// encoded-frame sizes via `WireMessage::encoded_len`. Because the codec
    /// is bit-exact, results are byte-identical either way — this path exists
    /// to *prove* that (the wire-vs-direct equivalence tests) and to skip
    /// codec overhead in tight experiment sweeps.
    #[must_use]
    pub fn direct(mut self, direct: bool) -> Self {
        self.direct = direct;
        self
    }

    /// Executes the full FDIL protocol for `strategy` on `dataset`.
    ///
    /// Unless [`FdilRunner::direct`] was set, every exchange is encoded and
    /// moved through a fresh in-memory [`Loopback`] pair (downlink + uplink).
    ///
    /// The span hierarchy is `run > task:<t> > round:<r> > client:<c>`, with
    /// sibling `fedavg` and `evaluate_domain` spans; client spans are emitted
    /// from worker threads but reparented under their round. The
    /// `traffic.up_bytes` / `traffic.down_bytes` counters mirror
    /// [`TrafficStats::record_client`] exactly, so their final totals in the
    /// trace equal the run's [`TrafficStats`]; sibling `wire.<kind>_bytes`
    /// counters break the same bytes down per message kind. Neither
    /// telemetry, the thread count, nor the codec path touches the run's RNG
    /// streams: results are identical whichever sink (or none) is installed,
    /// however many workers run, and whether frames are encoded or not.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`RunConfig::validate`] (construct configs via
    /// [`RunConfig::builder`] to catch this early as a typed
    /// [`crate::ConfigError`]), if the dataset has no domains, or if a
    /// domain has no test data.
    pub fn run(&self, dataset: &FdilDataset, strategy: &mut dyn FdilStrategy) -> RunResult {
        if self.direct {
            self.run_inner(dataset, strategy, None, None)
        } else {
            let downlink = Loopback::new();
            let uplink = Loopback::new();
            self.run_inner(dataset, strategy, Some((&downlink, &uplink)), None)
        }
    }

    /// Like [`FdilRunner::run`], but moves every frame over caller-supplied
    /// links (`downlink` server→client, `uplink` client→server) instead of a
    /// private loopback pair — the hook for delayed, faulty, or compressed
    /// in-process links.
    ///
    /// Both links must be *echo* links in the [`Loopback`] sense: the driver
    /// plays both ends, so every frame it sends on a link must come back out
    /// of that same link's [`Link::recv_deadline`] (possibly transformed).
    /// For real peer-to-peer sockets use [`FdilRunner::serve`] instead.
    ///
    /// # Panics
    ///
    /// Panics like [`FdilRunner::run`], and additionally if a link errors,
    /// delivers no frame within 60 s, or delivers one that fails to decode.
    pub fn run_with_links(
        &self,
        dataset: &FdilDataset,
        strategy: &mut dyn FdilStrategy,
        downlink: &dyn Link,
        uplink: &dyn Link,
    ) -> RunResult {
        self.run_inner(dataset, strategy, Some((downlink, uplink)), None)
    }

    /// Runs the full FDIL protocol as a long-lived federation server: client
    /// processes connect through `listener`, planned sessions are assigned
    /// round-robin over the connected peers, trained remotely, and collected
    /// under the per-round deadline of [`RunConfig::net`]. Sessions whose
    /// results miss the deadline (stragglers, crashed peers) are counted as
    /// `clients_late` in that round's [`RoundReport`] and the round completes
    /// with partial participation.
    ///
    /// `spec` is an opaque run-description string handed to every joining
    /// peer in its `Welcome` frame (conventionally JSON naming the dataset,
    /// method, and seed so the peer can build its replica).
    ///
    /// The server blocks until at least [`crate::NetConfig::min_peers`] peers
    /// have joined, then admits further joiners at round boundaries; a peer
    /// joining mid-run is caught up from a replay log of task/round sync
    /// frames. When every peer stays connected and on time, the run's
    /// semantic outputs (accuracies, traffic, per-kind wire bytes) are
    /// byte-identical to [`FdilRunner::run`] with the same config.
    ///
    /// # Panics
    ///
    /// Panics like [`FdilRunner::run`]. Peer failures never panic — they
    /// surface as `clients_late` and `net.peers_left` telemetry.
    pub fn serve(
        &self,
        dataset: &FdilDataset,
        strategy: &mut dyn FdilStrategy,
        listener: &dyn Listener,
        spec: &str,
    ) -> RunResult {
        // The serve path compresses when the run config asks for it or the
        // strategy restricts the exchanged coordinates during any task; the
        // negotiated spec goes out in every codec-aware peer's `Welcome`.
        let wire_spec = self.cfg.wire.spec();
        let masks_any_task =
            (0..dataset.num_domains()).any(|t| strategy.exchange_mask(t as u64).is_some());
        let compression = (wire_spec.is_active() || masks_any_task).then_some(wire_spec);
        let mut state = ServeState::new(
            listener,
            spec,
            self.cfg.net,
            compression,
            self.telemetry.clone(),
        );
        state.wait_for_peers();
        self.run_inner(dataset, strategy, None, Some(&mut state))
    }

    fn run_inner(
        &self,
        dataset: &FdilDataset,
        strategy: &mut dyn FdilStrategy,
        wire: Option<(&dyn Link, &dyn Link)>,
        mut serve: Option<&mut ServeState<'_>>,
    ) -> RunResult {
        let cfg = &self.cfg;
        let telemetry = &self.telemetry;
        if let Err(err) = cfg.validate() {
            panic!("invalid RunConfig: {err}");
        }
        assert!(dataset.num_domains() > 0, "dataset has no domains");
        let num_tasks = dataset.num_domains();
        let schedules = build_schedule(&cfg.increment, num_tasks, cfg.seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);

        strategy.attach_telemetry(telemetry);
        let _run_span = telemetry.span("run");
        telemetry.info(format!(
            "run start: method={} dataset={} tasks={} seed={} threads={}",
            strategy.name(),
            dataset.name,
            num_tasks,
            cfg.seed,
            self.threads
        ));

        let mut global = strategy.init_global();
        let downlink = wire.map(|(down, _)| down);
        let uplink = wire.map(|(_, up)| up);
        // Uplink compression: active when the config asks for delta/quant/
        // top-k or the strategy exchanges only a subset of coordinates in
        // some task. The server reconstructs compressed updates against its
        // own broadcast history, keyed by the (task, round) tag clients echo
        // back. The mask itself is refreshed per task (it may be `None` for
        // a warm-up task and restrictive afterwards); a round sends
        // compressed frames only when the spec is lossy or the current
        // task's mask restricts the exchange — the exact condition remote
        // clients apply, keeping loopback and networked runs byte-identical.
        let wire_spec = cfg.wire.spec();
        let masks_any_task = (0..num_tasks).any(|t| strategy.exchange_mask(t as u64).is_some());
        let round_compression = (wire_spec.is_active() || masks_any_task).then_some(wire_spec);
        let mut broadcast_history: std::collections::VecDeque<((u32, u32), Vec<f32>)> =
            std::collections::VecDeque::new();
        let mut holdings: Vec<Holdings> = Vec::new();
        let mut traffic = TrafficStats::default();
        let mut domain_acc: Vec<Vec<f32>> = Vec::with_capacity(num_tasks);
        let mut group_timeline = Vec::with_capacity(num_tasks);
        let mut rounds_reports: Vec<RoundReport> = Vec::new();

        for (task, schedule) in schedules.iter().enumerate() {
            let _task_span = telemetry.span(&format!("task:{task}"));
            traffic.start_task(task);
            strategy.on_task_start(task, &global);
            let exchange_mask = strategy.exchange_mask(task as u64);
            let task_compression =
                round_compression.filter(|s| s.is_active() || exchange_mask.is_some());

            // Distribute the new domain's training data among recipients.
            distribute_task_data(&mut holdings, schedule, dataset, cfg, task);
            if let Some(srv) = serve.as_deref_mut() {
                srv.begin_task(task, &global);
            }

            let rounds = cfg.increment.rounds_per_task;
            group_timeline.push([
                schedule.group_sizes(0),
                schedule.group_sizes(rounds / 2),
                schedule.group_sizes(rounds.saturating_sub(1)),
            ]);

            for round in 0..rounds {
                let _round_span = telemetry.span(&format!("round:{round}"));
                let round_start = std::time::Instant::now();
                let round_t0 = telemetry.now_ns();
                let mut report = RoundReport {
                    task: task as u64,
                    round: round as u64,
                    ..RoundReport::default()
                };

                // Pre-draw all per-round randomness before any session runs,
                // in the exact order the sequential driver consumed it:
                // selection first, then one dropout draw per selected client
                // (only when dropout is enabled, and before the empty-sample
                // check). The RNG stream is thus independent of thread count.
                let selected = select_clients(schedule, cfg.increment.select_per_round, &mut rng);
                let mut sessions: Vec<PlannedSession<'_>> = Vec::with_capacity(selected.len());
                for &cid in &selected {
                    if cfg.dropout_prob > 0.0 && rng.gen::<f32>() < cfg.dropout_prob {
                        telemetry.counter("clients.dropped", 1);
                        report.clients_dropped += 1;
                        continue; // straggler: selected but never reports
                    }
                    let plan = &schedule.clients[cid];
                    let group = plan.group_at(round);
                    let samples: &[Sample] = holdings[cid].for_group(group);
                    if samples.is_empty() {
                        continue;
                    }
                    sessions.push(PlannedSession {
                        cid,
                        task,
                        round,
                        group,
                        samples,
                        seed: session_seed(cfg.seed, task, round, cid),
                    });
                }

                // Sampled participation: keep a seed-deterministic subset of
                // the planned sessions. This runs on the shared path (before
                // the serve/local fork) with its own RNG stream, so enabling
                // it never perturbs selection or dropout draws, and loopback
                // and networked runs sample identically.
                if let Some(keep) = cfg.net.sample_size(sessions.len()) {
                    let removed = (sessions.len() - keep) as u64;
                    let mut sampler = StdRng::seed_from_u64(sample_seed(cfg.seed, task, round));
                    let mut order: Vec<usize> = (0..sessions.len()).collect();
                    for i in 0..keep {
                        // Partial Fisher–Yates: the first `keep` entries are
                        // a uniform draw without replacement.
                        let j = i + (sampler.gen::<u64>() as usize) % (order.len() - i);
                        order.swap(i, j);
                    }
                    let mut kept = vec![false; sessions.len()];
                    for &i in &order[..keep] {
                        kept[i] = true;
                    }
                    let mut slot = 0;
                    sessions.retain(|_| {
                        let keep_this = kept[slot];
                        slot += 1;
                        keep_this
                    });
                    telemetry.counter("clients.sampled_out", removed);
                    report.clients_sampled_out = removed;
                }

                // Server → clients: the round's global model (plus any
                // strategy broadcast) travels as encoded frames through the
                // downlink, and sessions train on the *decoded* copy. The
                // direct path moves the same typed messages unencoded while
                // accounting the identical frame sizes; the serve path nests
                // the same encoded frames inside each peer's `RoundStart`.
                let broadcast_start = std::time::Instant::now();
                let broadcast_t0 = telemetry.now_ns();
                let model_msg = WireMessage::ModelBroadcast(ModelBroadcast {
                    task: task as u32,
                    round: round as u32,
                    model: global.clone(),
                });
                let extra_msg = strategy.round_broadcast(task, round);
                let extra_kind = extra_msg.as_ref().map(WireMessage::kind);
                let (round_model, broadcast, model_bytes, extra_bytes) =
                    if let Some(srv) = serve.as_deref_mut() {
                        let model_frame = model_msg.encode();
                        let model_bytes = model_frame.len() as u64;
                        let (extra_frame, extra_bytes) = match extra_msg {
                            Some(msg) => {
                                let frame = msg.encode();
                                let bytes = frame.len() as u64;
                                (Some(frame), bytes)
                            }
                            None => (None, 0),
                        };
                        let assignments: Vec<SessionAssignment> = sessions
                            .iter()
                            .map(|s| SessionAssignment {
                                client_id: s.cid as u64,
                                group: group_code(s.group),
                                seed: s.seed,
                            })
                            .collect();
                        srv.begin_round(task, round, &assignments, model_frame, extra_frame);
                        (Vec::new(), None, model_bytes, extra_bytes)
                    } else {
                        let (model_out, model_bytes) = roundtrip(downlink, model_msg);
                        let WireMessage::ModelBroadcast(model_out) = model_out else {
                            panic!("downlink delivered a non-ModelBroadcast frame");
                        };
                        let (broadcast, extra_bytes) = match extra_msg {
                            Some(msg) => {
                                let (decoded, bytes) = roundtrip(downlink, msg);
                                (Some(decoded), bytes)
                            }
                            None => (None, 0),
                        };
                        (model_out.model, broadcast, model_bytes, extra_bytes)
                    };
                if round_compression.is_some() {
                    // Remember what this round's broadcast said, so client
                    // updates delta-encoded against it can be reconstructed.
                    // The codec is bit-exact for f32, so the server-side
                    // `global` equals the decoded broadcast every client
                    // applied. A short history tolerates results that arrive
                    // tagged with an earlier round's base.
                    broadcast_history.push_back(((task as u32, round as u32), global.clone()));
                    while broadcast_history.len() > 8 {
                        broadcast_history.pop_front();
                    }
                }
                let down_bytes = model_bytes + extra_bytes;
                report.phases.broadcast = elapsed_ns(broadcast_start);
                telemetry.timeline_span(0, "broadcast", broadcast_t0, report.phases.broadcast);

                // Dispatch sessions against the shared read-only context;
                // outputs are indexed by session slot so completion order is
                // irrelevant. `select_clients` returns ids ascending, so slot
                // order == client-id order.
                //
                // Profiling rides along without touching scheduling: each
                // worker owns a preallocated timeline lane (ticks only, no
                // allocation per item) and harvests its thread's scratch
                // stats; lanes merge into per-worker busy/idle/steal
                // accounting after the join, off the hot path.
                let round_path = telemetry.current_path();
                let timeline = telemetry.timeline();
                let train_start = std::time::Instant::now();
                let train_t0 = telemetry.now_ns();
                let (mut outputs, train_pool, train_scratch): (
                    RoundOutputs,
                    Option<PoolStats>,
                    ArenaStats,
                ) = if let Some(srv) = serve.as_deref_mut() {
                    // Remote path: peers train their assigned sessions; the
                    // driver blocks (without spinning) until every result is
                    // in or the round deadline passes.
                    let deadline = std::time::Instant::now()
                        + std::time::Duration::from_millis(cfg.net.round_deadline_ms);
                    let slots = srv.collect(deadline);
                    (RoundOutputs::Remote(slots), None, ArenaStats::default())
                } else {
                    let ctx = strategy.round_ctx(task, round, &round_model, broadcast.as_ref());
                    let workers = self.effective_threads().min(sessions.len());
                    if workers <= 1 {
                        let t = telemetry.scoped(&round_path);
                        let mut lane = timeline.lane(0);
                        let _ = refil_nn::take_scratch_stats();
                        let outputs: SessionSlots = sessions
                            .iter()
                            .map(|s| {
                                let start = lane.tick();
                                let (out, duration_ns) = run_session(&*ctx, s, cfg, &t);
                                lane.record("client", Some(s.cid as u64), start);
                                let stat = SessionStat {
                                    client_id: s.cid as u64,
                                    track: 1,
                                    duration_ns,
                                };
                                Some((out, stat))
                            })
                            .collect();
                        let scratch = arena_stats(refil_nn::take_scratch_stats());
                        let wall = timeline.tick().saturating_sub(train_t0);
                        (
                            RoundOutputs::Local(outputs),
                            timeline.merge(&[&lane], wall),
                            scratch,
                        )
                    } else {
                        let pool = self.pool();
                        let _dispatch = pool.serialize();
                        let next = AtomicUsize::new(0);
                        let slots: Mutex<SessionSlots> =
                            Mutex::new(sessions.iter().map(|_| None).collect());
                        let worker_scratch: Mutex<Vec<ArenaStats>> =
                            Mutex::new(vec![ArenaStats::default(); workers]);
                        pool.run(workers, &|slot| {
                            let t = telemetry.scoped(&round_path);
                            let mut lane = pool.lane(slot);
                            timeline.rearm(&mut lane, slot);
                            let track = slot as u32 + 1;
                            let ctx = &*ctx;
                            let _ = refil_nn::take_scratch_stats();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(session) = sessions.get(i) else {
                                    break;
                                };
                                let start = lane.tick();
                                let (out, duration_ns) = run_session(ctx, session, cfg, &t);
                                lane.record("client", Some(session.cid as u64), start);
                                let stat = SessionStat {
                                    client_id: session.cid as u64,
                                    track,
                                    duration_ns,
                                };
                                slots.lock().expect("session slots poisoned")[i] =
                                    Some((out, stat));
                            }
                            worker_scratch.lock().expect("scratch slots poisoned")[slot] =
                                arena_stats(refil_nn::take_scratch_stats());
                        });
                        let mut scratch = ArenaStats::default();
                        for s in worker_scratch.into_inner().expect("scratch slots poisoned") {
                            scratch.merge(&s);
                        }
                        let wall = timeline.tick().saturating_sub(train_t0);
                        let guards: Vec<_> = (0..workers).map(|s| pool.lane(s)).collect();
                        let lanes: Vec<&Lane> = guards.iter().map(|g| &**g).collect();
                        let pool_stats = timeline.merge(&lanes, wall);
                        drop(lanes);
                        drop(guards);
                        (
                            RoundOutputs::Local(
                                slots.into_inner().expect("session slots poisoned"),
                            ),
                            pool_stats,
                            scratch,
                        )
                    }
                };
                report.phases.train = elapsed_ns(train_start);
                telemetry.timeline_span(0, "train", train_t0, report.phases.train);
                report.train_pool = train_pool;
                report.scratch.merge(&train_scratch);

                // Clients → server: each update (and optional merge message)
                // is encoded, sent up the uplink, decoded, and consumed in
                // session (= client-id) order, so FedAvg inputs, traffic
                // accounting, and merges are deterministic.
                let aggregate_start = std::time::Instant::now();
                let aggregate_t0 = telemetry.now_ns();
                let mut updates = Vec::with_capacity(sessions.len());
                let mut merges: Vec<(usize, WireMessage)> = Vec::new();
                for (i, session) in sessions.iter().enumerate() {
                    // Normalize both paths to the same shape: the decoded
                    // update, its frame bytes, the optional decoded merge
                    // with its frame bytes, and the session stat. `None`
                    // means the result never arrived (remote path only).
                    let collected = match &mut outputs {
                        RoundOutputs::Local(slots) => {
                            let (out, stat) = slots[i].take().expect("planned session never ran");
                            // On the in-process paths the driver plays both
                            // roles: it builds exactly the uplink frame a
                            // remote client would (compressed against the
                            // round's decoded broadcast when compression is
                            // on), moves it through the uplink, and consumes
                            // the decoded result below like a remote one.
                            let update_msg = if let Some(spec) = task_compression {
                                WireMessage::CompressedModelUpdate(CompressedModelUpdate::compress(
                                    &spec,
                                    exchange_mask.as_deref(),
                                    session.cid as u64,
                                    out.update.weight,
                                    &out.update.flat,
                                    &round_model,
                                    task as u32,
                                    round as u32,
                                ))
                            } else {
                                WireMessage::ClientModelUpdate(WireClientModelUpdate {
                                    client_id: session.cid as u64,
                                    weight: out.update.weight,
                                    model: out.update.flat,
                                })
                            };
                            let (update_out, update_bytes) = roundtrip(uplink, update_msg);
                            let update_out = match update_out {
                                WireMessage::ClientModelUpdate(u) => RemoteUpdate::Plain(u),
                                WireMessage::CompressedModelUpdate(c) => {
                                    RemoteUpdate::Compressed(c)
                                }
                                _ => panic!("uplink delivered a non-model-update frame"),
                            };
                            let merge = out.merge.map(|msg| roundtrip(uplink, msg));
                            Some((update_out, update_bytes, merge, stat))
                        }
                        RoundOutputs::Remote(slots) => slots[i]
                            .take()
                            .map(|r| (r.update, r.update_bytes, r.merge, r.stat)),
                    };
                    let Some((update_out, update_bytes, merge, stat)) = collected else {
                        // Straggler or dead peer: the round proceeds without
                        // this session and no bytes are accounted for it.
                        telemetry.counter("clients.late", 1);
                        report.clients_late += 1;
                        continue;
                    };
                    // The raw column is what the same update would have cost
                    // as a dense `ClientModelUpdate` frame; encoded is what
                    // actually moved. Equal unless compression is active.
                    let (update_kind, raw_bytes) = match &update_out {
                        RemoteUpdate::Plain(_) => ("client_model_update", update_bytes),
                        RemoteUpdate::Compressed(c) => {
                            ("compressed_model_update", c.uncompressed_frame_len() as u64)
                        }
                    };
                    // Reconstruct a compressed update against the broadcast
                    // it names before any bytes are accounted, so a session
                    // that cannot be applied counts as late, not trained.
                    let update = match update_out {
                        RemoteUpdate::Plain(u) => WeightedUpdate {
                            flat: u.model,
                            weight: u.weight,
                        },
                        RemoteUpdate::Compressed(c) => {
                            let flat = broadcast_history
                                .iter()
                                .rev()
                                .find(|(tag, _)| *tag == (c.base_task, c.base_round))
                                .and_then(|(_, base)| c.reconstruct(base).ok());
                            let Some(flat) = flat else {
                                telemetry.counter("clients.late", 1);
                                report.clients_late += 1;
                                continue;
                            };
                            WeightedUpdate {
                                flat,
                                weight: c.weight,
                            }
                        }
                    };
                    report.sessions.push(stat);
                    let mut up_bytes = update_bytes;
                    telemetry.counter(&format!("wire.{update_kind}_bytes"), update_bytes);
                    bump_wire(&mut report.wire_bytes, update_kind, update_bytes);
                    report.uplink_raw_bytes += raw_bytes;
                    report.uplink_encoded_bytes += update_bytes;
                    if let Some((decoded, bytes)) = merge {
                        up_bytes += bytes;
                        let kind = decoded.kind().name();
                        telemetry.counter(&format!("wire.{kind}_bytes"), bytes);
                        bump_wire(&mut report.wire_bytes, kind, bytes);
                        merges.push((session.cid, decoded));
                    }
                    traffic.record_client(up_bytes, down_bytes);
                    // Mirror record_client exactly so trace totals match traffic.
                    telemetry.counter("traffic.up_bytes", up_bytes);
                    telemetry.counter("traffic.down_bytes", down_bytes);
                    telemetry.counter("wire.model_broadcast_bytes", model_bytes);
                    bump_wire(&mut report.wire_bytes, "model_broadcast", model_bytes);
                    if let Some(kind) = extra_kind {
                        telemetry.counter(&format!("wire.{}_bytes", kind.name()), extra_bytes);
                        bump_wire(&mut report.wire_bytes, kind.name(), extra_bytes);
                    }
                    telemetry.counter("clients.trained", 1);
                    report.clients_trained += 1;
                    updates.push(update);
                }
                if !updates.is_empty() {
                    let _fedavg_span = telemetry.span("fedavg");
                    global = fedavg(&updates);
                }
                if let Some(srv) = serve.as_deref_mut() {
                    // Sync every peer (and the replay log) with the new
                    // global and the full ordered merge sequence, so each
                    // client replica ingests exactly what the server does.
                    srv.finish_round(task, round, &global, &merges);
                }
                traffic.record_round();
                telemetry.counter("rounds", 1);
                report.phases.aggregate = elapsed_ns(aggregate_start);
                telemetry.timeline_span(0, "aggregate", aggregate_t0, report.phases.aggregate);
                let merge_start = std::time::Instant::now();
                let merge_t0 = telemetry.now_ns();
                for (cid, message) in merges {
                    strategy.merge_client(task, round, cid, message);
                }
                strategy.on_round_end(task, round, &global);
                report.phases.merge = elapsed_ns(merge_start);
                telemetry.timeline_span(0, "merge", merge_t0, report.phases.merge);
                report.wall_ns = elapsed_ns(round_start);
                telemetry.timeline_span(0, "round", round_t0, report.wall_ns);
                rounds_reports.push(report);
            }

            // Task-end hook: expose each client's effective data (for Fisher etc.).
            let client_data = collect_client_data(&holdings, schedule, rounds);
            strategy.on_task_end(task, &global, &client_data);

            // Clients that saw the new domain carry it forward as their data.
            carry_forward(&mut holdings, schedule);
            if let Some(srv) = serve.as_deref_mut() {
                srv.end_task(task, &global);
            }

            // Evaluate on every domain seen so far, fanning (domain, batch)
            // work items across the same worker pool the training rounds use.
            // The sweep's profile (pool stats, arena stats, wall time) is
            // attributed to the round that closed the task.
            let eval_start = std::time::Instant::now();
            let eval_t0 = telemetry.now_ns();
            let (row, eval_pool, eval_scratch) =
                self.evaluate_task_profiled(strategy, &global, dataset, task);
            let eval_ns = elapsed_ns(eval_start);
            telemetry.timeline_span(0, "eval", eval_t0, eval_ns);
            if let Some(last) = rounds_reports.last_mut() {
                last.phases.eval = eval_ns;
                last.wall_ns += eval_ns;
                last.eval_pool = eval_pool;
                last.eval_domain_acc = Some(row.clone());
                last.scratch.merge(&eval_scratch);
            }
            for &acc in &row {
                telemetry.observe("eval.domain_acc", f64::from(acc));
            }
            let step_acc = row.iter().sum::<f32>() / row.len() as f32;
            telemetry.info(format!("task {task} done: step accuracy {step_acc:.2}%"));
            domain_acc.push(row);
        }

        if let Some(srv) = serve {
            srv.finish_run();
        }
        telemetry.info(format!(
            "run done: {} rounds, {} client updates, {} bytes total",
            traffic.rounds,
            traffic.client_updates,
            traffic.total_bytes()
        ));
        drop(_run_span);
        telemetry.flush();

        RunResult {
            method: strategy.name(),
            dataset: dataset.name.clone(),
            domain_names: dataset.domains.iter().map(|d| d.name.clone()).collect(),
            domain_acc,
            traffic,
            group_timeline,
            final_global: global,
            telemetry: telemetry.summary(),
            rounds: rounds_reports,
        }
    }

    /// Evaluates the global model on every domain seen up to `task`
    /// (inclusive), returning one accuracy (%) per domain.
    ///
    /// Work is chunked at *domain* granularity: each item walks one
    /// domain's test split in [`EVAL_BLOCK`]-row `[n, dim]` tensors, so the
    /// kernel layer sees wide multi-RHS GEMMs that stay cache-resident
    /// instead of dozens of thin per-batch ones (or one domain-wide forward
    /// whose activations spill L1). Because every forward op is
    /// row-independent (GEMM accumulates each output element in a fixed
    /// ascending-k chain regardless of how many rows are in flight;
    /// LayerNorm/softmax/attention are per-row), the predictions are
    /// bit-identical to the fine-grained batched sweep — pinned against
    /// [`evaluate_domain`] in the test suite.
    ///
    /// Items are fanned across the runner's persistent worker pool; each
    /// worker holds its own [`DomainEvaluator`] (and thus its own reusable
    /// tape-free inference session) over the one shared [`EvalContext`].
    /// Per-item correct counts land in slots indexed by plan order, so the
    /// result is byte-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if a domain in `0..=task` has no test data, or if a worker
    /// panics.
    pub fn evaluate_task(
        &self,
        strategy: &dyn FdilStrategy,
        global: &[f32],
        dataset: &FdilDataset,
        task: usize,
    ) -> Vec<f32> {
        self.evaluate_task_profiled(strategy, global, dataset, task)
            .0
    }

    /// Like [`FdilRunner::evaluate_task`], but also returns the sweep's
    /// per-worker [`PoolStats`] (None when telemetry is disabled — lanes
    /// record nothing) and the scratch-arena accounting harvested from the
    /// eval workers. This is the utilization report behind the parallel-eval
    /// diagnosis: busy/idle/steal per worker over the sweep's wall time.
    pub fn evaluate_task_profiled(
        &self,
        strategy: &dyn FdilStrategy,
        global: &[f32],
        dataset: &FdilDataset,
        task: usize,
    ) -> (Vec<f32>, Option<PoolStats>, ArenaStats) {
        let telemetry = &self.telemetry;
        let mut items: Vec<EvalItem<'_>> = Vec::with_capacity(task + 1);
        for domain in 0..=task {
            let test = &dataset.domains[domain].test;
            assert!(!test.is_empty(), "domain {domain} has no test data");
            items.push(EvalItem {
                domain,
                chunk: test,
            });
        }
        let eval_path = telemetry.current_path();
        let timeline = telemetry.timeline();
        let sweep_t0 = timeline.tick();
        let ctx = strategy.eval_ctx(global);
        let workers = self.effective_threads().min(items.len());
        let (counts, pool_stats, scratch): (Vec<usize>, Option<PoolStats>, ArenaStats) =
            if workers <= 1 {
                let t = telemetry.scoped(&eval_path);
                let mut lane = timeline.lane(0);
                let _ = refil_nn::take_scratch_stats();
                let mut evaluator = ctx.evaluator();
                let mut staging = Vec::new();
                let counts = items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| {
                        let start = lane.tick();
                        let correct = eval_item(&mut *evaluator, item, &mut staging, &t);
                        lane.record("eval", Some(i as u64), start);
                        correct
                    })
                    .collect();
                let scratch = arena_stats(refil_nn::take_scratch_stats());
                let wall = timeline.tick().saturating_sub(sweep_t0);
                (counts, timeline.merge(&[&lane], wall), scratch)
            } else {
                let pool = self.pool();
                let _dispatch = pool.serialize();
                let next = AtomicUsize::new(0);
                let slots: Mutex<Vec<Option<usize>>> = Mutex::new(vec![None; items.len()]);
                let worker_scratch: Mutex<Vec<ArenaStats>> =
                    Mutex::new(vec![ArenaStats::default(); workers]);
                pool.run(workers, &|slot| {
                    let t = telemetry.scoped(&eval_path);
                    let mut lane = pool.lane(slot);
                    timeline.rearm(&mut lane, slot);
                    let ctx = &*ctx;
                    let _ = refil_nn::take_scratch_stats();
                    let mut evaluator = ctx.evaluator();
                    let mut staging = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        let start = lane.tick();
                        let correct = eval_item(&mut *evaluator, item, &mut staging, &t);
                        lane.record("eval", Some(i as u64), start);
                        slots.lock().expect("eval slots poisoned")[i] = Some(correct);
                    }
                    worker_scratch.lock().expect("scratch slots poisoned")[slot] =
                        arena_stats(refil_nn::take_scratch_stats());
                });
                let mut scratch = ArenaStats::default();
                for s in worker_scratch.into_inner().expect("scratch slots poisoned") {
                    scratch.merge(&s);
                }
                let wall = timeline.tick().saturating_sub(sweep_t0);
                let guards: Vec<_> = (0..workers).map(|s| pool.lane(s)).collect();
                let lanes: Vec<&Lane> = guards.iter().map(|g| &**g).collect();
                let pool_stats = timeline.merge(&lanes, wall);
                drop(lanes);
                drop(guards);
                let counts = slots
                    .into_inner()
                    .expect("eval slots poisoned")
                    .into_iter()
                    .map(|c| c.expect("planned eval item never ran"))
                    .collect();
                (counts, pool_stats, scratch)
            };
        let row = items
            .iter()
            .zip(&counts)
            .map(|(item, &correct)| 100.0 * correct as f32 / item.chunk.len() as f32)
            .collect();
        (row, pool_stats, scratch)
    }
}

/// Adds `bytes` to the per-round wire-bytes map under `kind`, allocating the
/// key only on first occurrence per round.
fn bump_wire(map: &mut std::collections::BTreeMap<String, u64>, kind: &str, bytes: u64) {
    match map.get_mut(kind) {
        Some(slot) => *slot += bytes,
        None => {
            map.insert(kind.to_string(), bytes);
        }
    }
}

/// One planned unit of evaluation work: a slice of one domain's test split.
/// The runner's sweep plans one item per domain (coarse scheduling; the
/// item itself forwards in [`EVAL_BLOCK`]-row blocks); [`evaluate_domain`]
/// plans one per `eval_batch` chunk.
struct EvalItem<'a> {
    domain: usize,
    chunk: &'a [Sample],
}

/// Samples staged per multi-RHS forward inside one eval item. Wider batches
/// amortize plan replay, but past ~64 rows the activation working set
/// spills L1 and data movement starts dominating the GEMMs (measured in
/// `BENCH_eval.json`: a whole-domain forward is slower than 64-row blocks
/// despite fewer plan replays). The block split is positional and constant
/// — independent of worker count — and per-row forward arithmetic doesn't
/// depend on batch width, so results stay byte-identical at any thread
/// count and any block size.
const EVAL_BLOCK: usize = 64;

/// Evaluates one planned item, returning its correct-prediction count. The
/// item's samples run through the evaluator in [`EVAL_BLOCK`]-row multi-RHS
/// forwards.
///
/// `staging` is the worker's reusable feature buffer: it is moved into the
/// batch tensor and reclaimed afterwards, so steady-state evaluation does no
/// per-batch feature allocation. `t` is a handle already scoped under the
/// eval sweep's span path — created once per worker, not per item — so each
/// item's `evaluate_domain` span and `eval.samples` / `eval.batches` /
/// `eval.forward_ns` counters land correctly even from worker threads.
fn eval_item(
    evaluator: &mut dyn DomainEvaluator,
    item: &EvalItem<'_>,
    staging: &mut Vec<f32>,
    t: &Telemetry,
) -> usize {
    let _span = t.span("evaluate_domain");
    let dim = item.chunk[0].features.len();
    let mut correct = 0usize;
    for block in item.chunk.chunks(EVAL_BLOCK) {
        let mut data = std::mem::take(staging);
        data.clear();
        data.reserve(block.len() * dim);
        for s in block {
            data.extend_from_slice(&s.features);
        }
        let features = Tensor::from_vec(data, &[block.len(), dim]);
        let start = std::time::Instant::now();
        let preds = evaluator.predict_domain(&features, item.domain);
        t.counter("eval.forward_ns", start.elapsed().as_nanos() as u64);
        t.counter("eval.batches", 1);
        *staging = features.into_vec();
        correct += preds
            .iter()
            .zip(block)
            .filter(|(p, s)| **p == s.label)
            .count();
    }
    t.counter("eval.samples", item.chunk.len() as u64);
    correct
}

/// Moves one message the way the active path dictates: encoded through the
/// echo link (send → recv → decode) when one is given, or as the typed value
/// itself on the direct path. Byte accounting is identical either way —
/// `WireMessage::encoded_len` always equals the encoded frame's length.
///
/// # Panics
///
/// Panics if the link errors, delivers no frame within 60 s (an echo link
/// has the frame queued already — any wait at all means the link is broken),
/// or delivers one that fails to decode — all fatal protocol violations for
/// the driver.
fn roundtrip(link: Option<&dyn Link>, msg: WireMessage) -> (WireMessage, u64) {
    match link {
        Some(link) => {
            let frame = msg.encode();
            let bytes = frame.len() as u64;
            link.send(&frame).expect("link send failed");
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
            let received = link.recv_deadline(deadline).expect("link recv failed");
            let decoded = WireMessage::decode(&received).expect("received frame failed to decode");
            (decoded, bytes)
        }
        None => {
            let bytes = msg.encoded_len() as u64;
            (msg, bytes)
        }
    }
}

/// Accuracy (%) of the strategy's global model on one domain's test split.
///
/// Batches run serially through a single [`DomainEvaluator`] whose feature
/// staging buffer and inference session are reused across the whole split;
/// the parallel sweep inside [`FdilRunner::evaluate_task`] produces
/// bit-identical numbers.
///
/// # Panics
///
/// Panics if the domain has no test data.
pub fn evaluate_domain(
    strategy: &dyn FdilStrategy,
    global: &[f32],
    dataset: &FdilDataset,
    domain: usize,
    eval_batch: usize,
) -> f32 {
    let test = &dataset.domains[domain].test;
    assert!(!test.is_empty(), "domain {domain} has no test data");
    let ctx = strategy.eval_ctx(global);
    let mut evaluator = ctx.evaluator();
    let mut staging = Vec::new();
    let telemetry = Telemetry::disabled();
    let mut correct = 0usize;
    for chunk in test.chunks(eval_batch.max(1)) {
        let item = EvalItem { domain, chunk };
        correct += eval_item(&mut *evaluator, &item, &mut staging, &telemetry);
    }
    100.0 * correct as f32 / test.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::increment::IncrementConfig;
    use refil_data::{DatasetSpec, DomainSpec};
    use std::time::{Duration, Instant};

    use refil_wire::{PromptGroup, PromptUpload};

    /// A trivial strategy: nearest-class-mean in input space, "trained" by
    /// moving stored class means toward local data. Parameters = flat class
    /// means, so FedAvg is meaningful. Each session also emits a merge
    /// message (a `PromptUpload` whose single prompt's length encodes the
    /// sample count) so the driver's ordered-merge path is exercised.
    struct CentroidStrategy {
        classes: usize,
        dim: usize,
        merged: Vec<(usize, usize, usize)>, // (round, client, samples)
    }

    impl CentroidStrategy {
        fn new(classes: usize, dim: usize) -> Self {
            Self {
                classes,
                dim,
                merged: Vec::new(),
            }
        }
    }

    struct CentroidCtx<'a> {
        classes: usize,
        dim: usize,
        global: &'a [f32],
    }

    impl RoundContext for CentroidCtx<'_> {
        fn train_client(&self, s: &TrainSetting<'_>, _telemetry: &Telemetry) -> SessionOutput {
            let mut flat = self.global.to_vec();
            let mut counts = vec![0usize; self.classes];
            let mut sums = vec![0.0f32; self.classes * self.dim];
            for sample in s.samples {
                counts[sample.label] += 1;
                for (i, &f) in sample.features.iter().enumerate() {
                    sums[sample.label * self.dim + i] += f;
                }
            }
            for k in 0..self.classes {
                if counts[k] > 0 {
                    for i in 0..self.dim {
                        flat[k * self.dim + i] = sums[k * self.dim + i] / counts[k] as f32;
                    }
                }
            }
            SessionOutput {
                update: ClientUpdate {
                    flat,
                    weight: s.samples.len() as f32,
                },
                merge: Some(WireMessage::PromptUpload(PromptUpload {
                    client_id: s.client_id as u64,
                    groups: vec![PromptGroup {
                        client_id: s.client_id as u64,
                        prompts: vec![(0, vec![0.0; s.samples.len()])],
                    }],
                })),
            }
        }
    }

    impl FdilStrategy for CentroidStrategy {
        fn name(&self) -> String {
            "Centroid".into()
        }

        fn init_global(&mut self) -> Vec<f32> {
            vec![0.0; self.classes * self.dim]
        }

        fn round_ctx<'a>(
            &'a self,
            _task: usize,
            _round: usize,
            global: &'a [f32],
            _broadcast: Option<&'a WireMessage>,
        ) -> Box<dyn RoundContext + 'a> {
            Box::new(CentroidCtx {
                classes: self.classes,
                dim: self.dim,
                global,
            })
        }

        fn merge_client(
            &mut self,
            _task: usize,
            round: usize,
            client_id: usize,
            message: WireMessage,
        ) {
            let WireMessage::PromptUpload(upload) = message else {
                panic!("expected a PromptUpload merge message");
            };
            let samples = upload.groups[0].prompts[0].1.len();
            self.merged.push((round, client_id, samples));
        }

        fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
            CentroidEval {
                classes: self.classes,
                dim: self.dim,
                global,
            }
            .predict_domain(features, 0)
        }

        fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a> {
            Box::new(CentroidEval {
                classes: self.classes,
                dim: self.dim,
                global,
            })
        }
    }

    /// Nearest-class-mean prediction is stateless, so one struct serves as
    /// both the shared context and the per-worker evaluator.
    #[derive(Clone, Copy)]
    struct CentroidEval<'a> {
        classes: usize,
        dim: usize,
        global: &'a [f32],
    }

    impl EvalContext for CentroidEval<'_> {
        fn evaluator(&self) -> Box<dyn DomainEvaluator + '_> {
            Box::new(*self)
        }
    }

    impl DomainEvaluator for CentroidEval<'_> {
        fn predict_domain(&mut self, features: &Tensor, _domain: usize) -> Vec<usize> {
            let n = features.shape()[0];
            (0..n)
                .map(|i| {
                    let x = &features.data()[i * self.dim..(i + 1) * self.dim];
                    (0..self.classes)
                        .min_by(|&a, &b| {
                            let da: f32 = x
                                .iter()
                                .zip(&self.global[a * self.dim..(a + 1) * self.dim])
                                .map(|(u, v)| (u - v) * (u - v))
                                .sum();
                            let db: f32 = x
                                .iter()
                                .zip(&self.global[b * self.dim..(b + 1) * self.dim])
                                .map(|(u, v)| (u - v) * (u - v))
                                .sum();
                            da.total_cmp(&db)
                        })
                        .unwrap_or(0)
                })
                .collect()
        }
    }

    fn tiny_dataset() -> FdilDataset {
        DatasetSpec {
            name: "tiny".into(),
            classes: 3,
            feature_dim: 6,
            proto_scale: 3.0,
            within_std: 0.3,
            test_fraction: 0.3,
            signature_dim: 2,
            signature_scale: 0.6,
            domains: vec![
                DomainSpec::new("d0", 120, 0.1, 0.0),
                DomainSpec::new("d1", 120, 0.1, 0.2),
            ],
        }
        .generate(11)
    }

    fn tiny_config() -> RunConfig {
        RunConfig {
            increment: IncrementConfig {
                initial_clients: 4,
                select_per_round: 3,
                increment_per_task: 1,
                transition_fraction: 0.8,
                rounds_per_task: 3,
            },
            local_epochs: 1,
            batch_size: 16,
            quantity_sigma: 0.5,
            eval_batch: 64,
            dropout_prob: 0.0,
            seed: 3,
            threads: 0,
            net: crate::NetConfig::default(),
            wire: crate::WireConfig::default(),
        }
    }

    #[test]
    fn runner_executes_full_protocol() {
        let ds = tiny_dataset();
        let mut strat = CentroidStrategy::new(3, 6);
        let res = FdilRunner::new(tiny_config()).run(&ds, &mut strat);
        assert_eq!(res.domain_acc.len(), 2);
        assert_eq!(res.domain_acc[0].len(), 1);
        assert_eq!(res.domain_acc[1].len(), 2);
        assert_eq!(res.traffic.rounds, 6);
        assert!(res.traffic.client_updates > 0);
        // Centroids on an easy first domain should beat chance (33 %).
        assert!(res.domain_acc[0][0] > 50.0, "acc {:?}", res.domain_acc);
        // Every trained client produced exactly one ordered merge.
        assert_eq!(strat.merged.len() as u64, res.traffic.client_updates);
    }

    #[test]
    fn run_is_deterministic() {
        let ds = tiny_dataset();
        let mut s1 = CentroidStrategy::new(3, 6);
        let mut s2 = CentroidStrategy::new(3, 6);
        let r1 = FdilRunner::new(tiny_config()).run(&ds, &mut s1);
        let r2 = FdilRunner::new(tiny_config()).run(&ds, &mut s2);
        assert_eq!(r1.domain_acc, r2.domain_acc);
    }

    #[test]
    fn parallel_run_matches_sequential_bytes() {
        let ds = tiny_dataset();
        for threads in [2usize, 4, 8] {
            let mut s1 = CentroidStrategy::new(3, 6);
            let mut s2 = CentroidStrategy::new(3, 6);
            let seq = FdilRunner::new(tiny_config()).threads(1).run(&ds, &mut s1);
            let par = FdilRunner::new(tiny_config())
                .threads(threads)
                .run(&ds, &mut s2);
            assert_eq!(seq.final_global, par.final_global, "threads={threads}");
            assert_eq!(seq.domain_acc, par.domain_acc, "threads={threads}");
            assert_eq!(seq.traffic, par.traffic, "threads={threads}");
            // Merge hooks fire in the same (round, client) order too.
            assert_eq!(s1.merged, s2.merged, "threads={threads}");
        }
    }

    #[test]
    fn parallel_run_matches_under_dropout() {
        let ds = tiny_dataset();
        let mut cfg = tiny_config();
        cfg.dropout_prob = 0.4;
        let mut s1 = CentroidStrategy::new(3, 6);
        let mut s2 = CentroidStrategy::new(3, 6);
        let seq = FdilRunner::new(cfg).threads(1).run(&ds, &mut s1);
        let par = FdilRunner::new(cfg).threads(4).run(&ds, &mut s2);
        assert_eq!(seq.final_global, par.final_global);
        assert_eq!(seq.traffic, par.traffic);
    }

    #[test]
    fn wire_and_direct_paths_are_byte_identical() {
        let ds = tiny_dataset();
        let mut s_wire = CentroidStrategy::new(3, 6);
        let mut s_direct = CentroidStrategy::new(3, 6);
        let wire = FdilRunner::new(tiny_config()).run(&ds, &mut s_wire);
        let direct = FdilRunner::new(tiny_config())
            .direct(true)
            .run(&ds, &mut s_direct);
        assert_eq!(wire.final_global, direct.final_global);
        assert_eq!(wire.domain_acc, direct.domain_acc);
        assert_eq!(wire.traffic, direct.traffic);
        assert_eq!(s_wire.merged, s_direct.merged);
    }

    #[test]
    fn explicit_loopback_links_match_run() {
        let ds = tiny_dataset();
        let mut s1 = CentroidStrategy::new(3, 6);
        let mut s2 = CentroidStrategy::new(3, 6);
        let a = FdilRunner::new(tiny_config()).run(&ds, &mut s1);
        let downlink = refil_wire::Loopback::new();
        let uplink = refil_wire::Loopback::new();
        let b = FdilRunner::new(tiny_config()).run_with_links(&ds, &mut s2, &downlink, &uplink);
        assert_eq!(a.final_global, b.final_global);
        assert_eq!(a.traffic, b.traffic);
        // Every frame sent was also consumed, and no round reported lates
        // on the in-process path.
        assert_eq!(downlink.pending(), 0);
        assert_eq!(uplink.pending(), 0);
        assert!(b.rounds.iter().all(|r| r.clients_late == 0));
    }

    #[test]
    fn traffic_counts_encoded_frame_bytes() {
        let ds = tiny_dataset();
        let mut strat = CentroidStrategy::new(3, 6);
        let res = FdilRunner::new(tiny_config()).run(&ds, &mut strat);
        // Every participating client moves at least one ModelBroadcast down
        // and one ClientModelUpdate up, each a full header + 3*6 f32 model.
        let model_frame = WireMessage::ModelBroadcast(ModelBroadcast {
            task: 0,
            round: 0,
            model: vec![0.0; 18],
        })
        .encoded_len() as u64;
        assert!(res.traffic.down_bytes >= res.traffic.client_updates * model_frame);
        assert!(res.traffic.up_bytes > res.traffic.client_updates * model_frame);
    }

    #[test]
    fn train_once_applies_merge() {
        let ds = tiny_dataset();
        let mut strat = CentroidStrategy::new(3, 6);
        let global = strat.init_global();
        let samples = &ds.domains[0].train[..10];
        let setting = TrainSetting {
            client_id: 7,
            task: 0,
            round: 0,
            group: ClientGroup::New,
            samples,
            local_epochs: 1,
            batch_size: 16,
            seed: 42,
        };
        let update = strat.train_once(&setting, &global);
        assert_eq!(update.flat.len(), global.len());
        assert_eq!(strat.merged, vec![(0, 7, 10)]);
    }

    #[test]
    fn dropout_reduces_client_updates() {
        let ds = tiny_dataset();
        let mut s1 = CentroidStrategy::new(3, 6);
        let r_full = FdilRunner::new(tiny_config()).run(&ds, &mut s1);
        let mut s2 = CentroidStrategy::new(3, 6);
        let mut cfg = tiny_config();
        cfg.dropout_prob = 0.6;
        let r_drop = FdilRunner::new(cfg).run(&ds, &mut s2);
        assert!(
            r_drop.traffic.client_updates < r_full.traffic.client_updates,
            "dropout had no effect: {} vs {}",
            r_drop.traffic.client_updates,
            r_full.traffic.client_updates
        );
        // The protocol must survive rounds where every client drops.
        assert_eq!(r_drop.domain_acc.len(), ds.num_domains());
    }

    #[test]
    #[should_panic(expected = "invalid RunConfig")]
    fn run_rejects_invalid_config() {
        let ds = tiny_dataset();
        let mut cfg = tiny_config();
        cfg.batch_size = 0;
        let mut strat = CentroidStrategy::new(3, 6);
        let _ = FdilRunner::new(cfg).run(&ds, &mut strat);
    }

    #[test]
    fn metrics_derive_from_domain_matrix() {
        let res = RunResult {
            method: "m".into(),
            dataset: "d".into(),
            domain_names: vec!["a".into(), "b".into()],
            domain_acc: vec![vec![90.0], vec![60.0, 80.0]],
            traffic: TrafficStats::default(),
            group_timeline: vec![],
            final_global: vec![],
            telemetry: TelemetrySummary::default(),
            rounds: vec![],
        };
        let steps = res.step_accuracies();
        assert_eq!(steps, vec![90.0, 70.0]);
        assert!((res.avg_accuracy() - 80.0).abs() < 1e-5);
        assert!((res.last_accuracy() - 70.0).abs() < 1e-5);
        assert_eq!(res.final_domain_accuracies(), &[60.0, 80.0]);
    }

    #[test]
    fn round_reports_cover_every_round_with_phases_and_wire_bytes() {
        let ds = tiny_dataset();
        let mut strat = CentroidStrategy::new(3, 6);
        let telemetry = Telemetry::collecting();
        let res = FdilRunner::new(tiny_config())
            .telemetry(&telemetry)
            .threads(2)
            .run(&ds, &mut strat);
        assert_eq!(res.rounds.len() as u64, res.traffic.rounds);
        let mut trained = 0u64;
        for report in &res.rounds {
            trained += report.clients_trained;
            assert_eq!(report.sessions.len() as u64, report.clients_trained);
            assert!(report.wall_ns > 0);
            assert!(report.phases.train > 0);
            if report.clients_trained > 0 {
                assert!(report.wire_bytes.contains_key("model_broadcast"));
                assert!(report.wire_bytes.contains_key("client_model_update"));
                assert!(report.wire_bytes.contains_key("prompt_upload"));
                // Telemetry was enabled, so pool accounting must be present.
                let pool = report.train_pool.as_ref().expect("train pool stats");
                assert_eq!(pool.total_items(), report.clients_trained);
                assert!(pool.wall_ns > 0);
                // Sessions arrive in client-id order (slot order).
                let ids: Vec<u64> = report.sessions.iter().map(|s| s.client_id).collect();
                let mut sorted = ids.clone();
                sorted.sort_unstable();
                assert_eq!(ids, sorted);
            }
        }
        assert_eq!(trained, res.traffic.client_updates);
        // Exactly the task-closing rounds carry eval results.
        let evals: Vec<&RoundReport> = res
            .rounds
            .iter()
            .filter(|r| r.eval_domain_acc.is_some())
            .collect();
        assert_eq!(evals.len(), ds.num_domains());
        for (t, report) in evals.iter().enumerate() {
            assert_eq!(report.eval_domain_acc.as_ref().unwrap().len(), t + 1);
            assert!(report.phases.eval > 0);
            assert!(report.eval_pool.is_some());
        }
        // Per-round wire bytes partition the run totals exactly.
        let per_round: u64 = res.rounds.iter().map(RoundReport::total_wire_bytes).sum();
        assert_eq!(per_round, res.traffic.total_bytes());
    }

    #[test]
    fn round_report_semantic_fields_match_across_thread_counts() {
        let ds = tiny_dataset();
        let mut s1 = CentroidStrategy::new(3, 6);
        let mut s4 = CentroidStrategy::new(3, 6);
        let r1 = FdilRunner::new(tiny_config()).threads(1).run(&ds, &mut s1);
        let r4 = FdilRunner::new(tiny_config()).threads(4).run(&ds, &mut s4);
        assert_eq!(r1.rounds.len(), r4.rounds.len());
        for (a, b) in r1.rounds.iter().zip(&r4.rounds) {
            assert_eq!(a.task, b.task);
            assert_eq!(a.round, b.round);
            assert_eq!(a.wire_bytes, b.wire_bytes);
            assert_eq!(a.clients_trained, b.clients_trained);
            assert_eq!(a.clients_dropped, b.clients_dropped);
            assert_eq!(a.eval_domain_acc, b.eval_domain_acc);
            let ids =
                |r: &RoundReport| -> Vec<u64> { r.sessions.iter().map(|s| s.client_id).collect() };
            assert_eq!(ids(a), ids(b));
        }
    }

    #[test]
    fn disabled_telemetry_still_reports_rounds_without_pools() {
        let ds = tiny_dataset();
        let mut strat = CentroidStrategy::new(3, 6);
        let res = FdilRunner::new(tiny_config()).run(&ds, &mut strat);
        assert!(!res.rounds.is_empty());
        for report in &res.rounds {
            assert!(report.train_pool.is_none());
            assert!(report.eval_pool.is_none());
        }
    }

    #[test]
    fn session_seeds_decorrelate() {
        let a = session_seed(1, 0, 0, 0);
        let b = session_seed(1, 0, 0, 1);
        let c = session_seed(1, 0, 1, 0);
        let d = session_seed(2, 0, 0, 0);
        assert!(a != b && a != c && a != d && b != c);
    }

    /// Spawns `n` in-process client threads that connect to `endpoint`,
    /// handshake, and run the replica loop to completion.
    fn spawn_clients(
        endpoint: &refil_wire::Endpoint,
        ds: &FdilDataset,
        cfg: RunConfig,
        n: usize,
        opts: crate::net::ClientOptions,
    ) -> Vec<std::thread::JoinHandle<crate::net::ClientReport>> {
        (0..n)
            .map(|i| {
                let ep = endpoint.clone();
                let ds = ds.clone();
                let opts = opts.clone();
                std::thread::spawn(move || {
                    let deadline = Instant::now() + Duration::from_secs(30);
                    let link = refil_wire::connect(&ep, deadline).expect("connect failed");
                    let (pid, _spec, _token, compression) =
                        crate::net::client_handshake(&link, i as u64, None, deadline)
                            .expect("handshake failed");
                    let mut opts = opts;
                    opts.compression = compression;
                    let mut strat = CentroidStrategy::new(3, 6);
                    crate::net::run_client(
                        &link,
                        pid,
                        &ds,
                        &mut strat,
                        &cfg,
                        &opts,
                        &Telemetry::disabled(),
                    )
                    .expect("client failed")
                })
            })
            .collect()
    }

    #[test]
    fn serve_over_tcp_matches_in_process_run() {
        let ds = tiny_dataset();
        let mut cfg = tiny_config();
        cfg.net.min_peers = 2;
        let mut s_local = CentroidStrategy::new(3, 6);
        let local = FdilRunner::new(cfg).run(&ds, &mut s_local);

        let listener =
            refil_wire::NetListener::bind(&refil_wire::Endpoint::Tcp("127.0.0.1:0".into()))
                .expect("bind failed");
        let endpoint = listener.local_endpoint();
        let clients = spawn_clients(&endpoint, &ds, cfg, 2, crate::net::ClientOptions::default());
        let mut s_srv = CentroidStrategy::new(3, 6);
        let served = FdilRunner::new(cfg).serve(&ds, &mut s_srv, &listener, "tiny-spec");
        for c in clients {
            let report = c.join().expect("client thread panicked");
            assert_eq!(report.reason, 0, "client should end with COMPLETE");
            assert!(report.rounds > 0);
        }

        assert_eq!(local.final_global, served.final_global);
        assert_eq!(local.domain_acc, served.domain_acc);
        assert_eq!(local.traffic, served.traffic);
        assert_eq!(s_local.merged, s_srv.merged);
        assert!(served.rounds.iter().all(|r| r.clients_late == 0));
    }

    #[test]
    fn serve_reassigns_aborted_peers_sessions_mid_run() {
        let ds = tiny_dataset();
        let mut cfg = tiny_config();
        cfg.net.min_peers = 2;
        cfg.net.round_deadline_ms = 4000;
        cfg.net.join_grace_ms = 100;
        let mut s_local = CentroidStrategy::new(3, 6);
        let local = FdilRunner::new(cfg).run(&ds, &mut s_local);

        let listener =
            refil_wire::NetListener::bind(&refil_wire::Endpoint::Tcp("127.0.0.1:0".into()))
                .expect("bind failed");
        let endpoint = listener.local_endpoint();
        // One client aborts (drops the connection) after its second
        // RoundStart; the other stays for the whole run. The reactor
        // reassigns the aborted peer's slots to the survivor, so the run
        // completes with nothing late and byte-identical to the local run.
        let quitter = spawn_clients(
            &endpoint,
            &ds,
            cfg,
            1,
            crate::net::ClientOptions {
                abort_after_round_starts: Some(2),
                ..Default::default()
            },
        );
        let stayer = spawn_clients(&endpoint, &ds, cfg, 1, crate::net::ClientOptions::default());
        let mut s_srv = CentroidStrategy::new(3, 6);
        let served = FdilRunner::new(cfg).serve(&ds, &mut s_srv, &listener, "tiny-spec");
        for c in quitter.into_iter().chain(stayer) {
            c.join().expect("client thread panicked");
        }

        assert_eq!(served.traffic.rounds, 6);
        assert_eq!(served.domain_acc.len(), 2);
        let late: u64 = served.rounds.iter().map(|r| r.clients_late).sum();
        assert_eq!(late, 0, "orphaned sessions should be reassigned, not late");
        assert_eq!(local.final_global, served.final_global);
        assert_eq!(local.domain_acc, served.domain_acc);
        assert_eq!(local.traffic, served.traffic);
        assert_eq!(s_local.merged, s_srv.merged);
    }

    #[test]
    fn served_run_resumes_after_link_blip() {
        let ds = tiny_dataset();
        let mut cfg = tiny_config();
        cfg.net.min_peers = 2;
        cfg.net.round_deadline_ms = 4000;
        let mut s_local = CentroidStrategy::new(3, 6);
        let local = FdilRunner::new(cfg).run(&ds, &mut s_local);

        let listener =
            refil_wire::NetListener::bind(&refil_wire::Endpoint::Tcp("127.0.0.1:0".into()))
                .expect("bind failed");
        let endpoint = listener.local_endpoint();
        // One client deliberately drops its link after the second
        // RoundStart, then reconnects with its resume token; its replica
        // state survives the blip, the server replays only the missed
        // suffix, and the stranded slots are covered by the other peer.
        let ep = endpoint.clone();
        let ds2 = ds.clone();
        let blipper = std::thread::spawn(move || {
            let mut connect = || {
                refil_wire::connect(&ep, Instant::now() + Duration::from_secs(30))
                    .map(|l| Box::new(l) as Box<dyn refil_wire::Link>)
            };
            let mut strat = CentroidStrategy::new(3, 6);
            crate::net::run_client_resumable(
                &mut connect,
                7,
                &ds2,
                &mut strat,
                &cfg,
                &crate::net::ClientOptions {
                    drop_link_after_round_starts: Some(2),
                    max_reconnects: 1,
                    ..Default::default()
                },
                &Telemetry::disabled(),
            )
            .expect("resumable client failed")
        });
        let stayer = spawn_clients(&endpoint, &ds, cfg, 1, crate::net::ClientOptions::default());
        let mut s_srv = CentroidStrategy::new(3, 6);
        let served = FdilRunner::new(cfg).serve(&ds, &mut s_srv, &listener, "tiny-spec");
        let blip_report = blipper.join().expect("blipper thread panicked");
        for c in stayer {
            c.join().expect("client thread panicked");
        }

        assert_eq!(
            blip_report.resumes, 1,
            "the blip should resume exactly once"
        );
        assert_eq!(blip_report.reason, 0, "resumed client should see COMPLETE");
        let late: u64 = served.rounds.iter().map(|r| r.clients_late).sum();
        assert_eq!(late, 0, "blipped slots should be reassigned, not late");
        assert_eq!(local.final_global, served.final_global);
        assert_eq!(local.domain_acc, served.domain_acc);
        assert_eq!(local.traffic, served.traffic);
        assert_eq!(s_local.merged, s_srv.merged);
    }

    #[test]
    fn holdings_rebuild_both_concatenates_in_order() {
        let ds = tiny_dataset();
        let mut h = Holdings {
            old: ds.domains[0].train[..3].to_vec(),
            new: ds.domains[1].train[..2].to_vec(),
            both: Vec::new(),
        };
        h.rebuild_both();
        assert_eq!(h.both.len(), 5);
        assert_eq!(h.both[0].label, h.old[0].label);
        assert_eq!(h.both[3].label, h.new[0].label);
        let cap = h.both.capacity();
        h.rebuild_both();
        assert_eq!(h.both.capacity(), cap, "rebuild must reuse the buffer");
    }
}
