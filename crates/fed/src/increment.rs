//! Client-increment scheduling (paper Appendix A, "Client increment strategy").
//!
//! Participants split into three dynamic groups per incremental task:
//! * `U_o` (Old): clients still working solely on previous-domain data;
//! * `U_b` (In-between): clients holding both old- and new-domain data
//!   (`D_m^t = concat(D_m^{t-1}, D_m^t)`, Algorithm 1 line 13);
//! * `U_n` (New): clients with new-domain data only.
//!
//! At each task, 80 % of existing clients transition to the new domain
//! (each at a random round inside the task, giving the gradual transition of
//! Fig. 1b rather than the cliff transition of Fig. 1a), and `increment`
//! brand-new clients join, growing `M = M_o + M_b + M_n` over time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The paper's three participant groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClientGroup {
    /// Works solely on data from previous domains.
    Old,
    /// Holds both the new domain and previous data.
    Between,
    /// Works exclusively on the new domain.
    New,
}

/// Static configuration of the increment protocol.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementConfig {
    /// Clients present at task 1 (paper: 20, or 10 for OfficeCaltech10).
    pub initial_clients: usize,
    /// Clients selected per communication round (paper: 10 / 5).
    pub select_per_round: usize,
    /// New clients added at each subsequent task (paper: 2 / 1).
    pub increment_per_task: usize,
    /// Fraction of existing clients that transition each task (paper: 0.8).
    pub transition_fraction: f32,
    /// Communication rounds per task (paper: 30).
    pub rounds_per_task: usize,
}

impl Default for IncrementConfig {
    fn default() -> Self {
        Self {
            initial_clients: 20,
            select_per_round: 10,
            increment_per_task: 2,
            transition_fraction: 0.8,
            rounds_per_task: 30,
        }
    }
}

impl IncrementConfig {
    /// Total client count at task `t` (0-indexed).
    pub fn clients_at_task(&self, task: usize) -> usize {
        self.initial_clients + task * self.increment_per_task
    }
}

/// Per-client plan for one task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientPlan {
    /// Global client id.
    pub id: usize,
    /// Task at which the client joined the federation.
    pub joined_task: usize,
    /// `Some(round)` when this client transitions to the new domain during
    /// the current task (becoming `U_b` from that round on); `None` if the
    /// client stays on old data the whole task.
    pub transition_round: Option<usize>,
    /// Whether this client is brand new this task (pure `U_n`).
    pub is_new: bool,
}

impl ClientPlan {
    /// The group this client belongs to at `round` of the current task.
    pub fn group_at(&self, round: usize) -> ClientGroup {
        if self.is_new {
            ClientGroup::New
        } else {
            match self.transition_round {
                Some(tr) if round >= tr => ClientGroup::Between,
                _ => ClientGroup::Old,
            }
        }
    }

    /// Whether this client receives new-domain data this task.
    pub fn receives_new_data(&self) -> bool {
        self.is_new || self.transition_round.is_some()
    }
}

/// The full schedule for one task: every active client's plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskSchedule {
    /// Task index (0-based).
    pub task: usize,
    /// Plans for all active clients.
    pub clients: Vec<ClientPlan>,
}

impl TaskSchedule {
    /// Group sizes `(M_o, M_b, M_n)` at `round`.
    pub fn group_sizes(&self, round: usize) -> (usize, usize, usize) {
        let mut o = 0;
        let mut b = 0;
        let mut n = 0;
        for c in &self.clients {
            match c.group_at(round) {
                ClientGroup::Old => o += 1,
                ClientGroup::Between => b += 1,
                ClientGroup::New => n += 1,
            }
        }
        (o, b, n)
    }

    /// Ids of clients that receive new-domain data this task.
    pub fn new_data_recipients(&self) -> Vec<usize> {
        self.clients
            .iter()
            .filter(|c| c.receives_new_data())
            .map(|c| c.id)
            .collect()
    }
}

/// Builds the deterministic schedule for every task of a run.
///
/// Task 0 is special: every initial client is `New` (first domain for all).
///
/// # Panics
///
/// Panics if `transition_fraction` is outside `[0, 1]` or
/// `select_per_round == 0`.
pub fn build_schedule(cfg: &IncrementConfig, num_tasks: usize, seed: u64) -> Vec<TaskSchedule> {
    assert!(
        (0.0..=1.0).contains(&cfg.transition_fraction),
        "transition fraction must be in [0,1]"
    );
    assert!(
        cfg.select_per_round > 0,
        "must select at least one client per round"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut schedules = Vec::with_capacity(num_tasks);
    // joined_task per client id.
    let mut joined: Vec<usize> = vec![0; cfg.initial_clients];

    for task in 0..num_tasks {
        if task > 0 {
            for _ in 0..cfg.increment_per_task {
                joined.push(task);
            }
        }
        let mut clients: Vec<ClientPlan> = Vec::with_capacity(joined.len());
        // Existing clients (joined before this task) transition with prob 0.8,
        // exactly `round(frac * existing)` of them.
        let existing: Vec<usize> = (0..joined.len()).filter(|&id| joined[id] < task).collect();
        let mut to_transition: Vec<usize> = existing.clone();
        // Deterministic partial shuffle, then take the first `k`.
        for i in (1..to_transition.len()).rev() {
            let j = rng.gen_range(0..=i);
            to_transition.swap(i, j);
        }
        let k = ((existing.len() as f32) * cfg.transition_fraction).round() as usize;
        to_transition.truncate(k);

        for (id, &joined_task) in joined.iter().enumerate() {
            let is_new = joined_task == task;
            let transition_round = if !is_new && to_transition.contains(&id) {
                // Transition somewhere in the first half of the task so the
                // new domain actually gets trained on.
                Some(rng.gen_range(0..(cfg.rounds_per_task / 2).max(1)))
            } else {
                None
            };
            clients.push(ClientPlan {
                id,
                joined_task,
                transition_round,
                is_new,
            });
        }
        schedules.push(TaskSchedule { task, clients });
    }
    schedules
}

/// Samples `select_per_round` distinct active clients for a round.
pub fn select_clients(schedule: &TaskSchedule, count: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut ids: Vec<usize> = schedule.clients.iter().map(|c| c.id).collect();
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    ids.truncate(count.min(ids.len()));
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IncrementConfig {
        IncrementConfig {
            initial_clients: 10,
            select_per_round: 5,
            increment_per_task: 2,
            transition_fraction: 0.8,
            rounds_per_task: 10,
        }
    }

    #[test]
    fn client_counts_grow() {
        let s = build_schedule(&cfg(), 4, 1);
        assert_eq!(s[0].clients.len(), 10);
        assert_eq!(s[1].clients.len(), 12);
        assert_eq!(s[3].clients.len(), 16);
    }

    #[test]
    fn task0_everyone_is_new() {
        let s = build_schedule(&cfg(), 3, 2);
        assert!(s[0].clients.iter().all(|c| c.is_new));
        let (o, b, n) = s[0].group_sizes(0);
        assert_eq!((o, b, n), (0, 0, 10));
    }

    #[test]
    fn m_equals_mo_plus_mb_plus_mn() {
        let s = build_schedule(&cfg(), 4, 3);
        for task in &s {
            for round in [0, 5, 9] {
                let (o, b, n) = task.group_sizes(round);
                assert_eq!(o + b + n, task.clients.len());
            }
        }
    }

    #[test]
    fn eighty_percent_transition() {
        let s = build_schedule(&cfg(), 2, 4);
        let transitioned = s[1]
            .clients
            .iter()
            .filter(|c| c.transition_round.is_some())
            .count();
        // 10 existing clients * 0.8 = 8.
        assert_eq!(transitioned, 8);
        let new = s[1].clients.iter().filter(|c| c.is_new).count();
        assert_eq!(new, 2);
    }

    #[test]
    fn transitions_become_between_group() {
        let s = build_schedule(&cfg(), 2, 5);
        let c = s[1]
            .clients
            .iter()
            .find(|c| c.transition_round.is_some())
            .expect("someone transitions");
        let tr = c.transition_round.unwrap();
        assert_eq!(
            c.group_at(tr.saturating_sub(1).min(tr)),
            if tr == 0 {
                ClientGroup::Between
            } else {
                ClientGroup::Old
            }
        );
        assert_eq!(c.group_at(tr), ClientGroup::Between);
        assert_eq!(c.group_at(cfg().rounds_per_task - 1), ClientGroup::Between);
    }

    #[test]
    fn new_data_recipients_cover_new_and_transitioning() {
        let s = build_schedule(&cfg(), 2, 6);
        let r = s[1].new_data_recipients();
        assert_eq!(r.len(), 8 + 2);
    }

    #[test]
    fn selection_is_distinct_and_bounded() {
        let s = build_schedule(&cfg(), 1, 7);
        let mut rng = StdRng::seed_from_u64(0);
        let sel = select_clients(&s[0], 5, &mut rng);
        assert_eq!(sel.len(), 5);
        let mut sorted = sel.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "duplicate selection");
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = build_schedule(&cfg(), 3, 42);
        let b = build_schedule(&cfg(), 3, 42);
        for (x, y) in a.iter().zip(&b) {
            for (cx, cy) in x.clients.iter().zip(&y.clients) {
                assert_eq!(cx.transition_round, cy.transition_round);
            }
        }
    }
}
