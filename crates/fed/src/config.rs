//! Run-level configuration: [`RunConfig`], its validating builder, and the
//! typed errors the builder rejects with.
//!
//! Historically an invalid configuration (a zero batch size, a dropout
//! probability of 1.7) surfaced as a panic deep inside the round loop —
//! `minibatches` dividing by zero or a schedule with no rounds. The builder
//! front-loads those checks into [`RunConfigBuilder::build`], which returns a
//! [`ConfigError`] naming the offending field instead.

use refil_wire::{CompressionSpec, QuantMode};
use serde::{Deserialize, Serialize};

use crate::increment::IncrementConfig;

/// Run-level configuration (protocol side).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Client increment protocol parameters.
    pub increment: IncrementConfig,
    /// Local epochs per selected client per round (paper: 20).
    pub local_epochs: usize,
    /// Local minibatch size.
    pub batch_size: usize,
    /// Log-normal sigma of the quantity-shift partition.
    pub quantity_sigma: f32,
    /// Evaluation minibatch size.
    pub eval_batch: usize,
    /// Probability that a selected client drops out of a round before
    /// reporting (straggler/failure simulation; the paper's setting has
    /// resource-constrained devices). `0.0` disables dropout.
    pub dropout_prob: f32,
    /// Master seed for the run.
    pub seed: u64,
    /// Worker threads for client fan-out and eval sweeps. `0` (the default,
    /// and what pre-existing serialized configs decode to) defers to the
    /// runner's `REFIL_THREADS` environment default; any other value is
    /// taken as an explicit request. [`RunConfigBuilder::threads`] resolves
    /// an explicit "auto" (`threads(0)`) to the machine's available
    /// parallelism at build time. Thread count never changes results, only
    /// wall time, so this field is inert for determinism.
    #[serde(default)]
    pub threads: usize,
    /// Networked-server options; inert on the in-process paths, so adding
    /// (or changing) them cannot perturb a loopback or direct run.
    #[serde(default)]
    pub net: NetConfig,
    /// Uplink payload-compression options (delta / quantization / top-k).
    /// The default is the identity spec, which routes through the plain
    /// uncompressed path — and is what serialized configs from before this
    /// knob decode to.
    #[serde(default)]
    pub wire: WireConfig,
}

/// Scalar quantization codec selection for [`WireConfig`] (the config-side
/// mirror of [`refil_wire::QuantMode`], kept separate so the wire crate
/// stays serde-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireQuant {
    /// Values ride as raw `f32` — bit-exact.
    #[default]
    None,
    /// IEEE binary16, round-to-nearest-even.
    F16,
    /// Asymmetric affine u8 over each update's value range.
    Int8,
}

/// Uplink compression options: what [`CompressionSpec`] the server assigns
/// to codec-capable clients (and the in-process runner applies locally).
/// The composition order is fixed: delta → top-k → quantization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireConfig {
    /// Send `x − base` against the round's broadcast instead of `x`.
    pub delta: bool,
    /// Scalar codec for the values that survive top-k.
    pub quant: WireQuant,
    /// Fraction of coordinates kept by magnitude top-k; must be in
    /// `(0, 1]`, where `1.0` keeps everything.
    pub topk_fraction: f32,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            delta: false,
            quant: WireQuant::None,
            topk_fraction: 1.0,
        }
    }
}

impl WireConfig {
    /// The wire-level spec this config selects.
    pub fn spec(&self) -> CompressionSpec {
        CompressionSpec {
            delta: self.delta,
            quant: match self.quant {
                WireQuant::None => QuantMode::None,
                WireQuant::F16 => QuantMode::F16,
                WireQuant::Int8 => QuantMode::Int8,
            },
            topk_fraction: self.topk_fraction,
        }
    }

    /// Whether this config changes any payload ([`CompressionSpec::is_active`]).
    pub fn is_active(&self) -> bool {
        self.spec().is_active()
    }
}

/// Options for the networked federation server ([`crate::FdilRunner::serve`]).
/// All durations are milliseconds so the struct stays `Copy` + serde-plain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Per-round collection deadline: results not in by then leave their
    /// sessions late and the round completes with partial participation.
    pub round_deadline_ms: u64,
    /// Peers the server waits for before the first round starts.
    pub min_peers: usize,
    /// How long the server waits for `min_peers` at startup (and for a
    /// first peer when a round opens with none connected).
    pub join_grace_ms: u64,
    /// Client-side patience between server frames before a client gives
    /// up on an idle link.
    pub client_idle_ms: u64,
    /// Sampled participation: the fraction of each round's planned
    /// sessions that actually train, drawn seed-deterministically (from
    /// `seed`, task, and round — never from the main selection RNG, so
    /// enabling sampling perturbs nothing else, and loopback ≡ networked
    /// stays byte-identical). `0.0` — the default, and what serialized
    /// configs from before this knob decode to — disables sampling (full
    /// participation); a value in `(0, 1]` keeps `ceil(fraction · n)`
    /// sessions, floored by [`NetConfig::min_sample`].
    #[serde(default)]
    pub sample_fraction: f32,
    /// Floor on the sessions kept per round while sampling is active
    /// (values `< 1` behave as `1`). Ignored when sampling is disabled.
    #[serde(default)]
    pub min_sample: usize,
    /// Per-peer outbound-queue cap in bytes: when a peer's unsent backlog
    /// exceeds this, the reactor declares it too slow and disconnects it.
    /// `0` (the default) disables the policy.
    #[serde(default)]
    pub send_queue_max_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            round_deadline_ms: 30_000,
            min_peers: 1,
            join_grace_ms: 10_000,
            client_idle_ms: 120_000,
            sample_fraction: 0.0,
            min_sample: 0,
            send_queue_max_bytes: 0,
        }
    }
}

impl NetConfig {
    /// The sessions to keep out of `planned` under this config's sampling
    /// knobs; `None` when sampling is disabled or keeps everything.
    pub fn sample_size(&self, planned: usize) -> Option<usize> {
        if self.sample_fraction <= 0.0 || planned == 0 {
            return None;
        }
        let by_fraction = (self.sample_fraction as f64 * planned as f64).ceil() as usize;
        let kept = by_fraction.max(self.min_sample.max(1)).min(planned);
        (kept < planned).then_some(kept)
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            increment: IncrementConfig::default(),
            local_epochs: 2,
            batch_size: 32,
            quantity_sigma: 0.6,
            eval_batch: 256,
            dropout_prob: 0.0,
            seed: 0,
            threads: 0,
            net: NetConfig::default(),
            wire: WireConfig::default(),
        }
    }
}

impl RunConfig {
    /// A validating builder starting from [`RunConfig::default`].
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder::new()
    }

    /// Checks every invariant the round loop relies on, returning the first
    /// violation as a typed error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if !(0.0..=1.0).contains(&self.dropout_prob) || self.dropout_prob.is_nan() {
            return Err(ConfigError::DropoutOutOfRange(self.dropout_prob));
        }
        if self.increment.rounds_per_task == 0 {
            return Err(ConfigError::ZeroRoundsPerTask);
        }
        if self.increment.select_per_round == 0 {
            return Err(ConfigError::ZeroSelectPerRound);
        }
        if !(0.0..=1.0).contains(&self.increment.transition_fraction)
            || self.increment.transition_fraction.is_nan()
        {
            return Err(ConfigError::TransitionFractionOutOfRange(
                self.increment.transition_fraction,
            ));
        }
        if self.net.round_deadline_ms == 0 {
            return Err(ConfigError::ZeroRoundDeadline);
        }
        if self.net.min_peers == 0 {
            return Err(ConfigError::ZeroMinPeers);
        }
        if self.net.client_idle_ms == 0 {
            return Err(ConfigError::ZeroClientIdle);
        }
        if !(0.0..=1.0).contains(&self.net.sample_fraction) || self.net.sample_fraction.is_nan() {
            return Err(ConfigError::SampleFractionOutOfRange(
                self.net.sample_fraction,
            ));
        }
        if !self.wire.spec().is_valid() {
            return Err(ConfigError::TopkFractionOutOfRange(self.wire.topk_fraction));
        }
        Ok(())
    }
}

/// A [`RunConfig`] invariant violation, caught at build time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `batch_size == 0` would make `minibatches` loop forever / divide by
    /// zero.
    ZeroBatchSize,
    /// `dropout_prob` must be a probability in `[0, 1]`.
    DropoutOutOfRange(f32),
    /// `increment.rounds_per_task == 0` yields tasks in which no training
    /// (and no group transition) ever happens.
    ZeroRoundsPerTask,
    /// `increment.select_per_round == 0` selects nobody, ever.
    ZeroSelectPerRound,
    /// `increment.transition_fraction` must be a fraction in `[0, 1]`.
    TransitionFractionOutOfRange(f32),
    /// `net.round_deadline_ms == 0` would expire every round before any
    /// client could report.
    ZeroRoundDeadline,
    /// `net.min_peers == 0` would let the server start with nobody to
    /// assign sessions to.
    ZeroMinPeers,
    /// `net.client_idle_ms == 0` would make clients give up immediately.
    ZeroClientIdle,
    /// `net.sample_fraction` must be `0.0` (sampling disabled) or a
    /// fraction in `(0, 1]`.
    SampleFractionOutOfRange(f32),
    /// `wire.topk_fraction` must be a fraction in `(0, 1]` — `0.0` would
    /// keep nothing and NaN would make top-k selection unstable.
    TopkFractionOutOfRange(f32),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroBatchSize => write!(f, "batch_size must be at least 1"),
            Self::DropoutOutOfRange(p) => {
                write!(f, "dropout_prob must be in [0, 1], got {p}")
            }
            Self::ZeroRoundsPerTask => write!(f, "increment.rounds_per_task must be at least 1"),
            Self::ZeroSelectPerRound => {
                write!(f, "increment.select_per_round must be at least 1")
            }
            Self::TransitionFractionOutOfRange(t) => {
                write!(
                    f,
                    "increment.transition_fraction must be in [0, 1], got {t}"
                )
            }
            Self::ZeroRoundDeadline => write!(f, "net.round_deadline_ms must be at least 1"),
            Self::ZeroMinPeers => write!(f, "net.min_peers must be at least 1"),
            Self::ZeroClientIdle => write!(f, "net.client_idle_ms must be at least 1"),
            Self::SampleFractionOutOfRange(s) => {
                write!(
                    f,
                    "net.sample_fraction must be 0 (disabled) or in (0, 1], got {s}"
                )
            }
            Self::TopkFractionOutOfRange(t) => {
                write!(f, "wire.topk_fraction must be in (0, 1], got {t}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`RunConfig`].
///
/// ```
/// use refil_fed::RunConfig;
///
/// let cfg = RunConfig::builder()
///     .batch_size(16)
///     .local_epochs(1)
///     .dropout_prob(0.1)
///     .seed(7)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.batch_size, 16);
///
/// assert!(RunConfig::builder().batch_size(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunConfigBuilder {
    cfg: RunConfig,
}

impl RunConfigBuilder {
    /// Starts from [`RunConfig::default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the client-increment protocol parameters.
    pub fn increment(mut self, increment: IncrementConfig) -> Self {
        self.cfg.increment = increment;
        self
    }

    /// Sets the local epochs per selected client per round.
    pub fn local_epochs(mut self, local_epochs: usize) -> Self {
        self.cfg.local_epochs = local_epochs;
        self
    }

    /// Sets the local minibatch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.cfg.batch_size = batch_size;
        self
    }

    /// Sets the log-normal sigma of the quantity-shift partition.
    pub fn quantity_sigma(mut self, quantity_sigma: f32) -> Self {
        self.cfg.quantity_sigma = quantity_sigma;
        self
    }

    /// Sets the evaluation minibatch size.
    pub fn eval_batch(mut self, eval_batch: usize) -> Self {
        self.cfg.eval_batch = eval_batch;
        self
    }

    /// Sets the per-round client dropout probability.
    pub fn dropout_prob(mut self, dropout_prob: f32) -> Self {
        self.cfg.dropout_prob = dropout_prob;
        self
    }

    /// Sets the master seed for the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the worker-thread count. `0` means "auto": it resolves to the
    /// machine's available parallelism right here, so the built config
    /// carries a concrete count (the runner additionally clamps to
    /// available cores at dispatch time — oversubscription never helps).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// Sets all networked-server options at once.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.cfg.net = net;
        self
    }

    /// Sets the per-round collection deadline (milliseconds).
    pub fn round_deadline_ms(mut self, ms: u64) -> Self {
        self.cfg.net.round_deadline_ms = ms;
        self
    }

    /// Sets how many peers the server waits for before starting.
    pub fn min_peers(mut self, peers: usize) -> Self {
        self.cfg.net.min_peers = peers;
        self
    }

    /// Sets the startup / empty-round join grace period (milliseconds).
    pub fn join_grace_ms(mut self, ms: u64) -> Self {
        self.cfg.net.join_grace_ms = ms;
        self
    }

    /// Sets the client-side idle patience (milliseconds).
    pub fn client_idle_ms(mut self, ms: u64) -> Self {
        self.cfg.net.client_idle_ms = ms;
        self
    }

    /// Sets the sampled-participation fraction (`0.0` disables sampling).
    pub fn sample_fraction(mut self, fraction: f32) -> Self {
        self.cfg.net.sample_fraction = fraction;
        self
    }

    /// Sets the floor on sessions kept per round while sampling.
    pub fn min_sample(mut self, min_sample: usize) -> Self {
        self.cfg.net.min_sample = min_sample;
        self
    }

    /// Sets the per-peer outbound-queue cap in bytes (`0` = unbounded).
    pub fn send_queue_max_bytes(mut self, bytes: usize) -> Self {
        self.cfg.net.send_queue_max_bytes = bytes;
        self
    }

    /// Sets all uplink-compression options at once.
    pub fn wire(mut self, wire: WireConfig) -> Self {
        self.cfg.wire = wire;
        self
    }

    /// Enables or disables delta encoding against the round broadcast.
    pub fn wire_delta(mut self, delta: bool) -> Self {
        self.cfg.wire.delta = delta;
        self
    }

    /// Sets the uplink scalar quantization codec.
    pub fn wire_quant(mut self, quant: WireQuant) -> Self {
        self.cfg.wire.quant = quant;
        self
    }

    /// Sets the top-k kept fraction (`1.0` keeps every coordinate).
    pub fn wire_topk_fraction(mut self, fraction: f32) -> Self {
        self.cfg.wire.topk_fraction = fraction;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<RunConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(RunConfig::default().validate(), Ok(()));
        assert!(RunConfig::builder().build().is_ok());
    }

    #[test]
    fn builder_sets_every_field() {
        let inc = IncrementConfig {
            initial_clients: 6,
            select_per_round: 2,
            increment_per_task: 1,
            transition_fraction: 0.5,
            rounds_per_task: 4,
        };
        let cfg = RunConfig::builder()
            .increment(inc)
            .local_epochs(3)
            .batch_size(8)
            .quantity_sigma(0.4)
            .eval_batch(32)
            .dropout_prob(0.25)
            .seed(99)
            .build()
            .expect("valid");
        assert_eq!(cfg.increment.initial_clients, 6);
        assert_eq!(cfg.local_epochs, 3);
        assert_eq!(cfg.batch_size, 8);
        assert!((cfg.quantity_sigma - 0.4).abs() < f32::EPSILON);
        assert_eq!(cfg.eval_batch, 32);
        assert!((cfg.dropout_prob - 0.25).abs() < f32::EPSILON);
        assert_eq!(cfg.seed, 99);
    }

    #[test]
    fn builder_resolves_auto_threads_to_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let auto = RunConfig::builder().threads(0).build().expect("valid");
        assert_eq!(auto.threads, cores, "threads(0) must mean all cores");
        let explicit = RunConfig::builder().threads(3).build().expect("valid");
        assert_eq!(explicit.threads, 3);
        // Unset stays 0: the runner then falls back to REFIL_THREADS.
        assert_eq!(RunConfig::default().threads, 0);
    }

    #[test]
    fn old_configs_without_threads_field_deserialize_to_env_default() {
        let json = serde_json::to_string(&RunConfig::default()).expect("serialize");
        let stripped = {
            let v = serde_json::parse_value(&json).unwrap();
            let serde_json::Value::Map(entries) = v else {
                panic!("config did not serialize to a map");
            };
            let without: Vec<_> = entries
                .into_iter()
                .filter(|(k, _)| k != "threads")
                .collect();
            serde_json::to_string(&serde_json::Value::Map(without)).unwrap()
        };
        let cfg: RunConfig = serde_json::from_str(&stripped).expect("deserialize sans threads");
        assert_eq!(cfg.threads, 0);
    }

    #[test]
    fn builder_rejects_zero_batch_size() {
        assert_eq!(
            RunConfig::builder().batch_size(0).build(),
            Err(ConfigError::ZeroBatchSize)
        );
    }

    #[test]
    fn builder_rejects_out_of_range_dropout() {
        assert_eq!(
            RunConfig::builder().dropout_prob(1.5).build(),
            Err(ConfigError::DropoutOutOfRange(1.5))
        );
        assert_eq!(
            RunConfig::builder().dropout_prob(-0.1).build(),
            Err(ConfigError::DropoutOutOfRange(-0.1))
        );
        assert!(RunConfig::builder().dropout_prob(f32::NAN).build().is_err());
    }

    #[test]
    fn builder_rejects_degenerate_increment() {
        let inc = IncrementConfig {
            rounds_per_task: 0,
            ..IncrementConfig::default()
        };
        assert_eq!(
            RunConfig::builder().increment(inc).build(),
            Err(ConfigError::ZeroRoundsPerTask)
        );
        let inc = IncrementConfig {
            select_per_round: 0,
            ..IncrementConfig::default()
        };
        assert_eq!(
            RunConfig::builder().increment(inc).build(),
            Err(ConfigError::ZeroSelectPerRound)
        );
        let inc = IncrementConfig {
            transition_fraction: 1.2,
            ..IncrementConfig::default()
        };
        assert_eq!(
            RunConfig::builder().increment(inc).build(),
            Err(ConfigError::TransitionFractionOutOfRange(1.2))
        );
    }

    #[test]
    fn errors_display_the_offending_value() {
        let msg = ConfigError::DropoutOutOfRange(2.0).to_string();
        assert!(msg.contains("dropout_prob") && msg.contains('2'), "{msg}");
    }

    #[test]
    fn builder_sets_and_validates_net_options() {
        let cfg = RunConfig::builder()
            .round_deadline_ms(500)
            .min_peers(3)
            .join_grace_ms(250)
            .client_idle_ms(9000)
            .build()
            .expect("valid net options");
        assert_eq!(cfg.net.round_deadline_ms, 500);
        assert_eq!(cfg.net.min_peers, 3);
        assert_eq!(cfg.net.join_grace_ms, 250);
        assert_eq!(cfg.net.client_idle_ms, 9000);
        assert_eq!(
            RunConfig::builder().round_deadline_ms(0).build(),
            Err(ConfigError::ZeroRoundDeadline)
        );
        assert_eq!(
            RunConfig::builder().min_peers(0).build(),
            Err(ConfigError::ZeroMinPeers)
        );
        assert_eq!(
            RunConfig::builder().client_idle_ms(0).build(),
            Err(ConfigError::ZeroClientIdle)
        );
    }

    #[test]
    fn builder_sets_and_validates_sampling_options() {
        let cfg = RunConfig::builder()
            .sample_fraction(0.5)
            .min_sample(2)
            .send_queue_max_bytes(1 << 20)
            .build()
            .expect("valid sampling options");
        assert!((cfg.net.sample_fraction - 0.5).abs() < f32::EPSILON);
        assert_eq!(cfg.net.min_sample, 2);
        assert_eq!(cfg.net.send_queue_max_bytes, 1 << 20);
        assert_eq!(
            RunConfig::builder().sample_fraction(1.5).build(),
            Err(ConfigError::SampleFractionOutOfRange(1.5))
        );
        assert_eq!(
            RunConfig::builder().sample_fraction(-0.1).build(),
            Err(ConfigError::SampleFractionOutOfRange(-0.1))
        );
        assert!(RunConfig::builder()
            .sample_fraction(f32::NAN)
            .build()
            .is_err());
        // 0.0 means "sampling disabled" and stays valid.
        assert!(RunConfig::builder().sample_fraction(0.0).build().is_ok());
    }

    #[test]
    fn sample_size_covers_the_edge_cases() {
        let disabled = NetConfig::default();
        assert_eq!(disabled.sample_size(10), None);

        let half = NetConfig {
            sample_fraction: 0.5,
            ..NetConfig::default()
        };
        assert_eq!(half.sample_size(10), Some(5));
        assert_eq!(half.sample_size(0), None);
        // ceil() keeps at least one session even for tiny fractions.
        let tiny = NetConfig {
            sample_fraction: 0.01,
            ..NetConfig::default()
        };
        assert_eq!(tiny.sample_size(10), Some(1));
        // A full fraction keeps everything, which means "no sampling".
        let full = NetConfig {
            sample_fraction: 1.0,
            ..NetConfig::default()
        };
        assert_eq!(full.sample_size(10), None);
        // min_sample floors the kept count, capped at the planned count.
        let floored = NetConfig {
            sample_fraction: 0.1,
            min_sample: 4,
            ..NetConfig::default()
        };
        assert_eq!(floored.sample_size(10), Some(4));
        assert_eq!(floored.sample_size(3), None);
    }

    #[test]
    fn net_configs_without_sampling_fields_deserialize_to_disabled() {
        let json = serde_json::to_string(&RunConfig::default()).expect("serialize");
        let stripped = {
            let v = serde_json::parse_value(&json).unwrap();
            let serde_json::Value::Map(entries) = v else {
                panic!("config did not serialize to a map");
            };
            let rewritten: Vec<_> = entries
                .into_iter()
                .map(|(k, v)| {
                    if k != "net" {
                        return (k, v);
                    }
                    let serde_json::Value::Map(net) = v else {
                        panic!("net did not serialize to a map");
                    };
                    let kept: Vec<_> = net
                        .into_iter()
                        .filter(|(nk, _)| {
                            nk != "sample_fraction"
                                && nk != "min_sample"
                                && nk != "send_queue_max_bytes"
                        })
                        .collect();
                    (k, serde_json::Value::Map(kept))
                })
                .collect();
            serde_json::to_string(&serde_json::Value::Map(rewritten)).unwrap()
        };
        let cfg: RunConfig =
            serde_json::from_str(&stripped).expect("deserialize sans sampling fields");
        assert!(cfg.net.sample_fraction == 0.0);
        assert_eq!(cfg.net.min_sample, 0);
        assert_eq!(cfg.net.send_queue_max_bytes, 0);
        assert_eq!(cfg.net.sample_size(100), None);
    }

    #[test]
    fn builder_sets_and_validates_wire_options() {
        let cfg = RunConfig::builder()
            .wire_delta(true)
            .wire_quant(WireQuant::Int8)
            .wire_topk_fraction(0.25)
            .build()
            .expect("valid wire options");
        assert!(cfg.wire.delta);
        assert_eq!(cfg.wire.quant, WireQuant::Int8);
        assert!((cfg.wire.topk_fraction - 0.25).abs() < f32::EPSILON);
        assert_eq!(cfg.wire.spec().to_string(), "delta+int8+topk0.25");
        assert!(cfg.wire.is_active());
        assert!(!WireConfig::default().is_active());
        assert_eq!(
            RunConfig::builder().wire_topk_fraction(0.0).build(),
            Err(ConfigError::TopkFractionOutOfRange(0.0))
        );
        assert_eq!(
            RunConfig::builder().wire_topk_fraction(1.5).build(),
            Err(ConfigError::TopkFractionOutOfRange(1.5))
        );
        assert!(RunConfig::builder()
            .wire_topk_fraction(f32::NAN)
            .build()
            .is_err());
        let msg = ConfigError::TopkFractionOutOfRange(1.5).to_string();
        assert!(
            msg.contains("topk_fraction") && msg.contains("1.5"),
            "{msg}"
        );
    }

    #[test]
    fn configs_without_wire_field_deserialize_to_identity() {
        let json = serde_json::to_string(&RunConfig::default()).expect("serialize");
        let stripped = {
            let v = serde_json::parse_value(&json).unwrap();
            let serde_json::Value::Map(entries) = v else {
                panic!("config did not serialize to a map");
            };
            let without: Vec<_> = entries.into_iter().filter(|(k, _)| k != "wire").collect();
            serde_json::to_string(&serde_json::Value::Map(without)).unwrap()
        };
        let cfg: RunConfig = serde_json::from_str(&stripped).expect("deserialize sans wire");
        assert_eq!(cfg.wire, WireConfig::default());
        assert!(!cfg.wire.is_active());
        // And a config with the field round-trips it.
        let active = RunConfig::builder()
            .wire_delta(true)
            .wire_quant(WireQuant::F16)
            .build()
            .expect("valid");
        let json = serde_json::to_string(&active).expect("serialize");
        let back: RunConfig = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back.wire, active.wire);
    }

    #[test]
    fn old_serialized_configs_still_deserialize() {
        // A config serialized before the net options existed must load
        // with defaults (the field is #[serde(default)]).
        let json = serde_json::to_string(&RunConfig::default()).expect("serialize");
        let stripped = {
            let v = serde_json::parse_value(&json).unwrap();
            let serde_json::Value::Map(entries) = v else {
                panic!("config did not serialize to a map");
            };
            let without: Vec<_> = entries.into_iter().filter(|(k, _)| k != "net").collect();
            serde_json::to_string(&serde_json::Value::Map(without)).unwrap()
        };
        let cfg: RunConfig = serde_json::from_str(&stripped).expect("deserialize without net");
        assert_eq!(cfg.net, NetConfig::default());
    }
}
