//! Networked federation: the socket-backed server state machine behind
//! [`FdilRunner::serve`](crate::FdilRunner::serve) and the client replica
//! that peer processes run.
//!
//! # Three-layer split
//!
//! The round *protocol* (selection, FedAvg, ordered merges, evaluation)
//! lives in the runner and never changes between the in-process and
//! networked paths. This module adds the middle layer — a server-side
//! [`ServeState`] that assigns planned sessions to connected peers and
//! collects their results under a deadline, plus the client-side
//! [`run_client`] replica loop — on top of the bottom layer, `refil-wire`'s
//! peer-addressed [`Link`]/[`Listener`] transports.
//!
//! # State replication
//!
//! Everything a client needs besides the round randomness is a
//! deterministic function of the run config and dataset: the schedule, the
//! quantity-shift partition, and the holdings evolution are all seeded from
//! `cfg.seed` alone. A client therefore rebuilds that state locally and
//! replays the server's lifecycle frames — `TaskBegin` (task setup),
//! `RoundStart` (train assigned sessions), `RoundSync` (ordered merges +
//! round-end hook), `TaskEnd` (task teardown), `RunEnd` — while the server
//! keeps exclusively what must be centralized: client selection and dropout
//! RNG, FedAvg, and evaluation.
//!
//! Payload exchanges (`ModelBroadcast`, `ClientModelUpdate`, merge
//! messages) ride *inside* control frames as nested encoded frames, so the
//! per-logical-client traffic accounting of a networked run is
//! byte-identical to the loopback run's. Physical per-peer socket traffic
//! is reported separately through `net.*` telemetry counters.
//!
//! # Deadline semantics
//!
//! Each round the server waits at most `cfg.net.round_deadline_ms` for
//! results, blocking (never spinning) in per-peer collector threads. A
//! session whose result misses the deadline is counted as `clients_late`
//! in the round's report and simply omitted from FedAvg — the round always
//! completes. Results arriving later are discarded by their task/round tag.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use refil_data::FdilDataset;
use refil_telemetry::{SessionStat, Telemetry};
use refil_wire::{
    ClientModelUpdate as WireClientModelUpdate, ConnectError, Hello, Link, Listener, PeerId,
    RecvError, RoundStart, RoundSync, RunEnd, SessionAssignment, SessionResult, TaskBegin, TaskEnd,
    Welcome, WireError, WireMessage,
};

use crate::config::{NetConfig, RunConfig};
use crate::increment::{build_schedule, ClientGroup};
use crate::runner::{
    carry_forward, collect_client_data, distribute_task_data, FdilStrategy, Holdings, TrainSetting,
};

/// How long a joining peer gets to complete the `Hello`/`Welcome` handshake.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Accept-drain window at each round boundary: long enough to pick up a
/// connection that is already pending, short enough not to tax the round.
const JOIN_DRAIN: Duration = Duration::from_millis(5);

/// Wire group code for a [`ClientGroup`] (`SessionAssignment::group`).
pub(crate) fn group_code(group: ClientGroup) -> u8 {
    match group {
        ClientGroup::Old => 0,
        ClientGroup::Between => 1,
        ClientGroup::New => 2,
    }
}

/// Inverse of [`group_code`]; `None` for an unknown code.
fn group_from_code(code: u8) -> Option<ClientGroup> {
    match code {
        0 => Some(ClientGroup::Old),
        1 => Some(ClientGroup::Between),
        2 => Some(ClientGroup::New),
        _ => None,
    }
}

/// One remote session's collected result, already decoded into exactly what
/// the aggregate loop consumes on the in-process path.
pub(crate) struct RemoteSession {
    /// Decoded nested `ClientModelUpdate`.
    pub(crate) update: WireClientModelUpdate,
    /// Encoded length of the nested update frame (logical uplink bytes).
    pub(crate) update_bytes: u64,
    /// Decoded nested merge message with its frame length, if any.
    pub(crate) merge: Option<(WireMessage, u64)>,
    /// Session stat (track 0 — the session ran on a remote peer, not a
    /// local worker slot; the duration is the client's reported wall time).
    pub(crate) stat: SessionStat,
}

/// Decodes a `SessionResult`'s nested frames into a [`RemoteSession`].
fn remote_session(sr: SessionResult) -> Result<RemoteSession, WireError> {
    let update_bytes = sr.update.len() as u64;
    let WireMessage::ClientModelUpdate(update) = WireMessage::decode(&sr.update)? else {
        return Err(WireError::Malformed(
            "nested update is not a ClientModelUpdate",
        ));
    };
    let merge = match sr.merge {
        Some(frame) => {
            let bytes = frame.len() as u64;
            Some((WireMessage::decode(&frame)?, bytes))
        }
        None => None,
    };
    Ok(RemoteSession {
        update,
        update_bytes,
        merge,
        stat: SessionStat {
            client_id: sr.client_id,
            track: 0,
            duration_ns: sr.wall_ns,
        },
    })
}

/// One connected peer process.
struct Peer {
    link: Box<dyn Link>,
}

/// What one peer's collector thread observed during a round.
struct PeerOutcome {
    /// Physical bytes received from the peer this round.
    rx_bytes: u64,
    /// Frames discarded (stale task/round tags, unexpected kinds).
    stale: u64,
    /// Whether the peer is still usable after the round.
    alive: bool,
}

/// Server-side connection and round state for [`FdilRunner::serve`]
/// (crate-private: the runner drives it at fixed protocol points).
///
/// [`FdilRunner::serve`]: crate::FdilRunner::serve
pub(crate) struct ServeState<'a> {
    listener: &'a dyn Listener,
    spec: String,
    net: NetConfig,
    telemetry: Telemetry,
    peers: Vec<Peer>,
    /// Lifecycle frames (`TaskBegin`/`RoundSync`/`TaskEnd`) in emission
    /// order; replayed to late joiners so their replicas catch up.
    replay: Vec<Vec<u8>>,
    /// Current round's tag, for matching incoming `SessionResult`s.
    round_task: u32,
    round_round: u32,
    /// Planned-session client ids, ascending (slot order).
    expected_cids: Vec<u64>,
    /// Slots assigned to each peer, parallel to `peers`.
    assigned: Vec<Vec<usize>>,
}

impl<'a> ServeState<'a> {
    pub(crate) fn new(
        listener: &'a dyn Listener,
        spec: &str,
        net: NetConfig,
        telemetry: Telemetry,
    ) -> Self {
        Self {
            listener,
            spec: spec.to_string(),
            net,
            telemetry,
            peers: Vec::new(),
            replay: Vec::new(),
            round_task: 0,
            round_round: 0,
            expected_cids: Vec::new(),
            assigned: Vec::new(),
        }
    }

    /// Performs the server side of the handshake and registers the peer.
    /// A peer that fails the handshake is silently dropped.
    fn admit(&mut self, link: Box<dyn Link>) {
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        let hello = match link.recv_deadline(deadline) {
            Ok(frame) => WireMessage::decode(&frame),
            Err(_) => return,
        };
        let Ok(WireMessage::Hello(Hello { .. })) = hello else {
            return;
        };
        let welcome = WireMessage::Welcome(Welcome {
            peer_id: link.peer_id(),
            spec: self.spec.clone(),
        })
        .encode();
        if link.send(&welcome).is_err() {
            return;
        }
        let mut tx = welcome.len() as u64;
        for frame in &self.replay {
            if link.send(frame).is_err() {
                return;
            }
            tx += frame.len() as u64;
        }
        self.telemetry.counter("net.peers_joined", 1);
        self.telemetry
            .counter(&format!("net.peer.{}.tx_bytes", link.peer_id()), tx);
        self.peers.push(Peer { link });
    }

    /// Blocks until at least `net.min_peers` peers have joined. Peers beyond
    /// the minimum are admitted at round boundaries instead.
    pub(crate) fn wait_for_peers(&mut self) {
        while self.peers.len() < self.net.min_peers {
            match self
                .listener
                .accept_deadline(Instant::now() + Duration::from_millis(250))
            {
                Ok(link) => self.admit(link),
                Err(ConnectError::DeadlineExceeded) => {}
                Err(_) => {} // transient accept failure: keep listening
            }
        }
    }

    /// Drains pending connections (joins are admitted only at round
    /// boundaries). If every peer is gone, waits up to the join-grace window
    /// for a newcomer before letting the round proceed all-late.
    fn admit_joiners(&mut self) {
        while let Ok(link) = self.listener.accept_deadline(Instant::now() + JOIN_DRAIN) {
            self.admit(link);
        }
        if self.peers.is_empty() {
            let grace = Instant::now() + Duration::from_millis(self.net.join_grace_ms);
            while self.peers.is_empty() {
                match self.listener.accept_deadline(grace) {
                    Ok(link) => self.admit(link),
                    Err(_) => break,
                }
            }
        }
    }

    /// Sends `frame` to every live peer, pruning peers whose link failed,
    /// and (optionally) appends it to the replay log for late joiners.
    fn broadcast(&mut self, frame: &[u8], into_replay: bool) {
        let telemetry = self.telemetry.clone();
        let mut left = 0u64;
        self.peers.retain(|peer| {
            if peer.link.send(frame).is_ok() {
                telemetry.counter(
                    &format!("net.peer.{}.tx_bytes", peer.link.peer_id()),
                    frame.len() as u64,
                );
                true
            } else {
                left += 1;
                false
            }
        });
        if left > 0 {
            self.telemetry.counter("net.peers_left", left);
        }
        if into_replay {
            self.replay.push(frame.to_vec());
        }
    }

    /// Announces a task to all peers (and the replay log).
    pub(crate) fn begin_task(&mut self, task: usize, global: &[f32]) {
        let frame = WireMessage::TaskBegin(TaskBegin {
            task: task as u32,
            global: global.to_vec(),
        })
        .encode();
        self.broadcast(&frame, true);
    }

    /// Opens a round: admits boundary joiners, splits the planned sessions
    /// round-robin over the live peers (in join order), and sends each peer
    /// its `RoundStart`. With no live peers the round is left unassigned and
    /// [`ServeState::collect`] returns immediately with every slot late.
    pub(crate) fn begin_round(
        &mut self,
        task: usize,
        round: usize,
        assignments: &[SessionAssignment],
        model_frame: Vec<u8>,
        extra_frame: Option<Vec<u8>>,
    ) {
        self.admit_joiners();
        self.round_task = task as u32;
        self.round_round = round as u32;
        self.expected_cids = assignments.iter().map(|a| a.client_id).collect();
        self.assigned = vec![Vec::new(); self.peers.len()];
        if !self.peers.is_empty() {
            for slot in 0..assignments.len() {
                self.assigned[slot % self.peers.len()].push(slot);
            }
        }
        let mut dead = Vec::new();
        for (pi, peer) in self.peers.iter().enumerate() {
            let sessions: Vec<SessionAssignment> = self.assigned[pi]
                .iter()
                .map(|&slot| assignments[slot].clone())
                .collect();
            let frame = WireMessage::RoundStart(RoundStart {
                task: self.round_task,
                round: self.round_round,
                model: model_frame.clone(),
                extra: extra_frame.clone(),
                sessions,
            })
            .encode();
            if peer.link.send(&frame).is_ok() {
                self.telemetry.counter(
                    &format!("net.peer.{}.tx_bytes", peer.link.peer_id()),
                    frame.len() as u64,
                );
            } else {
                dead.push(pi);
            }
        }
        // Prune peers whose RoundStart never went out; their slots stay
        // unassigned and surface as late.
        for &pi in dead.iter().rev() {
            self.peers.remove(pi);
            self.assigned.remove(pi);
            self.telemetry.counter("net.peers_left", 1);
        }
    }

    /// Collects the round's results: one blocking collector thread per peer,
    /// each receiving until its peer's assigned results are all in, the peer
    /// disconnects or leaves, or `deadline` passes. Returns the slot-ordered
    /// results; `None` slots missed the deadline.
    pub(crate) fn collect(&mut self, deadline: Instant) -> Vec<Option<RemoteSession>> {
        let n = self.expected_cids.len();
        let mut slots: Vec<Option<RemoteSession>> = (0..n).map(|_| None).collect();
        if self.assigned.iter().all(Vec::is_empty) {
            return slots;
        }
        let slots_mx = Mutex::new(&mut slots);
        let (task, round) = (self.round_task, self.round_round);
        let cids = &self.expected_cids;
        let outcomes: Vec<PeerOutcome> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .peers
                .iter()
                .enumerate()
                .map(|(pi, peer)| {
                    let want = self.assigned[pi].len();
                    let link = &*peer.link;
                    let slots_mx = &slots_mx;
                    scope.spawn(move |_| {
                        let mut got = 0usize;
                        let mut out = PeerOutcome {
                            rx_bytes: 0,
                            stale: 0,
                            alive: true,
                        };
                        while got < want {
                            let frame = match link.recv_deadline(deadline) {
                                Ok(frame) => frame,
                                Err(RecvError::DeadlineExceeded) => break,
                                Err(_) => {
                                    out.alive = false;
                                    break;
                                }
                            };
                            out.rx_bytes += frame.len() as u64;
                            match WireMessage::decode(&frame) {
                                Ok(WireMessage::SessionResult(sr)) => {
                                    if sr.task != task || sr.round != round {
                                        out.stale += 1;
                                        continue;
                                    }
                                    let Ok(pos) = cids.binary_search(&sr.client_id) else {
                                        out.stale += 1;
                                        continue;
                                    };
                                    match remote_session(sr) {
                                        Ok(r) => {
                                            let mut guard =
                                                slots_mx.lock().expect("collect slots poisoned");
                                            if guard[pos].is_none() {
                                                guard[pos] = Some(r);
                                                got += 1;
                                            }
                                        }
                                        // Corrupt nested frame: protocol
                                        // violation, drop the peer.
                                        Err(_) => {
                                            out.alive = false;
                                            break;
                                        }
                                    }
                                }
                                Ok(WireMessage::RunEnd(_)) => {
                                    out.alive = false;
                                    break;
                                }
                                Ok(_) => out.stale += 1,
                                Err(_) => {
                                    out.alive = false;
                                    break;
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("collector thread panicked"))
                .collect()
        })
        .expect("collector scope panicked");
        let mut left = 0u64;
        let mut keep = outcomes.iter().map(|o| o.alive);
        for (peer, outcome) in self.peers.iter().zip(&outcomes) {
            if outcome.rx_bytes > 0 {
                self.telemetry.counter(
                    &format!("net.peer.{}.rx_bytes", peer.link.peer_id()),
                    outcome.rx_bytes,
                );
            }
            if outcome.stale > 0 {
                self.telemetry.counter("net.stale_frames", outcome.stale);
            }
            if !outcome.alive {
                left += 1;
            }
        }
        self.peers.retain(|_| keep.next().unwrap_or(true));
        if left > 0 {
            self.telemetry.counter("net.peers_left", left);
        }
        slots
    }

    /// Closes a round: syncs every peer (and the replay log) with the new
    /// global model and the full ordered merge sequence.
    pub(crate) fn finish_round(
        &mut self,
        task: usize,
        round: usize,
        global: &[f32],
        merges: &[(usize, WireMessage)],
    ) {
        let frame = WireMessage::RoundSync(RoundSync {
            task: task as u32,
            round: round as u32,
            global: global.to_vec(),
            merges: merges
                .iter()
                .map(|(cid, msg)| (*cid as u64, msg.encode()))
                .collect(),
        })
        .encode();
        self.broadcast(&frame, true);
    }

    /// Announces a task boundary to all peers (and the replay log).
    pub(crate) fn end_task(&mut self, task: usize, global: &[f32]) {
        let frame = WireMessage::TaskEnd(TaskEnd {
            task: task as u32,
            global: global.to_vec(),
        })
        .encode();
        self.broadcast(&frame, true);
    }

    /// Ends the run: tells every peer the run completed and closes links.
    pub(crate) fn finish_run(&mut self) {
        let frame = WireMessage::RunEnd(RunEnd {
            reason: RunEnd::COMPLETE,
        })
        .encode();
        self.broadcast(&frame, false);
        for peer in &self.peers {
            peer.link.close();
        }
    }
}

/// Why a client replica stopped.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The link failed or the server went silent past the idle patience.
    Recv(RecvError),
    /// A frame failed to encode/send or decode.
    Wire(WireError),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Recv(e) => write!(f, "receive failed: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

fn proto<T>(msg: impl Into<String>) -> Result<T, ClientError> {
    Err(ClientError::Protocol(msg.into()))
}

/// Test- and experiment-facing knobs for a client replica's behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientOptions {
    /// Sleep this long after training a round's sessions, before sending the
    /// results — a controllable straggler.
    pub train_delay_ms: u64,
    /// After sending this many session results, announce a voluntary leave
    /// (`RunEnd::LEAVE`) and return.
    pub leave_after_sessions: Option<usize>,
    /// On receiving this many `RoundStart` frames, return immediately
    /// without training or notice — a simulated crash.
    pub abort_after_round_starts: Option<usize>,
}

/// What a client replica did before it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// The peer id the server assigned in its `Welcome`.
    pub peer_id: PeerId,
    /// Rounds synced (RoundSync frames applied).
    pub rounds: usize,
    /// Sessions trained and reported.
    pub sessions: usize,
    /// Termination reason ([`RunEnd`] code).
    pub reason: u8,
}

/// Client side of the join handshake: sends `Hello`, waits for the server's
/// `Welcome`, and returns the assigned peer id plus the opaque run-spec
/// string (so the caller can build its replica before calling
/// [`run_client`]).
///
/// # Errors
///
/// Fails if the link errors, the deadline passes, or the server answers
/// with anything but a `Welcome`.
pub fn client_handshake(
    link: &dyn Link,
    nonce: u64,
    deadline: Instant,
) -> Result<(PeerId, String), ClientError> {
    link.send(&WireMessage::Hello(Hello { nonce }).encode())
        .map_err(ClientError::Wire)?;
    let frame = link.recv_deadline(deadline).map_err(ClientError::Recv)?;
    match WireMessage::decode(&frame).map_err(ClientError::Wire)? {
        WireMessage::Welcome(w) => Ok((w.peer_id, w.spec)),
        other => proto(format!("expected Welcome, got {:?}", other.kind())),
    }
}

/// Runs the client replica loop until the server ends the run (or an
/// option-triggered leave/abort fires). Call after [`client_handshake`];
/// `dataset`, `strategy`, and `cfg` must match the server's run, or the
/// replicated state (and therefore the training results) will diverge.
///
/// The loop blocks on the link with `cfg.net.client_idle_ms` patience,
/// handling each lifecycle frame as described in the module docs. All
/// strategy hooks fire in exactly the order the in-process driver fires
/// them, so a strategy cannot tell it is running remotely.
///
/// # Errors
///
/// Fails on link errors, undecodable frames, idle timeout, or protocol
/// violations (unknown group codes, out-of-range ids, unexpected kinds).
pub fn run_client(
    link: &dyn Link,
    peer_id: PeerId,
    dataset: &FdilDataset,
    strategy: &mut dyn FdilStrategy,
    cfg: &RunConfig,
    opts: &ClientOptions,
    telemetry: &Telemetry,
) -> Result<ClientReport, ClientError> {
    if let Err(err) = cfg.validate() {
        return proto(format!("invalid RunConfig: {err}"));
    }
    strategy.attach_telemetry(telemetry);
    let schedules = build_schedule(&cfg.increment, dataset.num_domains(), cfg.seed);
    let mut holdings: Vec<Holdings> = Vec::new();
    let idle = Duration::from_millis(cfg.net.client_idle_ms);
    let mut report = ClientReport {
        peer_id,
        rounds: 0,
        sessions: 0,
        reason: RunEnd::COMPLETE,
    };
    let mut round_starts = 0usize;
    loop {
        let frame = link
            .recv_deadline(Instant::now() + idle)
            .map_err(ClientError::Recv)?;
        match WireMessage::decode(&frame).map_err(ClientError::Wire)? {
            WireMessage::TaskBegin(tb) => {
                let task = tb.task as usize;
                let Some(schedule) = schedules.get(task) else {
                    return proto(format!("TaskBegin for out-of-range task {task}"));
                };
                strategy.on_task_start(task, &tb.global);
                distribute_task_data(&mut holdings, schedule, dataset, cfg, task);
            }
            WireMessage::RoundStart(rs) => {
                round_starts += 1;
                if opts
                    .abort_after_round_starts
                    .is_some_and(|n| round_starts >= n)
                {
                    report.reason = RunEnd::ABORT;
                    return Ok(report);
                }
                let (task, round) = (rs.task as usize, rs.round as usize);
                let WireMessage::ModelBroadcast(model) =
                    WireMessage::decode(&rs.model).map_err(ClientError::Wire)?
                else {
                    return proto("RoundStart model is not a ModelBroadcast");
                };
                let broadcast = match &rs.extra {
                    Some(frame) => Some(WireMessage::decode(frame).map_err(ClientError::Wire)?),
                    None => None,
                };
                let mut results: Vec<Vec<u8>> = Vec::with_capacity(rs.sessions.len());
                {
                    let ctx = strategy.round_ctx(task, round, &model.model, broadcast.as_ref());
                    for a in &rs.sessions {
                        let cid = a.client_id as usize;
                        let Some(group) = group_from_code(a.group) else {
                            return proto(format!("unknown group code {}", a.group));
                        };
                        let Some(h) = holdings.get(cid) else {
                            return proto(format!("assignment for unknown client {cid}"));
                        };
                        let setting = TrainSetting {
                            client_id: cid,
                            task,
                            round,
                            group,
                            samples: h.for_group(group),
                            local_epochs: cfg.local_epochs,
                            batch_size: cfg.batch_size,
                            seed: a.seed,
                        };
                        let start = Instant::now();
                        let out = ctx.train_client(&setting, telemetry);
                        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        let update = WireMessage::ClientModelUpdate(WireClientModelUpdate {
                            client_id: a.client_id,
                            weight: out.update.weight,
                            model: out.update.flat,
                        })
                        .encode();
                        let merge = out.merge.map(|m| m.encode());
                        results.push(
                            WireMessage::SessionResult(SessionResult {
                                task: rs.task,
                                round: rs.round,
                                client_id: a.client_id,
                                wall_ns,
                                update,
                                merge,
                            })
                            .encode(),
                        );
                    }
                }
                if opts.train_delay_ms > 0 {
                    std::thread::sleep(Duration::from_millis(opts.train_delay_ms));
                }
                for frame in results {
                    link.send(&frame).map_err(ClientError::Wire)?;
                    report.sessions += 1;
                    telemetry.counter("client.sessions", 1);
                    if opts
                        .leave_after_sessions
                        .is_some_and(|n| report.sessions >= n)
                    {
                        let bye = WireMessage::RunEnd(RunEnd {
                            reason: RunEnd::LEAVE,
                        })
                        .encode();
                        let _ = link.send(&bye);
                        report.reason = RunEnd::LEAVE;
                        return Ok(report);
                    }
                }
            }
            WireMessage::RoundSync(sync) => {
                let (task, round) = (sync.task as usize, sync.round as usize);
                for (cid, frame) in &sync.merges {
                    let msg = WireMessage::decode(frame).map_err(ClientError::Wire)?;
                    strategy.merge_client(task, round, *cid as usize, msg);
                }
                strategy.on_round_end(task, round, &sync.global);
                report.rounds += 1;
                telemetry.counter("client.rounds", 1);
            }
            WireMessage::TaskEnd(te) => {
                let task = te.task as usize;
                let Some(schedule) = schedules.get(task) else {
                    return proto(format!("TaskEnd for out-of-range task {task}"));
                };
                let client_data =
                    collect_client_data(&holdings, schedule, cfg.increment.rounds_per_task);
                strategy.on_task_end(task, &te.global, &client_data);
                carry_forward(&mut holdings, schedule);
            }
            WireMessage::RunEnd(end) => {
                report.reason = end.reason;
                return Ok(report);
            }
            other => {
                return proto(format!("unexpected {:?} frame", other.kind()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_codes_round_trip() {
        for group in [ClientGroup::Old, ClientGroup::Between, ClientGroup::New] {
            assert_eq!(group_from_code(group_code(group)), Some(group));
        }
        assert_eq!(group_from_code(3), None);
    }

    #[test]
    fn remote_session_decodes_nested_frames() {
        let update = WireMessage::ClientModelUpdate(WireClientModelUpdate {
            client_id: 4,
            weight: 2.5,
            model: vec![1.0, -2.0],
        })
        .encode();
        let sr = SessionResult {
            task: 1,
            round: 2,
            client_id: 4,
            wall_ns: 99,
            update: update.clone(),
            merge: None,
        };
        let r = remote_session(sr).expect("decodes");
        assert_eq!(r.update.client_id, 4);
        assert_eq!(r.update_bytes, update.len() as u64);
        assert!(r.merge.is_none());
        assert_eq!(r.stat.client_id, 4);
        assert_eq!(r.stat.track, 0);
        assert_eq!(r.stat.duration_ns, 99);
    }

    #[test]
    fn remote_session_rejects_wrong_nested_kind() {
        let sr = SessionResult {
            task: 0,
            round: 0,
            client_id: 0,
            wall_ns: 0,
            update: WireMessage::RunEnd(RunEnd { reason: 0 }).encode(),
            merge: None,
        };
        assert!(remote_session(sr).is_err());
    }
}
