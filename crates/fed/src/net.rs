//! Networked federation: the socket-backed server reactor behind
//! [`FdilRunner::serve`](crate::FdilRunner::serve) and the client replicas
//! that peer processes run.
//!
//! # Three-layer split
//!
//! The round *protocol* (selection, FedAvg, ordered merges, evaluation)
//! lives in the runner and never changes between the in-process and
//! networked paths. This module adds the middle layer — a server-side
//! [`ServeState`] reactor that assigns planned sessions to connected peers
//! and collects their results under a deadline, plus the client-side
//! replica loops — on top of the bottom layer, `refil-wire`'s
//! peer-addressed [`Link`]/[`Listener`] transports.
//!
//! # The reactor
//!
//! One loop — [`ServeState::pump`] — owns every connection: it polls the
//! listener and all peer sockets through one [`PollSet`], accepts joins,
//! reads frames, drains outbound queues, and expires handshake deadlines.
//! No thread is ever spawned per peer; the thread count of a serving
//! process is independent of how many peers connect. Each peer moves
//! through an explicit lifecycle:
//!
//! ```text
//! accept ──► Joining ──Hello──► Idle ──assign──► Selected ──flushed──► Training
//!               │                ▲                                        │
//!               │ (timeout)      └──────────── all results in ◄───────────┤
//!               ▼                                                         │ (deadline)
//!          Disconnected ◄─── link error / RunEnd / backpressure          Late
//! ```
//!
//! Sends are enqueued onto the link's bounded outbound queue and flushed
//! opportunistically by the pump; a peer whose queue exceeds
//! `net.send_queue_max_bytes` (when set) is disconnected as too slow.
//!
//! # Session resumption
//!
//! The `Welcome` hands every peer an opaque resume token. A client whose
//! connection blips — but whose replica state survived — reconnects with
//! `Hello { resume: Some(Resume { token, cursor }) }`, where `cursor`
//! counts the lifecycle frames its replica already applied; the server
//! replays only the missed suffix of its replay log. A fresh process (no
//! surviving state) simply joins anew and receives the full log. Slots a
//! disconnected peer left pending are immediately reassigned to the
//! least-loaded live peer via a supplementary `RoundStart`, so a crash or
//! blip does not strand sessions: the run completes byte-identical to an
//! undisturbed one.
//!
//! # State replication
//!
//! Everything a client needs besides the round randomness is a
//! deterministic function of the run config and dataset: the schedule, the
//! quantity-shift partition, and the holdings evolution are all seeded from
//! `cfg.seed` alone. A client therefore rebuilds that state locally and
//! replays the server's lifecycle frames — `TaskBegin` (task setup),
//! `RoundStart` (train assigned sessions), `RoundSync` (ordered merges +
//! round-end hook), `TaskEnd` (task teardown), `RunEnd` — while the server
//! keeps exclusively what must be centralized: client selection, dropout
//! and sampling RNGs, FedAvg, and evaluation.
//!
//! Payload exchanges (`ModelBroadcast`, `ClientModelUpdate` or its
//! compressed form `CompressedModelUpdate`, merge
//! messages) ride *inside* control frames as nested encoded frames, so the
//! per-logical-client traffic accounting of a networked run is
//! byte-identical to the loopback run's. Physical per-peer socket traffic
//! is reported separately through `net.*` telemetry counters.
//!
//! # Deadline semantics
//!
//! Each round the server pumps the reactor for at most
//! `cfg.net.round_deadline_ms`. A session whose result misses the deadline
//! is counted as `clients_late` in the round's report and simply omitted
//! from FedAvg — the round always completes. Results arriving later are
//! discarded by their task/round tag.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use refil_data::FdilDataset;
use refil_telemetry::SessionStat;
use refil_telemetry::Telemetry;
use refil_wire::{
    ClientModelUpdate as WireClientModelUpdate, CompressedModelUpdate, CompressionSpec,
    ConnectError, Hello, Interest, Link, Listener, PeerId, PollSet, RecvError, Resume, RoundStart,
    RoundSync, RunEnd, SessionAssignment, SessionResult, TaskBegin, TaskEnd, Welcome, WireError,
    WireMessage, CODEC_REVISION,
};

use crate::config::{NetConfig, RunConfig};
use crate::increment::{build_schedule, ClientGroup, TaskSchedule};
use crate::runner::{
    carry_forward, collect_client_data, distribute_task_data, FdilStrategy, Holdings, TrainSetting,
};

/// How long a joining peer gets to complete the `Hello`/`Welcome` handshake.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Accept-drain window at each round boundary: long enough to pick up a
/// connection that is already pending, short enough not to tax the round.
const JOIN_DRAIN: Duration = Duration::from_millis(5);
/// Longest single poll wait inside the reactor; bounds the latency of
/// deadline checks without spinning.
const PUMP_SLICE: Duration = Duration::from_millis(25);
/// Poll token reserved for the listener (peer ids never reach it).
const LISTENER_TOKEN: u64 = u64::MAX;

/// Number of live threads in this process, when the platform exposes it
/// (Linux: entries of `/proc/self/task`). Used by tests and benches to pin
/// the reactor's no-thread-per-peer property.
pub fn process_thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task")
        .ok()
        .map(|dir| dir.filter_map(Result::ok).count())
}

/// Wire group code for a [`ClientGroup`] (`SessionAssignment::group`).
pub(crate) fn group_code(group: ClientGroup) -> u8 {
    match group {
        ClientGroup::Old => 0,
        ClientGroup::Between => 1,
        ClientGroup::New => 2,
    }
}

/// Inverse of [`group_code`]; `None` for an unknown code.
fn group_from_code(code: u8) -> Option<ClientGroup> {
    match code {
        0 => Some(ClientGroup::Old),
        1 => Some(ClientGroup::Between),
        2 => Some(ClientGroup::New),
        _ => None,
    }
}

/// A decoded client uplink: either the plain dense update or the
/// compression-layer frame the server still has to reconstruct against its
/// broadcast history.
pub(crate) enum RemoteUpdate {
    /// Dense `ClientModelUpdate` (legacy peers, or compression inactive).
    Plain(WireClientModelUpdate),
    /// `CompressedModelUpdate` awaiting reconstruction against the broadcast
    /// tagged `(base_task, base_round)`.
    Compressed(CompressedModelUpdate),
}

/// One remote session's collected result, already decoded into exactly what
/// the aggregate loop consumes on the in-process path.
pub(crate) struct RemoteSession {
    /// Decoded nested model update (plain or compressed).
    pub(crate) update: RemoteUpdate,
    /// Encoded length of the nested update frame (logical uplink bytes).
    pub(crate) update_bytes: u64,
    /// Decoded nested merge message with its frame length, if any.
    pub(crate) merge: Option<(WireMessage, u64)>,
    /// Session stat (track 0 — the session ran on a remote peer, not a
    /// local worker slot; the duration is the client's reported wall time).
    pub(crate) stat: SessionStat,
}

/// Decodes a `SessionResult`'s nested frames into a [`RemoteSession`].
fn remote_session(sr: SessionResult) -> Result<RemoteSession, WireError> {
    let update_bytes = sr.update.len() as u64;
    let update = match WireMessage::decode(&sr.update)? {
        WireMessage::ClientModelUpdate(u) => RemoteUpdate::Plain(u),
        WireMessage::CompressedModelUpdate(c) => RemoteUpdate::Compressed(c),
        _ => {
            return Err(WireError::Malformed(
                "nested update is not a model update frame",
            ))
        }
    };
    let merge = match sr.merge {
        Some(frame) => {
            let bytes = frame.len() as u64;
            Some((WireMessage::decode(&frame)?, bytes))
        }
        None => None,
    };
    Ok(RemoteSession {
        update,
        update_bytes,
        merge,
        stat: SessionStat {
            client_id: sr.client_id,
            track: 0,
            duration_ns: sr.wall_ns,
        },
    })
}

/// Where a peer is in its connection lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeerState {
    /// Accepted; the `Hello` has until the handshake deadline to arrive.
    Joining,
    /// Handshaked, no work outstanding.
    Idle,
    /// Assigned slots this round; the `RoundStart` is still queued.
    Selected,
    /// `RoundStart` fully flushed; results expected.
    Training,
    /// Still connected but missed the round deadline.
    Late,
    /// Link closed or errored; pruned at the end of the pump pass.
    Disconnected,
}

/// One connected peer process, as the reactor sees it.
struct Peer {
    link: Box<dyn Link>,
    peer_id: PeerId,
    state: PeerState,
    /// Resume token minted at handshake (0 while still `Joining`).
    token: u64,
    /// Round slots awaiting this peer's results.
    pending_slots: Vec<usize>,
    /// `Hello` deadline while `Joining`.
    joined_by: Instant,
}

impl Peer {
    /// Queues a frame on the peer's link and accounts the physical bytes.
    /// Returns `false` when the link has failed.
    fn enqueue(&mut self, telemetry: &Telemetry, frame: &[u8]) -> bool {
        match self.link.enqueue_frame(frame) {
            Ok(_pending) => {
                telemetry.counter(
                    &format!("net.peer.{}.tx_bytes", self.peer_id),
                    frame.len() as u64,
                );
                true
            }
            Err(_) => false,
        }
    }

    fn handshaked(&self) -> bool {
        !matches!(self.state, PeerState::Joining | PeerState::Disconnected)
    }
}

/// Server-side reactor and round state for [`FdilRunner::serve`]
/// (crate-private: the runner drives it at fixed protocol points).
///
/// [`FdilRunner::serve`]: crate::FdilRunner::serve
pub(crate) struct ServeState<'a> {
    listener: &'a dyn Listener,
    spec: String,
    net: NetConfig,
    /// Compression spec offered to codec-aware peers in the `Welcome`
    /// (`None` when the run exchanges plain dense updates).
    compression: Option<CompressionSpec>,
    telemetry: Telemetry,
    peers: Vec<Peer>,
    /// Resume tokens of disconnected-but-resumable sessions.
    resumable: HashSet<u64>,
    /// Next resume token to mint (opaque; uniqueness is all that matters).
    next_token: u64,
    /// Lifecycle frames (`TaskBegin`/`RoundSync`/`TaskEnd`) in emission
    /// order; replayed to joiners (fully) and resumers (from their cursor).
    replay: Vec<Vec<u8>>,
    /// Current round's tag, for matching incoming `SessionResult`s.
    round_task: u32,
    round_round: u32,
    /// Whether a round is open (between `begin_round` and `collect` return).
    round_open: bool,
    /// Planned-session client ids, ascending (slot order).
    expected_cids: Vec<u64>,
    /// The round's assignments, slot-indexed, for supplementary
    /// `RoundStart`s when slots are reassigned.
    assignments: Vec<SessionAssignment>,
    /// The round's broadcast frames, for supplementary `RoundStart`s.
    model_frame: Vec<u8>,
    extra_frame: Option<Vec<u8>>,
    /// Collected results, slot-indexed.
    slots: Vec<Option<RemoteSession>>,
    collected: usize,
    /// Slots with no live peer to run them (reassigned to the next joiner).
    orphan_slots: Vec<usize>,
    poll: PollSet,
    ready: Vec<u64>,
}

impl<'a> ServeState<'a> {
    pub(crate) fn new(
        listener: &'a dyn Listener,
        spec: &str,
        net: NetConfig,
        compression: Option<CompressionSpec>,
        telemetry: Telemetry,
    ) -> Self {
        Self {
            listener,
            spec: spec.to_string(),
            net,
            compression,
            telemetry,
            peers: Vec::new(),
            resumable: HashSet::new(),
            next_token: 1,
            replay: Vec::new(),
            round_task: 0,
            round_round: 0,
            round_open: false,
            expected_cids: Vec::new(),
            assignments: Vec::new(),
            model_frame: Vec::new(),
            extra_frame: None,
            slots: Vec::new(),
            collected: 0,
            orphan_slots: Vec::new(),
            poll: PollSet::new(),
            ready: Vec::new(),
        }
    }

    /// Count of peers past the handshake and not disconnected.
    fn handshaked(&self) -> usize {
        self.peers.iter().filter(|p| p.handshaked()).count()
    }

    /// One reactor pass: poll every source (bounded by `wait`), accept
    /// pending joins, flush and read every live peer, expire handshake
    /// deadlines, and prune disconnected peers.
    ///
    /// Readiness from the poll only bounds the wait — every peer is
    /// serviced each pass (non-blocking reads are cheap, and fd-less links
    /// have no readiness signal), so a missed edge can never wedge a peer.
    fn pump(&mut self, wait: Duration) {
        self.telemetry.counter("net.reactor.polls", 1);
        self.poll.clear();
        self.poll
            .register(LISTENER_TOKEN, self.listener.poll_fd(), Interest::Read);
        for peer in &self.peers {
            if peer.state == PeerState::Disconnected {
                continue;
            }
            let interest = if peer.link.pending_tx() > 0 {
                Interest::ReadWrite
            } else {
                Interest::Read
            };
            self.poll
                .register(peer.peer_id, peer.link.poll_fd(), interest);
        }
        let mut ready = std::mem::take(&mut self.ready);
        if self.poll.wait(wait, &mut ready) > 0 {
            self.telemetry.counter("net.reactor.wakeups", 1);
        }
        self.ready = ready;

        while let Ok(Some(link)) = self.listener.try_accept_link() {
            self.accept(link);
        }
        let now = Instant::now();
        for pi in 0..self.peers.len() {
            self.service(pi, now);
        }
        self.peers.retain(|p| p.state != PeerState::Disconnected);
    }

    /// Registers a fresh connection in the `Joining` state.
    fn accept(&mut self, link: Box<dyn Link>) {
        let _ = link.set_nonblocking(true);
        self.telemetry.counter("net.reactor.accepts", 1);
        self.peers.push(Peer {
            peer_id: link.peer_id(),
            link,
            state: PeerState::Joining,
            token: 0,
            pending_slots: Vec::new(),
            joined_by: Instant::now() + HANDSHAKE_TIMEOUT,
        });
    }

    /// Services one peer: flush its queue, apply the backpressure policy,
    /// promote `Selected` → `Training` once the `RoundStart` is out, expire
    /// a stale handshake, then read and dispatch every available frame.
    fn service(&mut self, pi: usize, now: Instant) {
        if self.peers[pi].state == PeerState::Disconnected {
            return;
        }
        if self.peers[pi].link.pending_tx() > 0 {
            match self.peers[pi].link.try_flush() {
                Ok(left) => {
                    if self.net.send_queue_max_bytes > 0 && left > self.net.send_queue_max_bytes {
                        self.telemetry.counter("net.reactor.slow_disconnects", 1);
                        self.disconnect(pi, true);
                        return;
                    }
                }
                Err(_) => {
                    self.disconnect(pi, true);
                    return;
                }
            }
        }
        if self.peers[pi].state == PeerState::Selected && self.peers[pi].link.pending_tx() == 0 {
            self.peers[pi].state = PeerState::Training;
        }
        if self.peers[pi].state == PeerState::Joining && now > self.peers[pi].joined_by {
            // Never completed the handshake: drop silently (no session to
            // resume, nothing assigned).
            self.peers[pi].link.close();
            self.peers[pi].state = PeerState::Disconnected;
            return;
        }
        loop {
            match self.peers[pi].link.try_recv_frame() {
                Ok(Some(frame)) => {
                    if !self.on_frame(pi, &frame) {
                        return;
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    self.disconnect(pi, true);
                    return;
                }
            }
        }
    }

    /// Dispatches one inbound frame. Returns `false` when the peer was
    /// disconnected while handling it.
    fn on_frame(&mut self, pi: usize, frame: &[u8]) -> bool {
        self.telemetry.counter(
            &format!("net.peer.{}.rx_bytes", self.peers[pi].peer_id),
            frame.len() as u64,
        );
        let msg = match WireMessage::decode(frame) {
            Ok(msg) => msg,
            Err(_) => {
                self.disconnect(pi, true);
                return false;
            }
        };
        match (self.peers[pi].state, msg) {
            (PeerState::Joining, WireMessage::Hello(hello)) => self.handshake(pi, hello),
            (PeerState::Joining, _) => {
                // Anything but a Hello before the handshake is a protocol
                // violation; the connection carries no resumable session.
                self.disconnect(pi, false);
                false
            }
            (_, WireMessage::SessionResult(sr)) => self.on_result(pi, sr),
            (_, WireMessage::RunEnd(_)) => {
                // Voluntary leave or abort notice: deliberate, so the
                // session is not kept resumable.
                self.disconnect(pi, false);
                false
            }
            (_, _) => {
                self.telemetry.counter("net.stale_frames", 1);
                true
            }
        }
    }

    /// Completes the server side of the handshake: mints (or validates) the
    /// resume token, sends the `Welcome` plus the owed slice of the replay
    /// log, and hands any orphaned round slots to the newcomer.
    fn handshake(&mut self, pi: usize, hello: Hello) -> bool {
        let (token, replay_from) = match hello.resume {
            Some(resume) => {
                // A resumption claim must name a disconnected session and a
                // cursor within the log; anything else is a protocol
                // violation (honoring it would desynchronize the replica).
                if !self.resumable.remove(&resume.token)
                    || resume.cursor as usize > self.replay.len()
                {
                    self.disconnect(pi, false);
                    return false;
                }
                self.telemetry.counter("net.reactor.resumes", 1);
                (resume.token, resume.cursor as usize)
            }
            None => {
                let token = self.next_token;
                self.next_token += 1;
                (token, 0)
            }
        };
        let welcome = WireMessage::Welcome(Welcome {
            peer_id: self.peers[pi].peer_id,
            resume_token: token,
            spec: self.spec.clone(),
            // Only codec-aware peers are offered the compression spec;
            // legacy peers keep exchanging plain dense updates.
            compression: if hello.codec >= CODEC_REVISION {
                self.compression
            } else {
                None
            },
        })
        .encode();
        let ok = {
            let Self {
                ref mut peers,
                ref replay,
                ref telemetry,
                ..
            } = *self;
            let peer = &mut peers[pi];
            peer.enqueue(telemetry, &welcome)
                && replay[replay_from..]
                    .iter()
                    .all(|frame| peer.enqueue(telemetry, frame))
        };
        if !ok {
            self.disconnect(pi, true);
            return false;
        }
        let peer = &mut self.peers[pi];
        peer.token = token;
        peer.state = PeerState::Idle;
        self.telemetry.counter("net.peers_joined", 1);
        self.telemetry.counter("net.reactor.handshakes", 1);
        // Mid-round with stranded slots: put the newcomer straight to work.
        if self.round_open && !self.orphan_slots.is_empty() {
            let orphans = std::mem::take(&mut self.orphan_slots);
            self.telemetry
                .counter("net.reactor.reassigned_slots", orphans.len() as u64);
            self.assign_slots(pi, orphans);
        }
        true
    }

    /// Handles a `SessionResult` from a handshaked peer.
    fn on_result(&mut self, pi: usize, sr: SessionResult) -> bool {
        if !self.round_open || sr.task != self.round_task || sr.round != self.round_round {
            self.telemetry.counter("net.stale_frames", 1);
            return true;
        }
        let Ok(pos) = self.expected_cids.binary_search(&sr.client_id) else {
            self.telemetry.counter("net.stale_frames", 1);
            return true;
        };
        match remote_session(sr) {
            Ok(result) => {
                if self.slots[pos].is_none() {
                    self.slots[pos] = Some(result);
                    self.collected += 1;
                }
                self.orphan_slots.retain(|&slot| slot != pos);
                let peer = &mut self.peers[pi];
                peer.pending_slots.retain(|&slot| slot != pos);
                if peer.pending_slots.is_empty()
                    && matches!(peer.state, PeerState::Selected | PeerState::Training)
                {
                    peer.state = PeerState::Idle;
                }
                true
            }
            // Corrupt nested frame: protocol violation, drop the peer.
            Err(_) => {
                self.disconnect(pi, true);
                false
            }
        }
    }

    /// Closes a peer's link and takes it out of the round. When `resumable`
    /// the session token stays redeemable; either way any pending slots are
    /// immediately reassigned to a live peer (or parked for a joiner).
    fn disconnect(&mut self, pi: usize, resumable: bool) {
        let peer = &mut self.peers[pi];
        if peer.state == PeerState::Disconnected {
            return;
        }
        let had_handshaked = peer.handshaked();
        peer.link.close();
        peer.state = PeerState::Disconnected;
        let orphans = std::mem::take(&mut peer.pending_slots);
        if had_handshaked {
            self.telemetry.counter("net.peers_left", 1);
            if resumable && peer.token != 0 {
                self.resumable.insert(peer.token);
            }
        }
        if self.round_open {
            self.reassign(orphans);
        }
    }

    /// Routes stranded slots to the least-loaded live peer, or parks them
    /// in `orphan_slots` until one connects.
    fn reassign(&mut self, orphans: Vec<usize>) {
        let orphans: Vec<usize> = orphans
            .into_iter()
            .filter(|&slot| self.slots[slot].is_none())
            .collect();
        if orphans.is_empty() {
            return;
        }
        let target = self
            .peers
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                matches!(
                    p.state,
                    PeerState::Idle | PeerState::Selected | PeerState::Training
                )
            })
            .min_by_key(|(_, p)| p.pending_slots.len())
            .map(|(pi, _)| pi);
        match target {
            Some(pi) => {
                self.telemetry
                    .counter("net.reactor.reassigned_slots", orphans.len() as u64);
                self.assign_slots(pi, orphans);
            }
            None => self.orphan_slots.extend(orphans),
        }
    }

    /// Sends peer `pi` a `RoundStart` covering `slots` and marks them
    /// pending on it.
    fn assign_slots(&mut self, pi: usize, slots: Vec<usize>) {
        if slots.is_empty() {
            return;
        }
        if self.peers[pi].state == PeerState::Disconnected {
            self.reassign(slots);
            return;
        }
        let sessions: Vec<SessionAssignment> = slots
            .iter()
            .map(|&slot| self.assignments[slot].clone())
            .collect();
        let frame = WireMessage::RoundStart(RoundStart {
            task: self.round_task,
            round: self.round_round,
            model: self.model_frame.clone(),
            extra: self.extra_frame.clone(),
            sessions,
        })
        .encode();
        let ok = {
            let Self {
                ref mut peers,
                ref telemetry,
                ..
            } = *self;
            peers[pi].enqueue(telemetry, &frame)
        };
        if !ok {
            self.disconnect(pi, true);
            self.reassign(slots);
            return;
        }
        let peer = &mut self.peers[pi];
        peer.pending_slots.extend(slots);
        if matches!(peer.state, PeerState::Idle) {
            peer.state = PeerState::Selected;
        }
    }

    /// Queues `frame` to every handshaked peer (append to the replay log
    /// when `into_replay`) and gives the reactor a push to move it.
    fn broadcast(&mut self, frame: &[u8], into_replay: bool) {
        for pi in 0..self.peers.len() {
            if !self.peers[pi].handshaked() {
                continue;
            }
            let ok = {
                let Self {
                    ref mut peers,
                    ref telemetry,
                    ..
                } = *self;
                peers[pi].enqueue(telemetry, frame)
            };
            if !ok {
                self.disconnect(pi, true);
            }
        }
        if into_replay {
            self.replay.push(frame.to_vec());
        }
        self.pump(Duration::ZERO);
    }

    /// Pumps the reactor until at least `net.min_peers` peers have
    /// handshaked.
    pub(crate) fn wait_for_peers(&mut self) {
        while self.handshaked() < self.net.min_peers {
            self.pump(PUMP_SLICE);
        }
    }

    /// Announces a task to all peers (and the replay log).
    pub(crate) fn begin_task(&mut self, task: usize, global: &[f32]) {
        let frame = WireMessage::TaskBegin(TaskBegin {
            task: task as u32,
            global: global.to_vec(),
        })
        .encode();
        self.broadcast(&frame, true);
    }

    /// Opens a round: drains boundary joiners, splits the planned sessions
    /// round-robin over the eligible peers (in join order), and queues each
    /// its `RoundStart`. With no eligible peer the slots are parked as
    /// orphans; [`ServeState::collect`] then waits up to the join-grace
    /// window for a (re)joiner before declaring them late.
    pub(crate) fn begin_round(
        &mut self,
        task: usize,
        round: usize,
        assignments: &[SessionAssignment],
        model_frame: Vec<u8>,
        extra_frame: Option<Vec<u8>>,
    ) {
        // Pick up connections already pending at the boundary (newcomers
        // can still join mid-round; this just keeps joins prompt).
        self.pump(JOIN_DRAIN);
        self.pump(Duration::ZERO);
        if self.handshaked() == 0 {
            let grace = Instant::now() + Duration::from_millis(self.net.join_grace_ms);
            while self.handshaked() == 0 && Instant::now() < grace {
                self.pump(PUMP_SLICE);
            }
        }
        self.round_task = task as u32;
        self.round_round = round as u32;
        self.expected_cids = assignments.iter().map(|a| a.client_id).collect();
        self.assignments = assignments.to_vec();
        self.model_frame = model_frame;
        self.extra_frame = extra_frame;
        self.slots = (0..assignments.len()).map(|_| None).collect();
        self.collected = 0;
        self.orphan_slots.clear();
        self.round_open = true;
        let eligible: Vec<usize> = self
            .peers
            .iter_mut()
            .enumerate()
            .filter_map(|(pi, peer)| {
                if matches!(peer.state, PeerState::Idle | PeerState::Late) {
                    peer.state = PeerState::Idle;
                    peer.pending_slots.clear();
                    Some(pi)
                } else {
                    None
                }
            })
            .collect();
        if eligible.is_empty() {
            self.orphan_slots = (0..assignments.len()).collect();
            return;
        }
        let mut per_peer: Vec<Vec<usize>> = vec![Vec::new(); eligible.len()];
        for slot in 0..assignments.len() {
            per_peer[slot % eligible.len()].push(slot);
        }
        for (k, slots) in per_peer.into_iter().enumerate() {
            self.assign_slots(eligible[k], slots);
        }
        self.pump(Duration::ZERO);
    }

    /// Pumps the reactor until every slot's result is in or `deadline`
    /// passes, then closes the round. Returns the slot-ordered results;
    /// `None` slots missed the deadline.
    pub(crate) fn collect(&mut self, deadline: Instant) -> Vec<Option<RemoteSession>> {
        let reactor_t0 = self.telemetry.now_ns();
        let mut no_peer_grace: Option<Instant> = None;
        while self.collected < self.expected_cids.len() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // With nobody connected (not even joining), wait at most the
            // join-grace window for a (re)joiner before going all-late.
            if self.peers.is_empty() {
                let grace = *no_peer_grace
                    .get_or_insert(now + Duration::from_millis(self.net.join_grace_ms));
                if now >= grace {
                    break;
                }
            } else {
                no_peer_grace = None;
            }
            let wait = PUMP_SLICE.min(deadline.saturating_duration_since(now));
            self.pump(wait);
        }
        for peer in &mut self.peers {
            if !peer.pending_slots.is_empty() {
                peer.pending_slots.clear();
                if matches!(peer.state, PeerState::Selected | PeerState::Training) {
                    peer.state = PeerState::Late;
                }
            }
        }
        self.orphan_slots.clear();
        self.round_open = false;
        let dur = self.telemetry.now_ns().saturating_sub(reactor_t0);
        self.telemetry.timeline_span(0, "reactor", reactor_t0, dur);
        std::mem::take(&mut self.slots)
    }

    /// Closes a round: syncs every peer (and the replay log) with the new
    /// global model and the full ordered merge sequence.
    pub(crate) fn finish_round(
        &mut self,
        task: usize,
        round: usize,
        global: &[f32],
        merges: &[(usize, WireMessage)],
    ) {
        let frame = WireMessage::RoundSync(RoundSync {
            task: task as u32,
            round: round as u32,
            global: global.to_vec(),
            merges: merges
                .iter()
                .map(|(cid, msg)| (*cid as u64, msg.encode()))
                .collect(),
        })
        .encode();
        self.broadcast(&frame, true);
    }

    /// Announces a task boundary to all peers (and the replay log).
    pub(crate) fn end_task(&mut self, task: usize, global: &[f32]) {
        let frame = WireMessage::TaskEnd(TaskEnd {
            task: task as u32,
            global: global.to_vec(),
        })
        .encode();
        self.broadcast(&frame, true);
    }

    /// Ends the run: tells every peer the run completed, drains the
    /// outbound queues (bounded), and closes every link.
    pub(crate) fn finish_run(&mut self) {
        let frame = WireMessage::RunEnd(RunEnd {
            reason: RunEnd::COMPLETE,
        })
        .encode();
        self.broadcast(&frame, false);
        let drained_by = Instant::now() + Duration::from_secs(1);
        while Instant::now() < drained_by && self.peers.iter().any(|p| p.link.pending_tx() > 0) {
            self.pump(PUMP_SLICE);
        }
        for peer in &self.peers {
            peer.link.close();
        }
    }
}

/// Why a client replica stopped.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The link failed or the server went silent past the idle patience.
    Recv(RecvError),
    /// A frame failed to encode/send or decode.
    Wire(WireError),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Recv(e) => write!(f, "receive failed: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

fn proto<T>(msg: impl Into<String>) -> Result<T, ClientError> {
    Err(ClientError::Protocol(msg.into()))
}

/// Test- and experiment-facing knobs for a client replica's behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientOptions {
    /// Sleep this long after training a round's sessions, before sending the
    /// results — a controllable straggler.
    pub train_delay_ms: u64,
    /// After sending this many session results, announce a voluntary leave
    /// (`RunEnd::LEAVE`) and return.
    pub leave_after_sessions: Option<usize>,
    /// On receiving this many `RoundStart` frames, return immediately
    /// without training or notice — a simulated crash.
    pub abort_after_round_starts: Option<usize>,
    /// On receiving exactly this many `RoundStart` frames, close the link
    /// before training — a one-shot simulated connection blip. Under
    /// [`run_client_resumable`] the client then reconnects and resumes its
    /// session; under plain [`run_client`] it behaves like an abort.
    pub drop_link_after_round_starts: Option<usize>,
    /// How many times [`run_client_resumable`] may reconnect after losing
    /// the link before giving up.
    pub max_reconnects: usize,
    /// Compression spec negotiated in the `Welcome` (set by the client
    /// front-ends after the handshake). `None` sends plain dense updates.
    pub compression: Option<CompressionSpec>,
}

/// What a client replica did before it stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReport {
    /// The peer id the server assigned in its (latest) `Welcome`.
    pub peer_id: PeerId,
    /// Rounds synced (RoundSync frames applied).
    pub rounds: usize,
    /// Sessions trained and reported.
    pub sessions: usize,
    /// Successful session resumptions after a lost link.
    pub resumes: usize,
    /// Termination reason ([`RunEnd`] code).
    pub reason: u8,
}

/// Client side of the join handshake: sends `Hello` (optionally claiming a
/// resumable session), waits for the server's `Welcome`, and returns the
/// assigned peer id, the opaque run-spec string, the resume token to
/// present if this connection later blips, and the compression spec the
/// server negotiated (if any).
///
/// # Errors
///
/// Fails if the link errors, the deadline passes, or the server answers
/// with anything but a `Welcome`.
pub fn client_handshake(
    link: &dyn Link,
    nonce: u64,
    resume: Option<Resume>,
    deadline: Instant,
) -> Result<(PeerId, String, u64, Option<CompressionSpec>), ClientError> {
    link.send(
        &WireMessage::Hello(Hello {
            nonce,
            codec: CODEC_REVISION,
            resume,
        })
        .encode(),
    )
    .map_err(ClientError::Wire)?;
    let frame = link.recv_deadline(deadline).map_err(ClientError::Recv)?;
    match WireMessage::decode(&frame).map_err(ClientError::Wire)? {
        WireMessage::Welcome(w) => Ok((w.peer_id, w.spec, w.resume_token, w.compression)),
        other => proto(format!("expected Welcome, got {:?}", other.kind())),
    }
}

/// What [`ClientSession::handle`] tells the driving loop to do next.
enum Step {
    /// Keep receiving.
    Continue,
    /// The run is over (reason already recorded in the report).
    Done,
    /// Deliberately drop the link now (`drop_link_after_round_starts`).
    DropLink,
}

/// The replica state machine shared by every client front-end: the blocking
/// loop ([`run_client`]), the reconnecting loop ([`run_client_resumable`]),
/// and the multiplexed pump ([`run_clients_pumped`]). One frame in, strategy
/// hooks fired in exactly the in-process order, results queued on the link.
struct ClientSession<'a> {
    dataset: &'a FdilDataset,
    strategy: &'a mut dyn FdilStrategy,
    cfg: &'a RunConfig,
    opts: ClientOptions,
    telemetry: &'a Telemetry,
    schedules: Vec<TaskSchedule>,
    holdings: Vec<Holdings>,
    report: ClientReport,
    round_starts: usize,
    /// Lifecycle (replay-log) frames applied; the resume cursor.
    cursor: u64,
}

impl<'a> ClientSession<'a> {
    /// Builds a replica. The caller must have validated `cfg` already.
    fn new(
        dataset: &'a FdilDataset,
        strategy: &'a mut dyn FdilStrategy,
        cfg: &'a RunConfig,
        opts: ClientOptions,
        telemetry: &'a Telemetry,
        peer_id: PeerId,
    ) -> Self {
        strategy.attach_telemetry(telemetry);
        let schedules = build_schedule(&cfg.increment, dataset.num_domains(), cfg.seed);
        Self {
            dataset,
            strategy,
            cfg,
            opts,
            telemetry,
            schedules,
            holdings: Vec::new(),
            report: ClientReport {
                peer_id,
                rounds: 0,
                sessions: 0,
                resumes: 0,
                reason: RunEnd::COMPLETE,
            },
            round_starts: 0,
            cursor: 0,
        }
    }

    /// Applies one server frame, queueing any results on `link`.
    fn handle(&mut self, frame: &[u8], link: &dyn Link) -> Result<Step, ClientError> {
        match WireMessage::decode(frame).map_err(ClientError::Wire)? {
            WireMessage::TaskBegin(tb) => {
                self.cursor += 1;
                let task = tb.task as usize;
                let Some(schedule) = self.schedules.get(task) else {
                    return proto(format!("TaskBegin for out-of-range task {task}"));
                };
                self.strategy.on_task_start(task, &tb.global);
                distribute_task_data(&mut self.holdings, schedule, self.dataset, self.cfg, task);
                Ok(Step::Continue)
            }
            WireMessage::RoundStart(rs) => self.on_round_start(rs, link),
            WireMessage::RoundSync(sync) => {
                self.cursor += 1;
                let (task, round) = (sync.task as usize, sync.round as usize);
                for (cid, frame) in &sync.merges {
                    let msg = WireMessage::decode(frame).map_err(ClientError::Wire)?;
                    self.strategy.merge_client(task, round, *cid as usize, msg);
                }
                self.strategy.on_round_end(task, round, &sync.global);
                self.report.rounds += 1;
                self.telemetry.counter("client.rounds", 1);
                Ok(Step::Continue)
            }
            WireMessage::TaskEnd(te) => {
                self.cursor += 1;
                let task = te.task as usize;
                let Some(schedule) = self.schedules.get(task) else {
                    return proto(format!("TaskEnd for out-of-range task {task}"));
                };
                let client_data = collect_client_data(
                    &self.holdings,
                    schedule,
                    self.cfg.increment.rounds_per_task,
                );
                self.strategy.on_task_end(task, &te.global, &client_data);
                carry_forward(&mut self.holdings, schedule);
                Ok(Step::Continue)
            }
            WireMessage::RunEnd(end) => {
                self.report.reason = end.reason;
                Ok(Step::Done)
            }
            other => proto(format!("unexpected {:?} frame", other.kind())),
        }
    }

    /// Trains a `RoundStart`'s assigned sessions and queues the results.
    fn on_round_start(&mut self, rs: RoundStart, link: &dyn Link) -> Result<Step, ClientError> {
        self.round_starts += 1;
        if self
            .opts
            .abort_after_round_starts
            .is_some_and(|n| self.round_starts >= n)
        {
            self.report.reason = RunEnd::ABORT;
            return Ok(Step::Done);
        }
        if self
            .opts
            .drop_link_after_round_starts
            .is_some_and(|n| self.round_starts == n)
        {
            return Ok(Step::DropLink);
        }
        let (task, round) = (rs.task as usize, rs.round as usize);
        let WireMessage::ModelBroadcast(model) =
            WireMessage::decode(&rs.model).map_err(ClientError::Wire)?
        else {
            return proto("RoundStart model is not a ModelBroadcast");
        };
        let broadcast = match &rs.extra {
            Some(frame) => Some(WireMessage::decode(frame).map_err(ClientError::Wire)?),
            None => None,
        };
        let mut results: Vec<Vec<u8>> = Vec::with_capacity(rs.sessions.len());
        // Compressed uplinks are used only when the server negotiated a spec
        // and either the spec is lossy/active or the strategy restricts the
        // exchanged coordinates during this task (e.g. prompt-only RefFiL,
        // whose mask is `None` for the warm-up task 0).
        let mask = self.strategy.exchange_mask(u64::from(rs.task));
        let spec = self
            .opts
            .compression
            .unwrap_or_else(CompressionSpec::identity);
        let use_compressed =
            self.opts.compression.is_some() && (spec.is_active() || mask.is_some());
        {
            let ctx = self
                .strategy
                .round_ctx(task, round, &model.model, broadcast.as_ref());
            for a in &rs.sessions {
                let cid = a.client_id as usize;
                let Some(group) = group_from_code(a.group) else {
                    return proto(format!("unknown group code {}", a.group));
                };
                let Some(h) = self.holdings.get(cid) else {
                    return proto(format!("assignment for unknown client {cid}"));
                };
                let setting = TrainSetting {
                    client_id: cid,
                    task,
                    round,
                    group,
                    samples: h.for_group(group),
                    local_epochs: self.cfg.local_epochs,
                    batch_size: self.cfg.batch_size,
                    seed: a.seed,
                };
                let start = Instant::now();
                let out = ctx.train_client(&setting, self.telemetry);
                let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let update = if use_compressed {
                    WireMessage::CompressedModelUpdate(CompressedModelUpdate::compress(
                        &spec,
                        mask.as_deref(),
                        a.client_id,
                        out.update.weight,
                        &out.update.flat,
                        &model.model,
                        model.task,
                        model.round,
                    ))
                    .encode()
                } else {
                    WireMessage::ClientModelUpdate(WireClientModelUpdate {
                        client_id: a.client_id,
                        weight: out.update.weight,
                        model: out.update.flat,
                    })
                    .encode()
                };
                let merge = out.merge.map(|m| m.encode());
                results.push(
                    WireMessage::SessionResult(SessionResult {
                        task: rs.task,
                        round: rs.round,
                        client_id: a.client_id,
                        wall_ns,
                        update,
                        merge,
                    })
                    .encode(),
                );
            }
        }
        if self.opts.train_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.opts.train_delay_ms));
        }
        for frame in results {
            link.enqueue_frame(&frame).map_err(ClientError::Wire)?;
            self.report.sessions += 1;
            self.telemetry.counter("client.sessions", 1);
            if self
                .opts
                .leave_after_sessions
                .is_some_and(|n| self.report.sessions >= n)
            {
                let bye = WireMessage::RunEnd(RunEnd {
                    reason: RunEnd::LEAVE,
                })
                .encode();
                let _ = link.enqueue_frame(&bye);
                let _ = link.try_flush();
                self.report.reason = RunEnd::LEAVE;
                return Ok(Step::Done);
            }
        }
        Ok(Step::Continue)
    }
}

/// Runs the client replica loop until the server ends the run (or an
/// option-triggered leave/abort fires). Call after [`client_handshake`];
/// `dataset`, `strategy`, and `cfg` must match the server's run, or the
/// replicated state (and therefore the training results) will diverge.
///
/// The loop blocks on the link with `cfg.net.client_idle_ms` patience,
/// handling each lifecycle frame as described in the module docs. All
/// strategy hooks fire in exactly the order the in-process driver fires
/// them, so a strategy cannot tell it is running remotely.
///
/// # Errors
///
/// Fails on link errors, undecodable frames, idle timeout, or protocol
/// violations (unknown group codes, out-of-range ids, unexpected kinds).
pub fn run_client(
    link: &dyn Link,
    peer_id: PeerId,
    dataset: &FdilDataset,
    strategy: &mut dyn FdilStrategy,
    cfg: &RunConfig,
    opts: &ClientOptions,
    telemetry: &Telemetry,
) -> Result<ClientReport, ClientError> {
    if let Err(err) = cfg.validate() {
        return proto(format!("invalid RunConfig: {err}"));
    }
    let mut session = ClientSession::new(dataset, strategy, cfg, *opts, telemetry, peer_id);
    let idle = Duration::from_millis(cfg.net.client_idle_ms);
    loop {
        let frame = link
            .recv_deadline(Instant::now() + idle)
            .map_err(ClientError::Recv)?;
        match session.handle(&frame, link)? {
            Step::Continue => {}
            Step::Done => return Ok(session.report),
            Step::DropLink => {
                // No reconnection path here: the deliberate blip degrades
                // to a simulated crash.
                link.close();
                session.report.reason = RunEnd::ABORT;
                return Ok(session.report);
            }
        }
    }
}

/// Like [`run_client`], but owns its connection through a `connect` factory
/// and survives link loss: on a lost (or deliberately blipped) connection
/// it reconnects, presents its resume token and replay cursor, and picks
/// the session back up — at most `opts.max_reconnects` times.
///
/// # Errors
///
/// Same as [`run_client`], plus a `Protocol` error when reconnection
/// attempts are exhausted or the server refuses the resumption claim.
pub fn run_client_resumable(
    connect: &mut dyn FnMut() -> Result<Box<dyn Link>, ConnectError>,
    nonce: u64,
    dataset: &FdilDataset,
    strategy: &mut dyn FdilStrategy,
    cfg: &RunConfig,
    opts: &ClientOptions,
    telemetry: &Telemetry,
) -> Result<ClientReport, ClientError> {
    if let Err(err) = cfg.validate() {
        return proto(format!("invalid RunConfig: {err}"));
    }
    let idle = Duration::from_millis(cfg.net.client_idle_ms);
    let mut link = connect().map_err(|e| ClientError::Protocol(format!("connect failed: {e}")))?;
    let (peer_id, _spec, token, compression) =
        client_handshake(&*link, nonce, None, Instant::now() + idle)?;
    let mut opts = *opts;
    opts.compression = compression;
    let mut session = ClientSession::new(dataset, strategy, cfg, opts, telemetry, peer_id);
    let mut reconnects = 0usize;
    loop {
        let step = match link.recv_deadline(Instant::now() + idle) {
            Ok(frame) => session.handle(&frame, &*link)?,
            Err(RecvError::DeadlineExceeded) => {
                return Err(ClientError::Recv(RecvError::DeadlineExceeded))
            }
            Err(_) if reconnects < opts.max_reconnects => Step::DropLink,
            Err(e) => return Err(ClientError::Recv(e)),
        };
        match step {
            Step::Continue => {}
            Step::Done => return Ok(session.report),
            Step::DropLink => {
                link.close();
                if reconnects >= opts.max_reconnects {
                    session.report.reason = RunEnd::ABORT;
                    return Ok(session.report);
                }
                reconnects += 1;
                let resume = Resume {
                    token,
                    cursor: session.cursor,
                };
                link = resume_link(connect, nonce, resume, idle, &mut session)?;
            }
        }
    }
}

/// Reconnects and re-handshakes with a resumption claim, retrying the
/// connect until the idle patience runs out.
fn resume_link(
    connect: &mut dyn FnMut() -> Result<Box<dyn Link>, ConnectError>,
    nonce: u64,
    resume: Resume,
    idle: Duration,
    session: &mut ClientSession<'_>,
) -> Result<Box<dyn Link>, ClientError> {
    let deadline = Instant::now() + idle;
    loop {
        match connect() {
            Ok(link) => {
                let (peer_id, _spec, _token, _compression) =
                    client_handshake(&*link, nonce, Some(resume), deadline)?;
                session.report.peer_id = peer_id;
                session.report.resumes += 1;
                session.telemetry.counter("client.resumes", 1);
                return Ok(link);
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return proto(format!("reconnect failed: {e}"));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Drives many client replicas over their own links from ONE thread: a
/// client-side reactor mirroring the server's. Each replica must already
/// have handshaked (`peer_ids[i]` from link `links[i]`); `strategies[i]` is
/// its private strategy instance. Links are switched to non-blocking mode
/// and multiplexed through one [`PollSet`].
///
/// Returns one terminal result per replica, in input order. Used by the
/// `bench_net` harness and the peer-scale tests to run hundreds of
/// simulated clients without hundreds of threads.
pub fn run_clients_pumped(
    links: &[Box<dyn Link>],
    peer_ids: &[PeerId],
    strategies: &mut [Box<dyn FdilStrategy>],
    dataset: &FdilDataset,
    cfg: &RunConfig,
    opts: &ClientOptions,
    telemetry: &Telemetry,
) -> Vec<Result<ClientReport, ClientError>> {
    assert_eq!(links.len(), peer_ids.len(), "one peer id per link");
    assert_eq!(links.len(), strategies.len(), "one strategy per link");
    let n = links.len();
    if let Err(err) = cfg.validate() {
        return (0..n)
            .map(|_| proto(format!("invalid RunConfig: {err}")))
            .collect();
    }
    for link in links {
        let _ = link.set_nonblocking(true);
    }
    let mut sessions: Vec<ClientSession<'_>> = peer_ids
        .iter()
        .zip(strategies.iter_mut())
        .map(|(&pid, strategy)| {
            ClientSession::new(dataset, &mut **strategy, cfg, *opts, telemetry, pid)
        })
        .collect();
    let mut done: Vec<Option<Result<ClientReport, ClientError>>> = (0..n).map(|_| None).collect();
    let idle = Duration::from_millis(cfg.net.client_idle_ms);
    let mut last_rx: Vec<Instant> = vec![Instant::now(); n];
    let mut poll = PollSet::new();
    let mut ready: Vec<u64> = Vec::new();
    while done.iter().any(Option::is_none) {
        poll.clear();
        for (i, link) in links.iter().enumerate() {
            if done[i].is_some() {
                continue;
            }
            let interest = if link.pending_tx() > 0 {
                Interest::ReadWrite
            } else {
                Interest::Read
            };
            poll.register(i as u64, link.poll_fd(), interest);
        }
        poll.wait(PUMP_SLICE, &mut ready);
        let now = Instant::now();
        for i in 0..n {
            if done[i].is_some() {
                continue;
            }
            let link = &links[i];
            if link.pending_tx() > 0 {
                if let Err(e) = link.try_flush() {
                    done[i] = Some(Err(ClientError::Wire(e)));
                    continue;
                }
            }
            loop {
                match link.try_recv_frame() {
                    Ok(Some(frame)) => {
                        last_rx[i] = now;
                        match sessions[i].handle(&frame, &**link) {
                            Ok(Step::Continue) => {}
                            Ok(Step::Done) => {
                                done[i] = Some(Ok(sessions[i].report.clone()));
                                link.close();
                                break;
                            }
                            Ok(Step::DropLink) => {
                                link.close();
                                sessions[i].report.reason = RunEnd::ABORT;
                                done[i] = Some(Ok(sessions[i].report.clone()));
                                break;
                            }
                            Err(e) => {
                                done[i] = Some(Err(e));
                                link.close();
                                break;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        done[i] = Some(Err(ClientError::Recv(e)));
                        break;
                    }
                }
            }
            if done[i].is_none() && now.duration_since(last_rx[i]) > idle {
                done[i] = Some(Err(ClientError::Recv(RecvError::DeadlineExceeded)));
            }
        }
    }
    done.into_iter()
        .map(|slot| slot.expect("every replica reached a terminal state"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_codes_round_trip() {
        for group in [ClientGroup::Old, ClientGroup::Between, ClientGroup::New] {
            assert_eq!(group_from_code(group_code(group)), Some(group));
        }
        assert_eq!(group_from_code(3), None);
    }

    #[test]
    fn remote_session_decodes_nested_frames() {
        let update = WireMessage::ClientModelUpdate(WireClientModelUpdate {
            client_id: 4,
            weight: 2.5,
            model: vec![1.0, -2.0],
        })
        .encode();
        let sr = SessionResult {
            task: 1,
            round: 2,
            client_id: 4,
            wall_ns: 99,
            update: update.clone(),
            merge: None,
        };
        let r = remote_session(sr).expect("decodes");
        let RemoteUpdate::Plain(update_msg) = r.update else {
            panic!("expected a plain update");
        };
        assert_eq!(update_msg.client_id, 4);
        assert_eq!(r.update_bytes, update.len() as u64);
        assert!(r.merge.is_none());
        assert_eq!(r.stat.client_id, 4);
        assert_eq!(r.stat.track, 0);
        assert_eq!(r.stat.duration_ns, 99);
    }

    #[test]
    fn remote_session_decodes_compressed_frames() {
        let spec = CompressionSpec {
            delta: true,
            quant: refil_wire::QuantMode::Int8,
            topk_fraction: 0.5,
        };
        let base = vec![0.5f32, -1.0, 2.0, 0.0];
        let flat = vec![0.75f32, -1.0, 1.0, 0.25];
        let compressed = CompressedModelUpdate::compress(&spec, None, 7, 1.5, &flat, &base, 2, 3);
        let frame = WireMessage::CompressedModelUpdate(compressed).encode();
        let sr = SessionResult {
            task: 2,
            round: 3,
            client_id: 7,
            wall_ns: 11,
            update: frame.clone(),
            merge: None,
        };
        let r = remote_session(sr).expect("decodes");
        let RemoteUpdate::Compressed(c) = r.update else {
            panic!("expected a compressed update");
        };
        assert_eq!(c.client_id, 7);
        assert_eq!((c.base_task, c.base_round), (2, 3));
        assert_eq!(r.update_bytes, frame.len() as u64);
    }

    #[test]
    fn remote_session_rejects_wrong_nested_kind() {
        let sr = SessionResult {
            task: 0,
            round: 0,
            client_id: 0,
            wall_ns: 0,
            update: WireMessage::RunEnd(RunEnd { reason: 0 }).encode(),
            merge: None,
        };
        assert!(remote_session(sr).is_err());
    }

    #[test]
    fn process_thread_count_reports_at_least_this_thread() {
        if let Some(count) = process_thread_count() {
            assert!(count >= 1, "a running process has at least one thread");
        }
    }
}
