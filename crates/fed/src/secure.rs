//! Secure-aggregation-style masking (Bonawitz et al., 2017, simulated).
//!
//! The paper's setting is privacy-sensitive: clients must not reveal raw
//! data, and ideally not even individual model updates. Pairwise additive
//! masking lets the server compute the *sum* of updates without seeing any
//! single one: clients `i < j` agree on a shared seed, `i` adds the derived
//! mask and `j` subtracts it, so all masks cancel in the aggregate.
//!
//! This module simulates the scheme in-process (no real key agreement) to
//! make the privacy/utility accounting concrete: masked FedAvg is verified
//! to be numerically close to plain FedAvg while every individual masked
//! update looks like noise.

use rand::rngs::StdRng;
use rand::SeedableRng;

use refil_nn::gaussian;
use refil_wire::{Link, Loopback, MaskedModelUpdate, WireMessage};

use crate::aggregate::{fedavg, WeightedUpdate};

/// One client's masked contribution.
#[derive(Debug, Clone)]
pub struct MaskedUpdate {
    /// Client id (defines mask pairing).
    pub client_id: usize,
    /// Masked, weight-scaled parameters.
    pub masked: Vec<f32>,
    /// Aggregation weight (shared with the server; only the parameters are
    /// hidden).
    pub weight: f32,
}

impl MaskedUpdate {
    /// The wire envelope this update travels in.
    pub fn to_wire(&self) -> MaskedModelUpdate {
        MaskedModelUpdate {
            client_id: self.client_id as u64,
            weight: self.weight,
            masked: self.masked.clone(),
        }
    }

    /// Reconstructs the update from its decoded wire envelope.
    pub fn from_wire(msg: MaskedModelUpdate) -> Self {
        Self {
            client_id: msg.client_id as usize,
            masked: msg.masked,
            weight: msg.weight,
        }
    }
}

/// Derives the pairwise mask between clients `a < b` for `len` parameters.
fn pairwise_mask(round_seed: u64, a: usize, b: usize, len: usize, scale: f32) -> Vec<f32> {
    debug_assert!(a < b);
    let seed = round_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((a as u64) << 24)
        .wrapping_add(b as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| gaussian(&mut rng) * scale).collect()
}

/// Masks a client's weighted update with pairwise masks against every other
/// participant in `participants` (which must include `client_id`).
///
/// # Panics
///
/// Panics if `client_id` is not in `participants`.
pub fn mask_update(
    client_id: usize,
    flat: &[f32],
    weight: f32,
    participants: &[usize],
    round_seed: u64,
    mask_scale: f32,
) -> MaskedUpdate {
    assert!(
        participants.contains(&client_id),
        "client {client_id} not among participants"
    );
    // Clients upload weight-scaled parameters so the server can divide the
    // masked sum by the total weight.
    let mut masked: Vec<f32> = flat.iter().map(|x| x * weight).collect();
    for &other in participants {
        if other == client_id {
            continue;
        }
        let (lo, hi) = (client_id.min(other), client_id.max(other));
        let mask = pairwise_mask(round_seed, lo, hi, flat.len(), mask_scale);
        let sign = if client_id == lo { 1.0 } else { -1.0 };
        for (m, v) in masked.iter_mut().zip(&mask) {
            *m += sign * v;
        }
    }
    MaskedUpdate {
        client_id,
        masked,
        weight,
    }
}

/// Aggregates masked updates: the pairwise masks cancel in the sum, leaving
/// the plain weighted mean.
///
/// # Panics
///
/// Panics if `updates` is empty, lengths differ, or total weight is not
/// positive.
pub fn masked_fedavg(updates: &[MaskedUpdate]) -> Vec<f32> {
    assert!(
        !updates.is_empty(),
        "masked_fedavg needs at least one update"
    );
    let len = updates[0].masked.len();
    let total_weight: f32 = updates.iter().map(|u| u.weight).sum();
    assert!(total_weight > 0.0, "total weight must be positive");
    let mut sum = vec![0.0f32; len];
    for u in updates {
        assert_eq!(u.masked.len(), len, "length mismatch");
        for (s, &x) in sum.iter_mut().zip(&u.masked) {
            *s += x;
        }
    }
    for s in &mut sum {
        *s /= total_weight;
    }
    sum
}

/// End-to-end helper: masks every update against the full participant set,
/// ships each masked contribution as a `MaskedModelUpdate` frame over an
/// in-memory uplink, aggregates the decoded frames, and returns
/// `(aggregate, max_abs_error_vs_plain_fedavg)`.
///
/// # Panics
///
/// Panics if a frame fails to decode or decodes to a different message kind
/// (cannot happen over a loopback; a real transport surfacing corruption
/// would trip it).
pub fn secure_round(
    updates: &[WeightedUpdate],
    round_seed: u64,
    mask_scale: f32,
) -> (Vec<f32>, f32) {
    let participants: Vec<usize> = (0..updates.len()).collect();
    let uplink = Loopback::new();
    for (i, u) in updates.iter().enumerate() {
        let masked = mask_update(i, &u.flat, u.weight, &participants, round_seed, mask_scale);
        uplink
            .send(&WireMessage::MaskedModelUpdate(masked.to_wire()).encode())
            .expect("loopback send failed");
    }
    // Exactly one frame per participant is queued; any wait means the link
    // is broken, so a short deadline suffices.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let mut masked = Vec::with_capacity(updates.len());
    for _ in updates {
        let frame = uplink
            .recv_deadline(deadline)
            .expect("loopback recv failed");
        match WireMessage::decode(&frame).expect("masked frame failed to decode") {
            WireMessage::MaskedModelUpdate(m) => masked.push(MaskedUpdate::from_wire(m)),
            other => panic!("uplink delivered a {:?} frame", other.kind()),
        }
    }
    let secure = masked_fedavg(&masked);
    let plain = fedavg(updates);
    let err = secure
        .iter()
        .zip(&plain)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    (secure, err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates() -> Vec<WeightedUpdate> {
        vec![
            WeightedUpdate {
                flat: vec![1.0, 2.0, 3.0],
                weight: 1.0,
            },
            WeightedUpdate {
                flat: vec![3.0, 0.0, -1.0],
                weight: 2.0,
            },
            WeightedUpdate {
                flat: vec![-2.0, 4.0, 0.5],
                weight: 1.0,
            },
        ]
    }

    #[test]
    fn masks_cancel_in_aggregate() {
        let (secure, err) = secure_round(&updates(), 7, 10.0);
        let plain = fedavg(&updates());
        assert!(err < 1e-3, "masking broke the aggregate: err {err}");
        for (a, b) in secure.iter().zip(&plain) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn individual_updates_are_obscured() {
        let ups = updates();
        let participants = vec![0, 1, 2];
        let masked = mask_update(0, &ups[0].flat, ups[0].weight, &participants, 7, 10.0);
        // With mask scale 10, the masked vector should be far from the
        // weight-scaled original.
        let dist: f32 = masked
            .masked
            .iter()
            .zip(&ups[0].flat)
            .map(|(m, &x)| (m - x).abs())
            .sum();
        assert!(dist > 1.0, "mask too weak: distance {dist}");
    }

    #[test]
    fn two_clients_mask_symmetrically() {
        let participants = vec![3, 9];
        let a = mask_update(3, &[0.0, 0.0], 1.0, &participants, 1, 5.0);
        let b = mask_update(9, &[0.0, 0.0], 1.0, &participants, 1, 5.0);
        for (x, y) in a.masked.iter().zip(&b.masked) {
            assert!((x + y).abs() < 1e-6, "masks do not cancel: {x} + {y}");
        }
    }

    #[test]
    #[should_panic(expected = "not among participants")]
    fn masking_requires_membership() {
        mask_update(5, &[1.0], 1.0, &[0, 1], 0, 1.0);
    }

    #[test]
    fn masked_update_survives_the_wire() {
        let participants = vec![0, 1];
        let m = mask_update(1, &[1.5, -2.25], 3.0, &participants, 9, 4.0);
        let frame = WireMessage::MaskedModelUpdate(m.to_wire()).encode();
        let WireMessage::MaskedModelUpdate(back) = WireMessage::decode(&frame).unwrap() else {
            panic!("wrong kind");
        };
        let back = MaskedUpdate::from_wire(back);
        assert_eq!(back.client_id, m.client_id);
        assert_eq!(back.weight.to_bits(), m.weight.to_bits());
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.masked), bits(&m.masked));
    }

    #[test]
    fn single_client_round_is_identity() {
        let ups = vec![WeightedUpdate {
            flat: vec![2.0, -1.0],
            weight: 3.0,
        }];
        let (secure, err) = secure_round(&ups, 0, 10.0);
        assert!(err < 1e-5);
        assert!((secure[0] - 2.0).abs() < 1e-5);
    }
}
