//! Rehearsal oracle: the upper-bound reference the rehearsal-free methods
//! are measured against.
//!
//! Each client keeps an episodic memory of old-task samples (class-balanced
//! reservoir, capped per class) and replays it alongside new data — exactly
//! what the paper's setting *forbids* (privacy, device memory). Including it
//! as an oracle quantifies how much of the rehearsal gap RefFiL closes
//! without storing any data.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use refil_data::Sample;
use refil_fed::{
    ClientUpdate, EvalContext, FdilStrategy, RehearsalMemory, RoundContext, SessionOutput,
    Telemetry, TrainSetting, WireMessage, WireSample,
};
use refil_nn::models::PromptedBackbone;
use refil_nn::Tensor;

use crate::common::{MethodConfig, ModelCore, PlainEvalContext};

/// Finetuning plus per-client episodic replay (the rehearsal upper bound).
#[derive(Debug, Clone)]
pub struct RehearsalOracle {
    core: ModelCore,
    model: PromptedBackbone,
    /// Per-client episodic memory.
    memory: HashMap<usize, Vec<Sample>>,
    /// Cap on stored samples per class per client.
    per_class_cap: usize,
}

impl RehearsalOracle {
    /// Builds the oracle with `per_class_cap` stored samples per class.
    pub fn new(cfg: MethodConfig, per_class_cap: usize) -> Self {
        let core = ModelCore::new(cfg);
        let model = core.model.clone();
        Self {
            core,
            model,
            memory: HashMap::new(),
            per_class_cap: per_class_cap.max(1),
        }
    }

    /// Total samples held across all client memories (for the memory-cost
    /// comparison against RefFiL's prompt store).
    pub fn memory_samples(&self) -> usize {
        self.memory.values().map(Vec::len).sum()
    }

    /// Class-balanced reservoir update of one client's memory.
    fn remember(&mut self, client: usize, samples: &[Sample], seed: u64) {
        let classes = self.model.config().classes;
        let mem = self.memory.entry(client).or_default();
        let mut rng = StdRng::seed_from_u64(seed);
        for s in samples {
            let class_count = mem.iter().filter(|m| m.label == s.label).count();
            if class_count < self.per_class_cap {
                mem.push(s.clone());
            } else if rng.gen::<f32>() < 0.1 {
                // Reservoir-style replacement keeps the memory fresh.
                if let Some(slot) = mem
                    .iter_mut()
                    .filter(|m| m.label == s.label)
                    .choose_one(&mut rng)
                {
                    *slot = s.clone();
                }
            }
        }
        let _ = classes;
    }
}

/// Picks a uniformly random element of an iterator (small helper; avoids
/// collecting when only one slot is replaced).
trait ChooseOne<'a, T: 'a> {
    fn choose_one<R: Rng>(self, rng: &mut R) -> Option<&'a mut T>;
}

impl<'a, T: 'a, I: Iterator<Item = &'a mut T>> ChooseOne<'a, T> for I {
    fn choose_one<R: Rng>(self, rng: &mut R) -> Option<&'a mut T> {
        let mut chosen = None;
        for (seen, item) in self.enumerate() {
            if rng.gen_range(0..=seen) == 0 {
                chosen = Some(item);
            }
        }
        chosen
    }
}

struct RehearsalCtx<'a> {
    strat: &'a RehearsalOracle,
    global: &'a [f32],
}

impl RoundContext for RehearsalCtx<'_> {
    fn train_client(&self, setting: &TrainSetting<'_>, _telemetry: &Telemetry) -> SessionOutput {
        let mut core = self.strat.core.session(self.global);
        // Replay buffer + current data form the effective training set.
        let mut effective: Vec<Sample> = self
            .strat
            .memory
            .get(&setting.client_id)
            .cloned()
            .unwrap_or_default();
        effective.extend_from_slice(setting.samples);
        let model = &self.strat.model;
        let replayed = TrainSetting {
            samples: &effective,
            ..*setting
        };
        core.train_local(
            &replayed,
            |g, p, b| {
                let out = model.forward(g, p, &b.features, None);
                g.cross_entropy(out.logits, &b.labels)
            },
            |_| {},
        );
        SessionOutput {
            update: ClientUpdate {
                flat: core.flat(),
                weight: effective.len() as f32,
            },
            // The samples a session commits to episodic memory travel as a
            // RehearsalMemory frame — the privacy violation made explicit on
            // the wire.
            merge: Some(WireMessage::RehearsalMemory(RehearsalMemory {
                client_id: setting.client_id as u64,
                seed: setting.seed ^ 0xeb,
                samples: setting
                    .samples
                    .iter()
                    .map(|s| WireSample {
                        label: s.label as u32,
                        features: s.features.clone(),
                    })
                    .collect(),
            })),
        }
    }
}

impl FdilStrategy for RehearsalOracle {
    fn name(&self) -> String {
        "Rehearsal (oracle)".into()
    }

    fn init_global(&mut self) -> Vec<f32> {
        self.core.flat()
    }

    fn round_ctx<'a>(
        &'a self,
        _task: usize,
        _round: usize,
        global: &'a [f32],
        _broadcast: Option<&'a WireMessage>,
    ) -> Box<dyn RoundContext + 'a> {
        Box::new(RehearsalCtx {
            strat: self,
            global,
        })
    }

    fn merge_client(
        &mut self,
        _task: usize,
        _round: usize,
        client_id: usize,
        message: WireMessage,
    ) {
        // Memorize the new data for future tasks (this is the privacy
        // violation rehearsal-free methods avoid). Applied post-round in
        // client-id order; memories are per-client, so the end state matches
        // the sequential driver's.
        if let WireMessage::RehearsalMemory(mem) = message {
            let samples: Vec<Sample> = mem
                .samples
                .into_iter()
                .map(|s| Sample {
                    features: s.features,
                    label: s.label as usize,
                })
                .collect();
            self.remember(client_id, &samples, mem.seed);
        }
    }

    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
        self.core.predict_plain(global, features)
    }

    fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a> {
        Box::new(PlainEvalContext::new(&self.core, global))
    }

    fn cls_embeddings(&mut self, global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        self.core.cls_with_prompts(global, features, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_cfg, tiny_dataset, tiny_run_config};
    use refil_fed::FdilRunner;

    #[test]
    fn oracle_runs_and_accumulates_memory() {
        let ds = tiny_dataset();
        let mut strat = RehearsalOracle::new(tiny_cfg(), 8);
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert_eq!(res.domain_acc.len(), ds.num_domains());
        assert!(strat.memory_samples() > 0, "memory never filled");
    }

    #[test]
    fn memory_respects_per_class_cap() {
        let ds = tiny_dataset();
        let mut strat = RehearsalOracle::new(tiny_cfg(), 3);
        strat.remember(0, &ds.domains[0].train, 1);
        let mem = &strat.memory[&0];
        for k in 0..3 {
            let count = mem.iter().filter(|s| s.label == k).count();
            assert!(count <= 3, "class {k} has {count} > cap");
        }
    }

    #[test]
    fn oracle_retains_better_than_finetune() {
        // On the colliding 2-domain toy set the oracle's replay must keep
        // domain-0 accuracy at least as high as plain finetuning.
        let ds = tiny_dataset();
        let cfg = tiny_run_config();
        let mut oracle = RehearsalOracle::new(tiny_cfg(), 16);
        let ro = FdilRunner::new(cfg).run(&ds, &mut oracle);
        let mut plain = crate::Finetune::new(tiny_cfg());
        let rp = FdilRunner::new(cfg).run(&ds, &mut plain);
        let o0 = ro.final_domain_accuracies()[0];
        let p0 = rp.final_domain_accuracies()[0];
        assert!(
            o0 >= p0 - 5.0,
            "oracle ({o0}) should not retain much worse than finetune ({p0})"
        );
    }
}
