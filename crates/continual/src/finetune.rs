//! Finetune: the lower-bound baseline that simply keeps training the global
//! model on whatever data arrives, with no forgetting mitigation.

use refil_fed::{
    ClientUpdate, EvalContext, FdilStrategy, RoundContext, SessionOutput, Telemetry, TrainSetting,
    WireMessage,
};
use refil_nn::models::PromptedBackbone;
use refil_nn::Tensor;

use crate::common::{MethodConfig, ModelCore, PlainEvalContext};

/// Straightforward federated finetuning (paper Table 1's "Finetune").
#[derive(Debug, Clone)]
pub struct Finetune {
    core: ModelCore,
    model: PromptedBackbone,
}

impl Finetune {
    /// Builds the strategy.
    pub fn new(cfg: MethodConfig) -> Self {
        let core = ModelCore::new(cfg);
        let model = core.model.clone();
        Self { core, model }
    }
}

struct FinetuneCtx<'a> {
    strat: &'a Finetune,
    global: &'a [f32],
}

impl RoundContext for FinetuneCtx<'_> {
    fn train_client(&self, setting: &TrainSetting<'_>, _telemetry: &Telemetry) -> SessionOutput {
        let mut core = self.strat.core.session(self.global);
        let model = &self.strat.model;
        core.train_local(
            setting,
            |g, p, b| {
                let out = model.forward(g, p, &b.features, None);
                g.cross_entropy(out.logits, &b.labels)
            },
            |_| {},
        );
        ClientUpdate {
            flat: core.flat(),
            weight: setting.samples.len() as f32,
        }
        .into()
    }
}

impl FdilStrategy for Finetune {
    fn name(&self) -> String {
        "Finetune".into()
    }

    fn init_global(&mut self) -> Vec<f32> {
        self.core.flat()
    }

    fn round_ctx<'a>(
        &'a self,
        _task: usize,
        _round: usize,
        global: &'a [f32],
        _broadcast: Option<&'a WireMessage>,
    ) -> Box<dyn RoundContext + 'a> {
        Box::new(FinetuneCtx {
            strat: self,
            global,
        })
    }

    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
        self.core.predict_plain(global, features)
    }

    fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a> {
        Box::new(PlainEvalContext::new(&self.core, global))
    }

    fn cls_embeddings(&mut self, global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        self.core.cls_with_prompts(global, features, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_cfg, tiny_dataset, tiny_run_config};
    use refil_fed::FdilRunner;

    #[test]
    fn finetune_learns_first_domain() {
        let ds = tiny_dataset();
        let mut strat = Finetune::new(tiny_cfg());
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert!(
            res.domain_acc[0][0] > 50.0,
            "finetune failed to learn domain 0: {:?}",
            res.domain_acc
        );
    }

    #[test]
    fn finetune_forgets_under_cliff_transition() {
        // Two-phase sequential training (no old clients, no U_b mixing — the
        // Fig. 1a cliff setting) must show forgetting on domain 0.
        use refil_fed::{ClientGroup, TrainSetting};

        let ds = tiny_dataset();
        let mut strat = Finetune::new(tiny_cfg());
        let mut global = strat.init_global();
        let phase = |strat: &mut Finetune, global: &[f32], samples: &_| {
            let setting = TrainSetting {
                client_id: 0,
                task: 0,
                round: 0,
                group: ClientGroup::New,
                samples,
                local_epochs: 8,
                batch_size: 16,
                seed: 1,
            };
            strat.train_once(&setting, global).flat
        };
        global = phase(&mut strat, &global, &ds.domains[0].train);
        let eval = |strat: &mut Finetune, global: &[f32]| {
            refil_fed::evaluate_domain(strat, global, &ds, 0, 128)
        };
        let before = eval(&mut strat, &global);
        global = phase(&mut strat, &global, &ds.domains[1].train);
        let after = eval(&mut strat, &global);
        assert!(before > 60.0, "never learned domain 0: {before}");
        assert!(
            after < before - 5.0,
            "expected forgetting on domain 0: {before} -> {after}"
        );
    }
}
