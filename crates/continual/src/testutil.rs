//! Shared fixtures for strategy tests (crate-internal).

use refil_data::{DatasetSpec, DomainSpec, FdilDataset};
use refil_fed::{IncrementConfig, RunConfig};
use refil_nn::models::BackboneConfig;

use crate::common::MethodConfig;

/// A very small backbone + method configuration for fast tests.
pub fn tiny_cfg() -> MethodConfig {
    MethodConfig {
        backbone: BackboneConfig {
            in_dim: 8,
            extractor_width: 16,
            extractor_depth: 1,
            n_patches: 2,
            token_dim: 8,
            heads: 2,
            blocks: 1,
            classes: 3,
            extractor: refil_nn::models::ExtractorKind::ResidualMlp,
        },
        lr: 0.05,
        prompt_len: 2,
        pool_size: 4,
        top_n: 2,
        max_tasks: 2,
        ..MethodConfig::default()
    }
}

/// A 2-domain, 3-class dataset with a strong shift.
pub fn tiny_dataset() -> FdilDataset {
    DatasetSpec {
        name: "tiny".into(),
        classes: 3,
        feature_dim: 8,
        proto_scale: 2.5,
        within_std: 0.4,
        test_fraction: 0.3,
        signature_dim: 2,
        signature_scale: 0.6,
        domains: vec![
            DomainSpec::new("d0", 150, 0.15, 0.05),
            DomainSpec::new("d1", 150, 0.3, 0.4).with_collision(1.0),
        ],
    }
    .generate(11)
}

/// A minimal federated protocol: 4 clients, 3 rounds per task.
pub fn tiny_run_config() -> RunConfig {
    RunConfig {
        increment: IncrementConfig {
            initial_clients: 4,
            select_per_round: 3,
            increment_per_task: 1,
            transition_fraction: 0.8,
            rounds_per_task: 3,
        },
        local_epochs: 1,
        batch_size: 16,
        quantity_sigma: 0.5,
        eval_batch: 128,
        dropout_prob: 0.0,
        seed: 13,
        threads: 0,
        net: Default::default(),
        wire: Default::default(),
    }
}
