//! Shared machinery for the baseline FDIL strategies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use refil_data::{minibatches, Batch};
use refil_fed::{DomainEvaluator, EvalContext, TrainSetting};
use refil_nn::models::{BackboneConfig, PromptedBackbone};
use refil_nn::{clip_grad_norm, Graph, InferenceSession, Params, Sgd, Tensor, Var};

/// Builds prompt tokens for a forward pass (e.g. pool lookup + concat).
pub type PromptBuilder<'a> = &'a dyn Fn(&Graph, &Params) -> Var;

/// Hyperparameters shared by every method in the evaluation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MethodConfig {
    /// Backbone architecture (identical across methods, as in the paper).
    pub backbone: BackboneConfig,
    /// SGD learning rate (paper: 0.03–0.06 depending on dataset).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Gradient-clipping threshold.
    pub clip: f32,
    /// Learning-rate multiplier for the feature extractor. Prompt-based
    /// continual learning assumes a relatively stable backbone; every method
    /// shares this setting, so comparisons stay fair.
    pub extractor_lr_scale: f32,
    /// Prompt-based methods (L2P, DualPrompt, RefFiL) adapt through prompts
    /// over a stable representation: after the first task the shared
    /// extractor/attention weights train at `stable_backbone_scale` while
    /// prompts and the classifier keep the full rate. This mirrors the
    /// frozen-pretrained-backbone assumption of the original L2P/DualPrompt
    /// and is switched on only for prompt-based strategies.
    pub stable_after_first_task: bool,
    /// Backbone learning-rate multiplier applied from task 2 on when
    /// [`MethodConfig::stable_after_first_task`] is set.
    pub stable_backbone_scale: f32,
    /// Prompt length (tokens per prompt) for prompt-based methods.
    pub prompt_len: usize,
    /// Prompt-pool size for FedL2P† / FedDualPrompt†.
    pub pool_size: usize,
    /// Prompts selected per query for pool variants.
    pub top_n: usize,
    /// EWC constraint factor lambda (paper: 300).
    pub ewc_lambda: f32,
    /// Distillation temperature for FedLwF (paper: 2).
    pub kd_temperature: f32,
    /// Weight of the distillation term for FedLwF.
    pub kd_weight: f32,
    /// Upper bound on the number of tasks (sizes task-conditioned tables).
    pub max_tasks: usize,
    /// Model-initialization seed (shared so every method starts identically).
    pub init_seed: u64,
}

impl Default for MethodConfig {
    fn default() -> Self {
        Self {
            backbone: BackboneConfig::default(),
            lr: 0.03,
            momentum: 0.9,
            clip: 5.0,
            extractor_lr_scale: 0.15,
            stable_after_first_task: false,
            stable_backbone_scale: 0.2,
            prompt_len: 4,
            pool_size: 8,
            top_n: 2,
            ewc_lambda: 300.0,
            kd_temperature: 2.0,
            kd_weight: 1.0,
            max_tasks: 8,
            init_seed: 7,
        }
    }
}

/// Backbone + parameter store + SGD settings, shared by all strategies.
#[derive(Debug, Clone)]
pub struct ModelCore {
    /// The shared backbone.
    pub model: PromptedBackbone,
    /// Parameter store (backbone first; strategies append their own).
    pub params: Params,
    /// Method hyperparameters.
    pub cfg: MethodConfig,
}

impl ModelCore {
    /// Builds the backbone deterministically from `cfg.init_seed`.
    pub fn new(cfg: MethodConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.init_seed);
        let mut params = Params::new();
        let model = PromptedBackbone::new(&mut params, "backbone", cfg.backbone, &mut rng);
        Self { model, params, cfg }
    }

    /// Loads a flat global parameter vector.
    pub fn load(&mut self, flat: &[f32]) {
        self.params.load_flat(flat);
    }

    /// Exports the flat parameter vector.
    pub fn flat(&self) -> Vec<f32> {
        self.params.to_flat()
    }

    /// A per-session working copy with `flat` loaded: the starting point for
    /// one client's local training. Sessions clone rather than mutate the
    /// shared core so they can run concurrently within a round.
    pub fn session(&self, flat: &[f32]) -> ModelCore {
        let mut core = self.clone();
        core.load(flat);
        core
    }

    /// Runs the standard local-SGD loop. `batch_loss` builds the total loss
    /// for one minibatch; `post_backward` (if any) injects manual gradient
    /// terms (e.g. the EWC penalty) after autodiff but before the step.
    pub fn train_local<F, P>(
        &mut self,
        setting: &TrainSetting<'_>,
        mut batch_loss: F,
        mut post_backward: P,
    ) where
        F: FnMut(&Graph, &Params, &Batch) -> Var,
        P: FnMut(&mut Params),
    {
        let mut rng = StdRng::seed_from_u64(setting.seed);
        let stabilize = self.cfg.stable_after_first_task && setting.task > 0;
        let scales: Vec<f32> = self
            .params
            .iter()
            .map(|(_, e)| {
                let shared_backbone = e.name.starts_with("backbone.extractor")
                    || e.name.starts_with("backbone.block")
                    || e.name.starts_with("backbone.cls");
                if stabilize && shared_backbone {
                    self.cfg.stable_backbone_scale
                } else if e.name.starts_with("backbone.extractor") {
                    self.cfg.extractor_lr_scale
                } else {
                    1.0
                }
            })
            .collect();
        let mut opt = Sgd::new(self.cfg.lr)
            .with_momentum(self.cfg.momentum)
            .with_param_lr_scales(scales);
        for _epoch in 0..setting.local_epochs {
            for batch in minibatches(setting.samples, setting.batch_size, &mut rng) {
                self.params.zero_grad();
                let g = Graph::new();
                let loss = batch_loss(&g, &self.params, &batch);
                g.backward(loss, &mut self.params);
                post_backward(&mut self.params);
                clip_grad_norm(&mut self.params, self.cfg.clip);
                opt.step(&mut self.params);
            }
        }
    }

    /// A read-only parameter snapshot with `flat` loaded — the weights an
    /// evaluation context shares across worker threads.
    pub fn eval_params(&self, flat: &[f32]) -> Params {
        let mut params = self.params.clone();
        params.load_flat(flat);
        params
    }

    /// Predicts labels under `flat` with no prompts.
    pub fn predict_plain(&mut self, flat: &[f32], features: &Tensor) -> Vec<usize> {
        self.load(flat);
        self.model.predict(&self.params, features)
    }

    /// Final `[CLS]` representations under `flat` with the given prompts.
    pub fn cls_with_prompts(
        &mut self,
        flat: &[f32],
        features: &Tensor,
        prompts: Option<PromptBuilder<'_>>,
    ) -> Vec<Vec<f32>> {
        self.load(flat);
        let g = Graph::new();
        let pv = prompts.map(|f| f(&g, &self.params));
        let out = self.model.forward(&g, &self.params, features, pv);
        let cls = g.value(out.cls);
        let d = cls.shape()[1];
        cls.data().chunks(d).map(<[f32]>::to_vec).collect()
    }
}

/// Prompt-free evaluation context shared by the plain baselines (Finetune,
/// FedProx, FedLwF, FedEWC, the rehearsal oracle): the backbone plus a
/// parameter snapshot under the evaluated global vector. Each worker predicts
/// through its own [`PlainEvalContext::evaluator`], whose reusable tape-free
/// inference session recycles forward buffers across batches.
pub struct PlainEvalContext {
    model: PromptedBackbone,
    params: Params,
}

impl PlainEvalContext {
    /// Snapshots `core`'s backbone with `global` loaded.
    pub fn new(core: &ModelCore, global: &[f32]) -> Self {
        Self {
            model: core.model.clone(),
            params: core.eval_params(global),
        }
    }
}

impl EvalContext for PlainEvalContext {
    fn evaluator(&self) -> Box<dyn DomainEvaluator + '_> {
        Box::new(PlainEvaluator {
            ctx: self,
            session: InferenceSession::new(),
        })
    }
}

struct PlainEvaluator<'a> {
    ctx: &'a PlainEvalContext,
    session: InferenceSession,
}

impl DomainEvaluator for PlainEvaluator<'_> {
    fn predict_domain(&mut self, features: &Tensor, _domain: usize) -> Vec<usize> {
        self.ctx
            .model
            .predict_in(&mut self.session, &self.ctx.params, features)
    }
}

/// Adds the gradient of `0.5 * lambda * sum_i fisher_i * (theta_i - anchor_i)^2`
/// directly to the parameter gradients (flat layout must match
/// [`Params::to_flat`]).
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn add_quadratic_penalty_grads(
    params: &mut Params,
    anchor: &[f32],
    fisher: &[f32],
    lambda: f32,
) {
    let theta = params.to_flat();
    assert_eq!(theta.len(), anchor.len(), "anchor length mismatch");
    assert_eq!(theta.len(), fisher.len(), "fisher length mismatch");
    let mut off = 0usize;
    let ids: Vec<_> = params.iter().map(|(id, e)| (id, e.value.numel())).collect();
    for (id, n) in ids {
        let grad = params.grad_mut(id);
        for (j, gslot) in grad.data_mut().iter_mut().enumerate() {
            let i = off + j;
            *gslot += lambda * fisher[i] * (theta[i] - anchor[i]);
        }
        off += n;
    }
}

/// Estimates the diagonal Fisher information of the cross-entropy loss at the
/// current parameters on `samples` (squared gradients averaged over
/// minibatches). Returns a flat vector aligned with [`Params::to_flat`].
pub fn estimate_fisher(
    core: &mut ModelCore,
    samples: &[refil_data::Sample],
    max_samples: usize,
    seed: u64,
) -> Vec<f32> {
    let mut fisher = vec![0.0f32; core.params.num_scalars()];
    if samples.is_empty() {
        return fisher;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let take: Vec<refil_data::Sample> = samples.iter().take(max_samples.max(1)).cloned().collect();
    let mut batches = 0usize;
    for batch in minibatches(&take, 32, &mut rng) {
        core.params.zero_grad();
        let g = Graph::new();
        let out = core.model.forward(&g, &core.params, &batch.features, None);
        let loss = g.cross_entropy(out.logits, &batch.labels);
        g.backward(loss, &mut core.params);
        let mut off = 0usize;
        for (_, entry) in core.params.iter() {
            for (j, &gv) in entry.grad.data().iter().enumerate() {
                fisher[off + j] += gv * gv;
            }
            off += entry.grad.numel();
        }
        batches += 1;
    }
    if batches > 0 {
        let inv = 1.0 / batches as f32;
        for f in &mut fisher {
            *f *= inv;
        }
    }
    core.params.zero_grad();
    fisher
}

#[cfg(test)]
mod tests {
    use super::*;
    use refil_data::Sample;
    use refil_fed::ClientGroup;
    use refil_nn::models::BackboneConfig;

    pub(crate) fn tiny_method_config() -> MethodConfig {
        MethodConfig {
            backbone: BackboneConfig {
                in_dim: 8,
                extractor_width: 16,
                extractor_depth: 1,
                n_patches: 2,
                token_dim: 8,
                heads: 2,
                blocks: 1,
                classes: 3,
                extractor: refil_nn::models::ExtractorKind::ResidualMlp,
            },
            lr: 0.05,
            max_tasks: 3,
            ..MethodConfig::default()
        }
    }

    fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let k = i % 3;
                let features = (0..8)
                    .map(|j| {
                        let c = if j % 3 == k { 2.0 } else { -1.0 };
                        c + refil_nn::gaussian(&mut rng) * 0.3
                    })
                    .collect();
                Sample { features, label: k }
            })
            .collect()
    }

    #[test]
    fn train_local_reduces_loss() {
        let mut core = ModelCore::new(tiny_method_config());
        let samples = toy_samples(48, 1);
        let eval_loss = |core: &mut ModelCore| {
            let g = Graph::new();
            let batch = refil_data::collate(&samples.iter().collect::<Vec<_>>());
            let out = core.model.forward(&g, &core.params, &batch.features, None);
            let l = g.cross_entropy(out.logits, &batch.labels);
            g.value(l).data()[0]
        };
        let before = eval_loss(&mut core);
        let setting = TrainSetting {
            client_id: 0,
            task: 0,
            round: 0,
            group: ClientGroup::New,
            samples: &samples,
            local_epochs: 3,
            batch_size: 16,
            seed: 5,
        };
        let model = core.model.clone();
        core.train_local(
            &setting,
            |g, p, b| {
                let out = model.forward(g, p, &b.features, None);
                g.cross_entropy(out.logits, &b.labels)
            },
            |_| {},
        );
        let after = eval_loss(&mut core);
        assert!(after < before, "loss did not drop: {before} -> {after}");
    }

    #[test]
    fn quadratic_penalty_grad_matches_formula() {
        let mut core = ModelCore::new(tiny_method_config());
        let n = core.params.num_scalars();
        let anchor = vec![0.0f32; n];
        let fisher = vec![2.0f32; n];
        core.params.zero_grad();
        add_quadratic_penalty_grads(&mut core.params, &anchor, &fisher, 3.0);
        // grad_i should be 3 * 2 * theta_i.
        let theta = core.params.to_flat();
        let mut off = 0;
        for (_, e) in core.params.iter() {
            for (j, &g) in e.grad.data().iter().enumerate() {
                let expect = 6.0 * theta[off + j];
                assert!((g - expect).abs() < 1e-5, "grad {g} expect {expect}");
            }
            off += e.grad.numel();
        }
    }

    #[test]
    fn fisher_is_nonnegative_and_nonzero() {
        let mut core = ModelCore::new(tiny_method_config());
        let samples = toy_samples(32, 2);
        let fisher = estimate_fisher(&mut core, &samples, 32, 0);
        assert!(fisher.iter().all(|&f| f >= 0.0));
        assert!(fisher.iter().any(|&f| f > 0.0), "fisher all zero");
    }

    #[test]
    fn fisher_empty_data_is_zero() {
        let mut core = ModelCore::new(tiny_method_config());
        let fisher = estimate_fisher(&mut core, &[], 32, 0);
        assert!(fisher.iter().all(|&f| f == 0.0));
    }
}
