//! FedProx (Li et al., MLSys 2020): federated optimization for heterogeneous
//! networks.
//!
//! Not one of the paper's compared methods, but the canonical remedy for the
//! client drift its non-iid quantity-shift setting induces: local training
//! adds the proximal term `mu/2 * ||theta - theta_global||^2`, pulling each
//! client's update toward the broadcast model. Provided as an additional
//! library strategy and an upper/lower-bounds comparison point.

use refil_fed::{
    ClientUpdate, EvalContext, FdilStrategy, RoundContext, SessionOutput, Telemetry, TrainSetting,
    WireMessage,
};
use refil_nn::models::PromptedBackbone;
use refil_nn::Tensor;

use crate::common::{add_quadratic_penalty_grads, MethodConfig, ModelCore, PlainEvalContext};

/// Federated finetuning with a proximal term.
#[derive(Debug, Clone)]
pub struct FedProx {
    core: ModelCore,
    model: PromptedBackbone,
    mu: f32,
}

impl FedProx {
    /// Builds the strategy with proximal coefficient `mu` (typical: 0.01–1).
    pub fn new(cfg: MethodConfig, mu: f32) -> Self {
        assert!(mu >= 0.0, "mu must be non-negative");
        let core = ModelCore::new(cfg);
        let model = core.model.clone();
        Self { core, model, mu }
    }

    /// The proximal coefficient.
    pub fn mu(&self) -> f32 {
        self.mu
    }
}

struct FedProxCtx<'a> {
    strat: &'a FedProx,
    global: &'a [f32],
}

impl RoundContext for FedProxCtx<'_> {
    fn train_client(&self, setting: &TrainSetting<'_>, _telemetry: &Telemetry) -> SessionOutput {
        let mut core = self.strat.core.session(self.global);
        let model = &self.strat.model;
        let anchor = self.global;
        let ones = vec![1.0f32; self.global.len()];
        let mu = self.strat.mu;
        core.train_local(
            setting,
            |g, p, b| {
                let out = model.forward(g, p, &b.features, None);
                g.cross_entropy(out.logits, &b.labels)
            },
            |params| {
                // d/dtheta [mu/2 * ||theta - theta_g||^2] = mu (theta - theta_g):
                // the EWC penalty machinery with unit Fisher.
                if mu > 0.0 {
                    add_quadratic_penalty_grads(params, anchor, &ones, mu);
                }
            },
        );
        ClientUpdate {
            flat: core.flat(),
            weight: setting.samples.len() as f32,
        }
        .into()
    }
}

impl FdilStrategy for FedProx {
    fn name(&self) -> String {
        "FedProx".into()
    }

    fn init_global(&mut self) -> Vec<f32> {
        self.core.flat()
    }

    fn round_ctx<'a>(
        &'a self,
        _task: usize,
        _round: usize,
        global: &'a [f32],
        _broadcast: Option<&'a WireMessage>,
    ) -> Box<dyn RoundContext + 'a> {
        Box::new(FedProxCtx {
            strat: self,
            global,
        })
    }

    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
        self.core.predict_plain(global, features)
    }

    fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a> {
        Box::new(PlainEvalContext::new(&self.core, global))
    }

    fn cls_embeddings(&mut self, global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        self.core.cls_with_prompts(global, features, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_cfg, tiny_dataset, tiny_run_config};
    use refil_fed::FdilRunner;

    #[test]
    fn fedprox_runs_and_learns() {
        let ds = tiny_dataset();
        let mut strat = FedProx::new(tiny_cfg(), 0.1);
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert!(res.domain_acc[0][0] > 50.0, "{:?}", res.domain_acc);
    }

    #[test]
    fn large_mu_pins_clients_to_global() {
        let ds = tiny_dataset();
        let mut strat = FedProx::new(tiny_cfg(), 1e5);
        let global = strat.init_global();
        let setting = refil_fed::TrainSetting {
            client_id: 0,
            task: 0,
            round: 0,
            group: refil_fed::ClientGroup::New,
            samples: &ds.domains[0].train[..32],
            local_epochs: 1,
            batch_size: 16,
            seed: 1,
        };
        let update = strat.train_once(&setting, &global);
        let drift: f32 = update
            .flat
            .iter()
            .zip(&global)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(drift < 0.05, "huge mu should pin the update, drift {drift}");
    }

    #[test]
    fn zero_mu_equals_plain_finetuning_direction() {
        let ds = tiny_dataset();
        let mut prox = FedProx::new(tiny_cfg(), 0.0);
        let mut plain = crate::Finetune::new(tiny_cfg());
        let g1 = prox.init_global();
        let g2 = plain.init_global();
        assert_eq!(g1, g2, "identical init required");
        let setting = refil_fed::TrainSetting {
            client_id: 0,
            task: 0,
            round: 0,
            group: refil_fed::ClientGroup::New,
            samples: &ds.domains[0].train[..32],
            local_epochs: 1,
            batch_size: 16,
            seed: 1,
        };
        let u1 = prox.train_once(&setting, &g1);
        let u2 = plain.train_once(&setting, &g2);
        for (a, b) in u1.flat.iter().zip(&u2.flat) {
            assert!((a - b).abs() < 1e-5, "mu=0 must match finetune");
        }
    }
}
