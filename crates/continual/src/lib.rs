//! # refil-continual
//!
//! The rehearsal-free baselines the paper benchmarks RefFiL against, each
//! adapted to the federated domain-incremental setting exactly as in §4.1:
//!
//! * [`Finetune`] — plain federated finetuning (forgetting lower bound);
//! * [`FedLwf`] — Learning-without-Forgetting via knowledge distillation
//!   from the previous task's global model (temperature 2);
//! * [`FedEwc`] — Elastic Weight Consolidation with a federated diagonal
//!   Fisher estimate (lambda 300);
//! * [`FedL2p`] — Learning-to-Prompt, with the prompt pool deactivated
//!   ("FedL2P") or reactivated ("FedL2P†");
//! * [`FedDualPrompt`] — DualPrompt's G-prompt/E-prompt scheme, again with
//!   the pool deactivated or reactivated.
//!
//! Two additional reference strategies beyond the paper's comparison:
//! [`FedProx`] (proximal regularization against client drift) and
//! [`RehearsalOracle`] (episodic replay — the upper bound rehearsal-free
//! methods approximate without storing data).
//!
//! Every strategy shares one [`refil_nn::models::PromptedBackbone`] and one
//! [`MethodConfig`], so the comparison isolates the continual-learning rule.

#![warn(missing_docs)]

mod common;
mod dualprompt;
mod ewc;
mod fedprox;
mod finetune;
mod l2p;
mod lwf;
mod rehearsal;
#[cfg(test)]
pub(crate) mod testutil;

pub use common::{
    add_quadratic_penalty_grads, estimate_fisher, MethodConfig, ModelCore, PlainEvalContext,
};
pub use dualprompt::FedDualPrompt;
pub use ewc::FedEwc;
pub use fedprox::FedProx;
pub use finetune::Finetune;
pub use l2p::FedL2p;
pub use lwf::FedLwf;
pub use rehearsal::RehearsalOracle;
