//! FedLwF: Learning-without-Forgetting (Li & Hoiem, 2017) adapted to FDIL.
//!
//! At each task boundary the global model is frozen as the teacher; local
//! training adds a knowledge-distillation term that keeps the student's
//! (temperature-softened) predictions on current data close to the
//! teacher's, regularizing against forgetting without storing old data.

use refil_fed::{
    ClientUpdate, EvalContext, FdilStrategy, RoundContext, SessionOutput, Telemetry, TrainSetting,
    WireMessage,
};
use refil_nn::losses::distillation_loss;
use refil_nn::models::PromptedBackbone;
use refil_nn::{Graph, Params, Tensor};

use crate::common::{MethodConfig, ModelCore, PlainEvalContext};

/// Federated Learning-without-Forgetting.
#[derive(Debug, Clone)]
pub struct FedLwf {
    core: ModelCore,
    model: PromptedBackbone,
    /// Frozen teacher parameters (global model at the previous task's end).
    teacher: Option<Params>,
}

impl FedLwf {
    /// Builds the strategy.
    pub fn new(cfg: MethodConfig) -> Self {
        let core = ModelCore::new(cfg);
        let model = core.model.clone();
        Self {
            core,
            model,
            teacher: None,
        }
    }

    #[cfg(test)]
    fn teacher_logits(&self, features: &Tensor) -> Option<Tensor> {
        let teacher = self.teacher.as_ref()?;
        let g = Graph::new();
        let out = self.model.forward(&g, teacher, features, None);
        Some(g.value(out.logits))
    }
}

struct FedLwfCtx<'a> {
    strat: &'a FedLwf,
    global: &'a [f32],
}

impl RoundContext for FedLwfCtx<'_> {
    fn train_client(&self, setting: &TrainSetting<'_>, _telemetry: &Telemetry) -> SessionOutput {
        let mut core = self.strat.core.session(self.global);
        // Teacher logits depend on the minibatch, so the teacher parameters
        // ride along into the loss closure (shared read-only borrow).
        let model = &self.strat.model;
        let teacher = self.strat.teacher.as_ref();
        let temperature = self.strat.core.cfg.kd_temperature;
        let kd_weight = self.strat.core.cfg.kd_weight;
        core.train_local(
            setting,
            |g, p, b| {
                let out = model.forward(g, p, &b.features, None);
                let ce = g.cross_entropy(out.logits, &b.labels);
                match teacher {
                    Some(tp) => {
                        let tg = Graph::new();
                        let tout = model.forward(&tg, tp, &b.features, None);
                        let tlogits = tg.value(tout.logits);
                        let kd = distillation_loss(g, out.logits, &tlogits, temperature);
                        let kd_scaled = g.scale(kd, kd_weight);
                        g.add(ce, kd_scaled)
                    }
                    None => ce,
                }
            },
            |_| {},
        );
        ClientUpdate {
            flat: core.flat(),
            weight: setting.samples.len() as f32,
        }
        .into()
    }
}

impl FdilStrategy for FedLwf {
    fn name(&self) -> String {
        "FedLwF".into()
    }

    fn init_global(&mut self) -> Vec<f32> {
        self.core.flat()
    }

    fn on_task_start(&mut self, task: usize, global: &[f32]) {
        if task > 0 {
            // Freeze the previous task's final global model as the teacher.
            let mut teacher = self.core.params.clone();
            teacher.load_flat(global);
            self.teacher = Some(teacher);
        }
    }

    fn round_ctx<'a>(
        &'a self,
        _task: usize,
        _round: usize,
        global: &'a [f32],
        _broadcast: Option<&'a WireMessage>,
    ) -> Box<dyn RoundContext + 'a> {
        Box::new(FedLwfCtx {
            strat: self,
            global,
        })
    }

    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
        self.core.predict_plain(global, features)
    }

    fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a> {
        Box::new(PlainEvalContext::new(&self.core, global))
    }

    fn cls_embeddings(&mut self, global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        self.core.cls_with_prompts(global, features, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_cfg, tiny_dataset, tiny_run_config};
    use refil_fed::FdilRunner;

    #[test]
    fn lwf_runs_full_protocol() {
        let ds = tiny_dataset();
        let mut strat = FedLwf::new(tiny_cfg());
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert_eq!(res.domain_acc.len(), ds.num_domains());
        assert!(res.domain_acc[0][0] > 50.0, "{:?}", res.domain_acc);
    }

    #[test]
    fn teacher_is_set_after_first_task() {
        let mut strat = FedLwf::new(tiny_cfg());
        let flat = strat.init_global();
        assert!(strat.teacher.is_none());
        strat.on_task_start(0, &flat);
        assert!(strat.teacher.is_none(), "no teacher on task 0");
        strat.on_task_start(1, &flat);
        assert!(strat.teacher.is_some());
    }

    #[test]
    fn teacher_logits_match_frozen_model() {
        let mut strat = FedLwf::new(tiny_cfg());
        let flat = strat.init_global();
        strat.on_task_start(1, &flat);
        let x = Tensor::ones(&[2, 8]);
        let tl = strat.teacher_logits(&x).expect("teacher set");
        // Teacher == current global here, so logits must agree.
        strat.core.load(&flat);
        let g = Graph::new();
        let out = strat.model.forward(&g, &strat.core.params, &x, None);
        let sl = g.value(out.logits);
        for (a, b) in tl.data().iter().zip(sl.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
