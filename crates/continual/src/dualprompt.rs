//! FedDualPrompt: DualPrompt (Wang et al., ECCV 2022) adapted to FDIL.
//!
//! Two prompt kinds: a General-Prompt (G-prompt) shared by every task, and
//! Expert-Prompts (E-prompts) carrying task-specific guidance, selected at
//! inference by matching an input query against learned task keys. As in the
//! paper's comparison, the pool-deactivated variant ("FedDualPrompt") keeps a
//! single shared E-prompt; the reactivated variant ("FedDualPrompt†")
//! maintains one E-prompt per task with key matching.

use rand::rngs::StdRng;
use rand::SeedableRng;

use refil_fed::{
    ClientUpdate, DomainEvaluator, EvalContext, FdilStrategy, RoundContext, SessionOutput,
    Telemetry, TrainSetting, WireMessage,
};
use refil_nn::models::PromptedBackbone;
use refil_nn::{init, Graph, InferenceSession, ParamId, Params, Tensor, Var};

use crate::common::{MethodConfig, ModelCore};

/// Seed salt for prompt-parameter initialization ("DP" in ASCII).
const DUAL_SEED: u64 = 0x44_50;

/// Federated DualPrompt (with or without per-task expert prompts).
#[derive(Debug, Clone)]
pub struct FedDualPrompt {
    core: ModelCore,
    model: PromptedBackbone,
    g_prompt: ParamId,
    experts: Option<ExpertParams>,
    shared_e_prompt: Option<ParamId>,
    current_task: usize,
    key_loss_weight: f32,
}

#[derive(Debug, Clone, Copy)]
struct ExpertParams {
    prompts: ParamId,
    keys: ParamId,
    max_tasks: usize,
}

impl FedDualPrompt {
    /// Builds the strategy. `pool = true` gives the dagger (†) variant with
    /// per-task expert prompts and key matching.
    pub fn new(cfg: MethodConfig, pool: bool) -> Self {
        let mut core = ModelCore::new(cfg);
        let mut rng = StdRng::seed_from_u64(cfg.init_seed ^ DUAL_SEED);
        let d = cfg.backbone.token_dim;
        let g_prompt = core.params.insert(
            "dual.gprompt",
            init::prompt_normal(&[cfg.prompt_len, d], &mut rng),
            true,
        );
        let (experts, shared) = if pool {
            let prompts = core.params.insert(
                "dual.eprompts",
                init::prompt_normal(&[cfg.max_tasks * cfg.prompt_len, d], &mut rng),
                true,
            );
            let keys = core.params.insert(
                "dual.ekeys",
                init::prompt_normal(&[cfg.max_tasks, d], &mut rng),
                true,
            );
            (
                Some(ExpertParams {
                    prompts,
                    keys,
                    max_tasks: cfg.max_tasks,
                }),
                None,
            )
        } else {
            let p = core.params.insert(
                "dual.eprompt",
                init::prompt_normal(&[cfg.prompt_len, d], &mut rng),
                true,
            );
            (None, Some(p))
        };
        let model = core.model.clone();
        Self {
            core,
            model,
            g_prompt,
            experts,
            shared_e_prompt: shared,
            current_task: 0,
            key_loss_weight: 0.5,
        }
    }

    /// Whether per-task expert prompts are active (the † variant).
    pub fn pool_enabled(&self) -> bool {
        self.experts.is_some()
    }

    /// Pooled patch-token query per sample (detached, `[b, d]` rows). Built
    /// on the caller's graph: the query subgraph feeds no loss, so backward
    /// never visits it and the detachment is preserved, while tape-free
    /// evaluation can recycle its buffers with the rest of the forward plan.
    fn queries(&self, g: &Graph, params: &Params, features: &Tensor) -> Vec<Vec<f32>> {
        let (_, tokens) = self.model.tokenize(g, params, features);
        let n = self.model.config().n_patches;
        let patches = g.slice(tokens, 1, 1, n);
        let pooled = g.mean_tokens(patches);
        let d = self.model.config().token_dim;
        g.with_value(pooled, |t| {
            t.data().chunks(d).map(<[f32]>::to_vec).collect()
        })
    }

    /// Expert index per sample at inference: best task key by cosine.
    fn select_experts(&self, params: &Params, queries: &[Vec<f32>]) -> Vec<usize> {
        let experts = self.experts.expect("selection requires experts");
        let keys = params.value(experts.keys);
        let d = self.model.config().token_dim;
        queries
            .iter()
            .map(|q| {
                (0..experts.max_tasks)
                    .max_by(|&a, &b| {
                        let ka = &keys.data()[a * d..(a + 1) * d];
                        let kb = &keys.data()[b * d..(b + 1) * d];
                        refil_clustering::cosine_similarity(q, ka)
                            .total_cmp(&refil_clustering::cosine_similarity(q, kb))
                    })
                    .unwrap_or(0)
            })
            .collect()
    }

    /// `[b, g_len + e_len, d]` prompt variable. During training the current
    /// task's expert is used; at inference experts are key-selected.
    fn batch_prompts(
        &self,
        g: &Graph,
        params: &Params,
        features: &Tensor,
        train_task: Option<usize>,
    ) -> (Var, Option<(Var, Tensor)>) {
        let b = features.shape()[0];
        let plen = self.core.cfg.prompt_len;
        let d = self.model.config().token_dim;
        let gp = g.param(params, self.g_prompt);
        let gp_b = self.model.broadcast_prompts(g, gp, b);
        match (&self.experts, self.shared_e_prompt) {
            (Some(experts), _) => {
                let (expert_of, key_info) = match train_task {
                    Some(t) => {
                        let t = t.min(experts.max_tasks - 1);
                        // Key loss: pull this task's key toward the queries.
                        let queries = self.queries(g, params, features);
                        let mut qdata = Vec::with_capacity(b * d);
                        for q in &queries {
                            qdata.extend_from_slice(q);
                        }
                        let keys_var = g.param(params, experts.keys);
                        let key_rows = vec![t; b];
                        let keys_sel = g.embedding(keys_var, &key_rows);
                        (
                            vec![t; b],
                            Some((keys_sel, Tensor::from_vec(qdata, &[b, d]))),
                        )
                    }
                    None => {
                        let queries = self.queries(g, params, features);
                        (self.select_experts(params, &queries), None)
                    }
                };
                let mut rows = Vec::with_capacity(b * plen);
                for &e in &expert_of {
                    for l in 0..plen {
                        rows.push(e * plen + l);
                    }
                }
                let pool_var = g.param(params, experts.prompts);
                let gathered = g.embedding(pool_var, &rows);
                let eprompts = g.reshape(gathered, &[b, plen, d]);
                (g.concat(&[gp_b, eprompts], 1), key_info)
            }
            (None, Some(ep)) => {
                let epv = g.param(params, ep);
                let ep_b = self.model.broadcast_prompts(g, epv, b);
                (g.concat(&[gp_b, ep_b], 1), None)
            }
            _ => unreachable!("either experts or shared E-prompt is set"),
        }
    }
}

struct FedDualPromptCtx<'a> {
    strat: &'a FedDualPrompt,
    global: &'a [f32],
}

impl RoundContext for FedDualPromptCtx<'_> {
    fn train_client(&self, setting: &TrainSetting<'_>, _telemetry: &Telemetry) -> SessionOutput {
        let strat = self.strat;
        let mut core = strat.core.session(self.global);
        let task = setting.task;
        let key_w = strat.key_loss_weight;
        core.train_local(
            setting,
            |g, p, b| {
                let (prompts, key_info) = strat.batch_prompts(g, p, &b.features, Some(task));
                let out = strat.model.forward(g, p, &b.features, Some(prompts));
                let ce = g.cross_entropy(out.logits, &b.labels);
                match key_info {
                    Some((keys_sel, query_t)) => {
                        let qv = g.constant(query_t);
                        let kn = g.row_l2_normalize(keys_sel);
                        let qn = g.row_l2_normalize(qv);
                        let prod = g.mul(kn, qn);
                        let total = g.sum_all(prod);
                        let rows = g.shape(kn)[0] as f32;
                        let mean_sim = g.scale(total, 1.0 / rows);
                        let neg = g.scale(mean_sim, -key_w);
                        let shifted = g.add_scalar(neg, key_w);
                        g.add(ce, shifted)
                    }
                    None => ce,
                }
            },
            |_| {},
        );
        ClientUpdate {
            flat: core.flat(),
            weight: setting.samples.len() as f32,
        }
        .into()
    }
}

impl FdilStrategy for FedDualPrompt {
    fn name(&self) -> String {
        if self.experts.is_some() {
            "FedDualPrompt+pool".into()
        } else {
            "FedDualPrompt".into()
        }
    }

    fn init_global(&mut self) -> Vec<f32> {
        self.core.flat()
    }

    fn on_task_start(&mut self, task: usize, _global: &[f32]) {
        self.current_task = task;
    }

    fn round_ctx<'a>(
        &'a self,
        _task: usize,
        _round: usize,
        global: &'a [f32],
        _broadcast: Option<&'a WireMessage>,
    ) -> Box<dyn RoundContext + 'a> {
        Box::new(FedDualPromptCtx {
            strat: self,
            global,
        })
    }

    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
        let ctx = self.eval_ctx(global);
        let mut evaluator = ctx.evaluator();
        evaluator.predict_domain(features, 0)
    }

    fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a> {
        Box::new(DualPromptEvalContext {
            strat: self,
            params: self.core.eval_params(global),
        })
    }

    fn cls_embeddings(&mut self, global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        self.core.load(global);
        let g = Graph::new();
        let (prompts, _) = self.batch_prompts(&g, &self.core.params, features, None);
        let out = self
            .model
            .forward(&g, &self.core.params, features, Some(prompts));
        let cls = g.value(out.cls);
        let d = cls.shape()[1];
        cls.data().chunks(d).map(<[f32]>::to_vec).collect()
    }
}

/// Shared read-only eval view: the strategy (for expert selection) plus a
/// parameter snapshot under the evaluated global vector.
struct DualPromptEvalContext<'a> {
    strat: &'a FedDualPrompt,
    params: Params,
}

impl EvalContext for DualPromptEvalContext<'_> {
    fn evaluator(&self) -> Box<dyn DomainEvaluator + '_> {
        Box::new(DualPromptEvaluator {
            ctx: self,
            session: InferenceSession::new(),
        })
    }
}

struct DualPromptEvaluator<'a> {
    ctx: &'a DualPromptEvalContext<'a>,
    session: InferenceSession,
}

impl DomainEvaluator for DualPromptEvaluator<'_> {
    fn predict_domain(&mut self, features: &Tensor, _domain: usize) -> Vec<usize> {
        let (strat, params) = (self.ctx.strat, &self.ctx.params);
        self.session.forward(|g| {
            let (prompts, _) = strat.batch_prompts(g, params, features, None);
            let out = strat.model.forward(g, params, features, Some(prompts));
            g.argmax_last(out.logits)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_cfg, tiny_dataset, tiny_run_config};
    use refil_fed::FdilRunner;

    #[test]
    fn dualprompt_without_pool_runs() {
        let ds = tiny_dataset();
        let mut strat = FedDualPrompt::new(tiny_cfg(), false);
        assert!(!strat.pool_enabled());
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert!(res.domain_acc[0][0] > 50.0, "{:?}", res.domain_acc);
    }

    #[test]
    fn dualprompt_with_pool_runs() {
        let ds = tiny_dataset();
        let mut strat = FedDualPrompt::new(tiny_cfg(), true);
        assert!(strat.pool_enabled());
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert!(res.domain_acc[0][0] > 40.0, "{:?}", res.domain_acc);
    }

    #[test]
    fn expert_selection_in_range() {
        let mut strat = FedDualPrompt::new(tiny_cfg(), true);
        let flat = strat.init_global();
        strat.core.load(&flat);
        let x = Tensor::ones(&[4, 8]);
        let q = strat.queries(&Graph::new(), &strat.core.params, &x);
        let sel = strat.select_experts(&strat.core.params, &q);
        assert_eq!(sel.len(), 4);
        for &s in &sel {
            assert!(s < strat.core.cfg.max_tasks);
        }
    }

    #[test]
    fn g_and_e_prompts_both_present() {
        let strat = FedDualPrompt::new(tiny_cfg(), false);
        assert!(strat.core.params.id("dual.gprompt").is_some());
        assert!(strat.core.params.id("dual.eprompt").is_some());
        let pooled = FedDualPrompt::new(tiny_cfg(), true);
        assert!(pooled.core.params.id("dual.eprompts").is_some());
        assert!(pooled.core.params.id("dual.ekeys").is_some());
    }
}
