//! FedL2P: Learning-to-Prompt (Wang et al., CVPR 2022) adapted to FDIL.
//!
//! A pool of learnable prompts with learnable keys; each input selects its
//! top-N prompts by cosine similarity between an input query (pooled patch
//! features) and the keys, and a key-matching loss pulls selected keys toward
//! their queries. The paper evaluates two variants: the pool *deactivated*
//! ("FedL2P": one shared prompt, no selection) and *reactivated*
//! ("FedL2P†"). Both are available via [`FedL2p::new`]'s `pool` flag.

use rand::rngs::StdRng;
use rand::SeedableRng;

use refil_fed::{
    ClientUpdate, DomainEvaluator, EvalContext, FdilStrategy, RoundContext, SessionOutput,
    Telemetry, TrainSetting, WireMessage,
};
use refil_nn::models::PromptedBackbone;
use refil_nn::{init, Graph, InferenceSession, ParamId, Params, Tensor, Var};

use crate::common::{MethodConfig, ModelCore};

/// Federated Learning-to-Prompt (with or without the prompt pool).
#[derive(Debug, Clone)]
pub struct FedL2p {
    core: ModelCore,
    model: PromptedBackbone,
    pool: Option<PoolParams>,
    single_prompt: Option<ParamId>,
    key_loss_weight: f32,
}

#[derive(Debug, Clone, Copy)]
struct PoolParams {
    prompts: ParamId,
    keys: ParamId,
    pool_size: usize,
    top_n: usize,
}

impl FedL2p {
    /// Builds the strategy. `pool = true` gives the dagger (†) variant with
    /// the prompt pool reactivated.
    pub fn new(cfg: MethodConfig, pool: bool) -> Self {
        let mut core = ModelCore::new(cfg);
        // Prompt parameters are appended after the backbone so they federate
        // through the same flat vector.
        let mut rng = StdRng::seed_from_u64(cfg.init_seed ^ L2P_SEED);
        let d = cfg.backbone.token_dim;
        let (pool_params, single_prompt) = if pool {
            let prompts = core.params.insert(
                "l2p.pool",
                init::prompt_normal(&[cfg.pool_size * cfg.prompt_len, d], &mut rng),
                true,
            );
            let keys = core.params.insert(
                "l2p.keys",
                init::prompt_normal(&[cfg.pool_size, d], &mut rng),
                true,
            );
            (
                Some(PoolParams {
                    prompts,
                    keys,
                    pool_size: cfg.pool_size,
                    top_n: cfg.top_n.min(cfg.pool_size),
                }),
                None,
            )
        } else {
            let p = core.params.insert(
                "l2p.prompt",
                init::prompt_normal(&[cfg.prompt_len, d], &mut rng),
                true,
            );
            (None, Some(p))
        };
        let model = core.model.clone();
        Self {
            core,
            model,
            pool: pool_params,
            single_prompt,
            key_loss_weight: 0.5,
        }
    }

    /// Whether the prompt pool is active (the † variant).
    pub fn pool_enabled(&self) -> bool {
        self.pool.is_some()
    }

    /// Pooled patch-token query `q(x)` per sample (detached, `[b, d]` rows),
    /// mirroring L2P's frozen query function. Built on the caller's graph:
    /// the query subgraph feeds no loss, so backward never visits it and the
    /// detachment is preserved, while tape-free evaluation can recycle its
    /// buffers along with the rest of the forward plan.
    fn queries(&self, g: &Graph, params: &Params, features: &Tensor) -> Vec<Vec<f32>> {
        let (_, tokens) = self.model.tokenize(g, params, features);
        let n = self.model.config().n_patches;
        let patches = g.slice(tokens, 1, 1, n);
        let pooled = g.mean_tokens(patches); // [b, d]
        let d = self.model.config().token_dim;
        g.with_value(pooled, |t| {
            t.data().chunks(d).map(<[f32]>::to_vec).collect()
        })
    }

    /// Top-N pool indices per query row.
    fn select(&self, params: &Params, queries: &[Vec<f32>]) -> Vec<Vec<usize>> {
        let pool = self.pool.expect("select requires pool");
        let keys = params.value(pool.keys);
        let d = self.model.config().token_dim;
        queries
            .iter()
            .map(|q| {
                let mut sims: Vec<(usize, f32)> = (0..pool.pool_size)
                    .map(|m| {
                        let k = &keys.data()[m * d..(m + 1) * d];
                        (m, refil_clustering::cosine_similarity(q, k))
                    })
                    .collect();
                sims.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                sims.truncate(pool.top_n);
                sims.into_iter().map(|(m, _)| m).collect()
            })
            .collect()
    }

    /// Builds the `[b, L, d]` prompt variable for a batch (plus the key-loss
    /// ingredients when the pool is active).
    fn batch_prompts(
        &self,
        g: &Graph,
        params: &Params,
        features: &Tensor,
    ) -> (Var, Option<(Var, Tensor)>) {
        let b = features.shape()[0];
        let plen = self.core.cfg.prompt_len;
        let d = self.model.config().token_dim;
        match (&self.pool, self.single_prompt) {
            (Some(pool), _) => {
                let queries = self.queries(g, params, features);
                let selected = self.select(params, &queries);
                // Gather prompt rows per sample.
                let mut rows = Vec::with_capacity(b * pool.top_n * plen);
                let mut key_rows = Vec::with_capacity(b * pool.top_n);
                let mut query_rows = Vec::with_capacity(b * pool.top_n * d);
                for (q, sel) in queries.iter().zip(&selected) {
                    for &m in sel {
                        key_rows.push(m);
                        query_rows.extend_from_slice(q);
                        for l in 0..plen {
                            rows.push(m * plen + l);
                        }
                    }
                }
                let pool_var = g.param(params, pool.prompts);
                let gathered = g.embedding(pool_var, &rows); // [b*top_n*plen, d]
                let prompts = g.reshape(gathered, &[b, pool.top_n * plen, d]);
                let keys_var = g.param(params, pool.keys);
                let keys_sel = g.embedding(keys_var, &key_rows); // [b*top_n, d]
                let query_t = Tensor::from_vec(query_rows, &[b * pool.top_n, d]);
                (prompts, Some((keys_sel, query_t)))
            }
            (None, Some(p)) => {
                let pv = g.param(params, p);
                (self.model.broadcast_prompts(g, pv, b), None)
            }
            _ => unreachable!("either pool or single prompt is set"),
        }
    }
}

/// Seed salt for prompt-parameter initialization ("L2P" in ASCII).
const L2P_SEED: u64 = 0x4c_32_50;

struct FedL2pCtx<'a> {
    strat: &'a FedL2p,
    global: &'a [f32],
}

impl RoundContext for FedL2pCtx<'_> {
    fn train_client(&self, setting: &TrainSetting<'_>, _telemetry: &Telemetry) -> SessionOutput {
        let strat = self.strat;
        let mut core = strat.core.session(self.global);
        let key_w = strat.key_loss_weight;
        core.train_local(
            setting,
            |g, p, b| {
                let (prompts, key_info) = strat.batch_prompts(g, p, &b.features);
                let out = strat.model.forward(g, p, &b.features, Some(prompts));
                let ce = g.cross_entropy(out.logits, &b.labels);
                match key_info {
                    Some((keys_sel, query_t)) => {
                        // Pull selected keys toward their queries:
                        // loss += w * (1 - mean cosine similarity).
                        let qv = g.constant(query_t);
                        let kn = g.row_l2_normalize(keys_sel);
                        let qn = g.row_l2_normalize(qv);
                        let prod = g.mul(kn, qn);
                        let total = g.sum_all(prod);
                        let rows = g.shape(kn)[0] as f32;
                        let mean_sim = g.scale(total, 1.0 / rows);
                        let neg = g.scale(mean_sim, -key_w);
                        let shifted = g.add_scalar(neg, key_w);
                        g.add(ce, shifted)
                    }
                    None => ce,
                }
            },
            |_| {},
        );
        ClientUpdate {
            flat: core.flat(),
            weight: setting.samples.len() as f32,
        }
        .into()
    }
}

impl FdilStrategy for FedL2p {
    fn name(&self) -> String {
        if self.pool.is_some() {
            "FedL2P+pool".into()
        } else {
            "FedL2P".into()
        }
    }

    fn init_global(&mut self) -> Vec<f32> {
        self.core.flat()
    }

    fn round_ctx<'a>(
        &'a self,
        _task: usize,
        _round: usize,
        global: &'a [f32],
        _broadcast: Option<&'a WireMessage>,
    ) -> Box<dyn RoundContext + 'a> {
        Box::new(FedL2pCtx {
            strat: self,
            global,
        })
    }

    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
        let ctx = self.eval_ctx(global);
        let mut evaluator = ctx.evaluator();
        evaluator.predict_domain(features, 0)
    }

    fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a> {
        Box::new(L2pEvalContext {
            strat: self,
            params: self.core.eval_params(global),
        })
    }

    fn cls_embeddings(&mut self, global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        self.core.load(global);
        let g = Graph::new();
        let (prompts, _) = self.batch_prompts(&g, &self.core.params, features);
        let out = self
            .model
            .forward(&g, &self.core.params, features, Some(prompts));
        let cls = g.value(out.cls);
        let d = cls.shape()[1];
        cls.data().chunks(d).map(<[f32]>::to_vec).collect()
    }
}

/// Shared read-only eval view: the strategy (for prompt-pool metadata and
/// selection) plus a parameter snapshot under the evaluated global vector.
struct L2pEvalContext<'a> {
    strat: &'a FedL2p,
    params: Params,
}

impl EvalContext for L2pEvalContext<'_> {
    fn evaluator(&self) -> Box<dyn DomainEvaluator + '_> {
        Box::new(L2pEvaluator {
            ctx: self,
            session: InferenceSession::new(),
        })
    }
}

struct L2pEvaluator<'a> {
    ctx: &'a L2pEvalContext<'a>,
    session: InferenceSession,
}

impl DomainEvaluator for L2pEvaluator<'_> {
    fn predict_domain(&mut self, features: &Tensor, _domain: usize) -> Vec<usize> {
        let (strat, params) = (self.ctx.strat, &self.ctx.params);
        self.session.forward(|g| {
            let (prompts, _) = strat.batch_prompts(g, params, features);
            let out = strat.model.forward(g, params, features, Some(prompts));
            g.argmax_last(out.logits)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_cfg, tiny_dataset, tiny_run_config};
    use refil_fed::FdilRunner;

    #[test]
    fn l2p_without_pool_runs() {
        let ds = tiny_dataset();
        let mut strat = FedL2p::new(tiny_cfg(), false);
        assert!(!strat.pool_enabled());
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert!(res.domain_acc[0][0] > 50.0, "{:?}", res.domain_acc);
    }

    #[test]
    fn l2p_with_pool_runs() {
        let ds = tiny_dataset();
        let mut strat = FedL2p::new(tiny_cfg(), true);
        assert!(strat.pool_enabled());
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert!(res.domain_acc[0][0] > 40.0, "{:?}", res.domain_acc);
    }

    #[test]
    fn selection_returns_topn_distinct() {
        let mut strat = FedL2p::new(tiny_cfg(), true);
        let flat = strat.init_global();
        strat.core.load(&flat);
        let x = Tensor::ones(&[3, 8]);
        let q = strat.queries(&Graph::new(), &strat.core.params, &x);
        let sel = strat.select(&strat.core.params, &q);
        assert_eq!(sel.len(), 3);
        for s in &sel {
            assert_eq!(s.len(), strat.pool.unwrap().top_n);
            let mut d = s.clone();
            d.dedup();
            assert_eq!(d.len(), s.len(), "duplicate prompt selected");
        }
    }

    #[test]
    fn prompt_params_are_in_flat_vector() {
        let mut plain = FedL2p::new(tiny_cfg(), false);
        let mut pooled = FedL2p::new(tiny_cfg(), true);
        // Pool variant has strictly more parameters.
        assert!(pooled.init_global().len() > plain.init_global().len());
    }
}
