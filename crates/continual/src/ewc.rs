//! FedEWC: Elastic Weight Consolidation (Kirkpatrick et al., 2017) adapted to
//! FDIL.
//!
//! At each task boundary, clients estimate the diagonal Fisher information of
//! the global model on their local data; the server averages these into a
//! global importance vector. Subsequent local training adds the quadratic
//! penalty `lambda/2 * sum_i F_i (theta_i - theta*_i)^2` anchoring important
//! weights to the previous task's solution.

use refil_data::Sample;
use refil_fed::{
    ClientUpdate, EvalContext, FdilStrategy, RoundContext, SessionOutput, Telemetry, TrainSetting,
    WireMessage,
};
use refil_nn::models::PromptedBackbone;
use refil_nn::Tensor;

use crate::common::{
    add_quadratic_penalty_grads, estimate_fisher, MethodConfig, ModelCore, PlainEvalContext,
};

/// Federated Elastic Weight Consolidation.
#[derive(Debug, Clone)]
pub struct FedEwc {
    core: ModelCore,
    model: PromptedBackbone,
    /// Accumulated Fisher information (flat layout).
    fisher: Option<Vec<f32>>,
    /// Anchor parameters theta* (previous task's global model).
    anchor: Option<Vec<f32>>,
    /// Samples per client used for the Fisher estimate.
    fisher_samples: usize,
}

impl FedEwc {
    /// Builds the strategy.
    pub fn new(cfg: MethodConfig) -> Self {
        let core = ModelCore::new(cfg);
        let model = core.model.clone();
        Self {
            core,
            model,
            fisher: None,
            anchor: None,
            fisher_samples: 64,
        }
    }

    /// Overrides the per-client Fisher sample budget.
    pub fn with_fisher_samples(mut self, n: usize) -> Self {
        self.fisher_samples = n;
        self
    }
}

struct FedEwcCtx<'a> {
    strat: &'a FedEwc,
    global: &'a [f32],
}

impl RoundContext for FedEwcCtx<'_> {
    fn train_client(&self, setting: &TrainSetting<'_>, _telemetry: &Telemetry) -> SessionOutput {
        let mut core = self.strat.core.session(self.global);
        let model = &self.strat.model;
        let fisher = self.strat.fisher.as_deref();
        let anchor = self.strat.anchor.as_deref();
        let lambda = self.strat.core.cfg.ewc_lambda;
        core.train_local(
            setting,
            |g, p, b| {
                let out = model.forward(g, p, &b.features, None);
                g.cross_entropy(out.logits, &b.labels)
            },
            |params| {
                if let (Some(f), Some(a)) = (fisher, anchor) {
                    add_quadratic_penalty_grads(params, a, f, lambda);
                }
            },
        );
        ClientUpdate {
            flat: core.flat(),
            weight: setting.samples.len() as f32,
        }
        .into()
    }
}

impl FdilStrategy for FedEwc {
    fn name(&self) -> String {
        "FedEWC".into()
    }

    fn init_global(&mut self) -> Vec<f32> {
        self.core.flat()
    }

    fn round_ctx<'a>(
        &'a self,
        _task: usize,
        _round: usize,
        global: &'a [f32],
        _broadcast: Option<&'a WireMessage>,
    ) -> Box<dyn RoundContext + 'a> {
        Box::new(FedEwcCtx {
            strat: self,
            global,
        })
    }

    fn on_task_end(&mut self, _task: usize, global: &[f32], client_data: &[(usize, Vec<Sample>)]) {
        // Server-side Fisher aggregation: mean over clients of their local
        // Fisher estimates of the *global* model.
        self.core.load(global);
        let mut acc = vec![0.0f32; self.core.params.num_scalars()];
        let mut contributors = 0usize;
        for (cid, samples) in client_data {
            if samples.is_empty() {
                continue;
            }
            let f = estimate_fisher(&mut self.core, samples, self.fisher_samples, *cid as u64);
            for (a, fv) in acc.iter_mut().zip(&f) {
                *a += fv;
            }
            contributors += 1;
        }
        if contributors == 0 {
            return;
        }
        let inv = 1.0 / contributors as f32;
        for a in &mut acc {
            *a *= inv;
        }
        // Online-EWC style accumulation over tasks.
        match &mut self.fisher {
            Some(f) => {
                for (fi, ai) in f.iter_mut().zip(&acc) {
                    *fi = 0.5 * *fi + ai;
                }
            }
            None => self.fisher = Some(acc),
        }
        self.anchor = Some(global.to_vec());
        // Fisher estimation left gradients behind; clear them.
        self.core.params.zero_grad();
    }

    fn predict(&mut self, global: &[f32], features: &Tensor) -> Vec<usize> {
        self.core.predict_plain(global, features)
    }

    fn eval_ctx<'a>(&'a self, global: &'a [f32]) -> Box<dyn EvalContext + 'a> {
        Box::new(PlainEvalContext::new(&self.core, global))
    }

    fn cls_embeddings(&mut self, global: &[f32], features: &Tensor) -> Vec<Vec<f32>> {
        self.core.cls_with_prompts(global, features, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{tiny_cfg, tiny_dataset, tiny_run_config};
    use refil_fed::FdilRunner;

    #[test]
    fn ewc_runs_and_learns() {
        let ds = tiny_dataset();
        let mut strat = FedEwc::new(tiny_cfg()).with_fisher_samples(16);
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        assert!(res.domain_acc[0][0] > 50.0, "{:?}", res.domain_acc);
        assert!(strat.fisher.is_some(), "fisher never estimated");
        assert!(strat.anchor.is_some());
    }

    #[test]
    fn penalty_anchors_parameters() {
        // With a huge lambda, parameters should barely move from the anchor.
        let mut cfg = tiny_cfg();
        cfg.ewc_lambda = 1e6;
        let ds = tiny_dataset();
        let mut strat = FedEwc::new(cfg).with_fisher_samples(16);
        let res = FdilRunner::new(tiny_run_config()).run(&ds, &mut strat);
        // Sanity: the run completes and fisher is in place.
        assert_eq!(res.domain_acc.len(), ds.num_domains());
    }
}
