//! Synthetic domain-shift generator.
//!
//! The real Digits-Five / OfficeCaltech10 / PACS / DomainNet images are not
//! available in this environment, so each dataset is replaced by a synthetic
//! analogue that preserves exactly the properties domain-incremental learning
//! exercises:
//!
//! * a label space shared by every domain (class prototypes in feature space);
//! * a per-domain *input* distribution shift (an orthogonal rotation built
//!   from Givens rotations, a translation, and domain-specific noise);
//! * controllable per-domain difficulty (noise magnitude), tuned per preset so
//!   the easy/hard ordering matches the paper's per-domain accuracies;
//! * seeded determinism.
//!
//! Because the rotation is orthogonal, the class geometry is preserved inside
//! each domain — the domain-invariant structure a good FDIL method should
//! recover — while raw feature coordinates shift substantially between
//! domains, which is what drives catastrophic forgetting in the baselines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use refil_nn::gaussian;

use crate::sample::{DomainData, FdilDataset, Sample};

/// Specification of one synthetic domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainSpec {
    /// Domain name.
    pub name: String,
    /// Total samples to generate (train + test).
    pub samples: usize,
    /// Observation noise std; larger = harder domain (lower accuracy ceiling).
    pub noise: f32,
    /// Domain-shift strength in `[0, 1]`: rotation angle scale and shift
    /// magnitude relative to the prototype scale.
    pub shift: f32,
    /// Label-collision offset, in class-index units: this domain's class `k`
    /// prototype is placed (by cyclic interpolation) where the base
    /// arrangement put class `k + collision`. A non-zero difference between
    /// two domains makes the *same input region* carry *different labels*
    /// across them — the interference that causes catastrophic forgetting.
    /// A domain-aware model can still resolve the conflict through the
    /// domain-signature subspace (see [`DatasetSpec::signature_dim`]).
    pub collision: f32,
    /// Fraction of labels randomly flipped (extra difficulty), in `[0, 1)`.
    pub label_noise: f32,
    /// Optional per-class sample counts; when set, overrides the uniform
    /// split of `samples` (used by FedDomainNet's Table 6 statistics).
    pub class_counts: Option<Vec<usize>>,
}

impl DomainSpec {
    /// Uniform-class domain spec.
    pub fn new(name: &str, samples: usize, noise: f32, shift: f32) -> Self {
        Self {
            name: name.to_string(),
            samples,
            noise,
            shift,
            collision: 0.0,
            label_noise: 0.0,
            class_counts: None,
        }
    }

    /// Sets the label-collision offset (class-index units).
    pub fn with_collision(mut self, collision: f32) -> Self {
        self.collision = collision;
        self
    }

    /// Sets the label-noise fraction.
    pub fn with_label_noise(mut self, frac: f32) -> Self {
        assert!((0.0..1.0).contains(&frac), "label noise must be in [0,1)");
        self.label_noise = frac;
        self
    }

    /// Sets explicit per-class counts (their sum replaces `samples`).
    pub fn with_class_counts(mut self, counts: Vec<usize>) -> Self {
        self.samples = counts.iter().sum();
        self.class_counts = Some(counts);
        self
    }
}

/// Specification of a whole synthetic FDIL dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Distance scale of class prototypes.
    pub proto_scale: f32,
    /// Within-class spread before domain noise.
    pub within_std: f32,
    /// Fraction of each domain reserved for the test split.
    pub test_fraction: f32,
    /// Width of the domain-signature subspace appended to every feature
    /// vector: each domain writes its own fixed signature vector there
    /// (scaled by [`DatasetSpec::signature_scale`]), giving domain-aware
    /// models the information needed to resolve cross-domain label
    /// collisions. Must be `< feature_dim`.
    pub signature_dim: usize,
    /// Magnitude of the domain signature relative to `proto_scale`.
    pub signature_scale: f32,
    /// Per-domain specs in canonical task order.
    pub domains: Vec<DomainSpec>,
}

impl DatasetSpec {
    /// Generates the dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> FdilDataset {
        assert!(self.classes >= 2, "need at least two classes");
        assert!(
            (0.0..1.0).contains(&self.test_fraction),
            "test fraction in [0,1)"
        );
        assert!(
            self.signature_dim < self.feature_dim,
            "signature must leave geometry dims"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Shared class prototype arrangement = the domain-invariant structure
        // (lives in the geometry subspace; the trailing signature_dim
        // dimensions are reserved for the per-domain signature).
        let geo_dim = self.feature_dim - self.signature_dim;
        let protos: Vec<Vec<f32>> = (0..self.classes)
            .map(|_| {
                (0..geo_dim)
                    .map(|_| gaussian(&mut rng) * self.proto_scale)
                    .collect()
            })
            .collect();

        let domains = self
            .domains
            .iter()
            .enumerate()
            .map(|(di, spec)| self.generate_domain(spec, di, &protos, &mut rng))
            .collect();

        FdilDataset {
            name: self.name.clone(),
            classes: self.classes,
            feature_dim: self.feature_dim,
            domains,
        }
    }

    /// This domain's prototype for class `k`: cyclic interpolation of the
    /// base arrangement, offset by `collision` class-index units.
    fn domain_prototype(&self, protos: &[Vec<f32>], k: usize, collision: f32) -> Vec<f32> {
        let kc = self.classes;
        let lo = (k + collision.floor() as usize) % kc;
        let hi = (lo + 1) % kc;
        let f = collision.fract();
        protos[lo]
            .iter()
            .zip(&protos[hi])
            .map(|(&a, &b)| (1.0 - f) * a + f * b)
            .collect()
    }

    fn generate_domain(
        &self,
        spec: &DomainSpec,
        domain_index: usize,
        protos: &[Vec<f32>],
        rng: &mut StdRng,
    ) -> DomainData {
        let d = self.feature_dim - self.signature_dim;
        // Domain transform: Givens rotations + translation. The first domain
        // (task 1) is kept close to the canonical frame; later domains rotate
        // further, so consecutive tasks genuinely shift.
        let strength = spec.shift;
        let rotations: Vec<(usize, usize, f32)> = (0..2 * d)
            .map(|_| {
                let i = rng.gen_range(0..d);
                let mut j = rng.gen_range(0..d);
                while j == i {
                    j = rng.gen_range(0..d);
                }
                let theta = rng.gen_range(-1.0f32..1.0) * strength * std::f32::consts::PI;
                (i, j, theta)
            })
            .collect();
        let translation: Vec<f32> = (0..d)
            .map(|_| gaussian(rng) * strength * self.proto_scale)
            .collect();
        // Fixed per-domain signature in the reserved trailing dims.
        let signature: Vec<f32> = (0..self.signature_dim)
            .map(|_| gaussian(rng) * self.signature_scale * self.proto_scale)
            .collect();
        // Pre-compute this domain's (collision-shifted) class prototypes.
        let domain_protos: Vec<Vec<f32>> = (0..self.classes)
            .map(|k| self.domain_prototype(protos, k, spec.collision))
            .collect();

        let counts: Vec<usize> = match &spec.class_counts {
            Some(c) => {
                assert_eq!(c.len(), self.classes, "class_counts length mismatch");
                c.clone()
            }
            None => {
                let base = spec.samples / self.classes;
                let extra = spec.samples % self.classes;
                (0..self.classes)
                    .map(|k| base + usize::from(k < extra))
                    .collect()
            }
        };

        let mut all = Vec::with_capacity(counts.iter().sum());
        for (k, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                let mut x: Vec<f32> = domain_protos[k]
                    .iter()
                    .map(|&p| p + gaussian(rng) * self.within_std)
                    .collect();
                for &(i, j, theta) in &rotations {
                    let (s, c) = theta.sin_cos();
                    let (xi, xj) = (x[i], x[j]);
                    x[i] = c * xi - s * xj;
                    x[j] = s * xi + c * xj;
                }
                for (xi, &t) in x.iter_mut().zip(&translation) {
                    *xi += t + gaussian(rng) * spec.noise;
                }
                // Append the domain signature. It is deliberately *weak*
                // (scaled down, heavily noised): a domain-conditioned model
                // (task-key prompts) resolves cross-domain collisions far
                // more reliably than one that must infer the domain from
                // input alone — the asymmetry prompt methods exploit.
                x.extend(
                    signature
                        .iter()
                        .map(|&s| s + gaussian(rng) * 1.5 * self.within_std),
                );
                let label = if spec.label_noise > 0.0 && rng.gen::<f32>() < spec.label_noise {
                    rng.gen_range(0..self.classes)
                } else {
                    k
                };
                all.push(Sample { features: x, label });
            }
        }
        // Deterministic shuffle, then split.
        shuffle(&mut all, rng);
        let n_test = ((all.len() as f32) * self.test_fraction).round() as usize;
        let n_test = n_test.clamp(usize::from(!all.is_empty()), all.len());
        let test = all.split_off(all.len() - n_test);
        let _ = domain_index;
        DomainData {
            name: spec.name.clone(),
            train: all,
            test,
        }
    }
}

/// Fisher–Yates shuffle with the provided RNG.
pub fn shuffle<T, R: Rng>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DatasetSpec {
        DatasetSpec {
            name: "toy".into(),
            classes: 3,
            feature_dim: 8,
            proto_scale: 2.0,
            within_std: 0.3,
            test_fraction: 0.2,
            signature_dim: 2,
            signature_scale: 0.5,
            domains: vec![
                DomainSpec::new("d0", 90, 0.1, 0.0),
                DomainSpec::new("d1", 60, 0.1, 0.5),
            ],
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec().generate(7);
        let b = spec().generate(7);
        assert_eq!(a.domains[0].train, b.domains[0].train);
        assert_eq!(a.domains[1].test, b.domains[1].test);
    }

    #[test]
    fn different_seeds_differ() {
        let a = spec().generate(7);
        let b = spec().generate(8);
        assert_ne!(a.domains[0].train, b.domains[0].train);
    }

    #[test]
    fn sizes_and_split_respected() {
        let d = spec().generate(1);
        assert_eq!(d.domains[0].len(), 90);
        assert_eq!(d.domains[1].len(), 60);
        assert_eq!(d.domains[0].test.len(), 18);
        assert_eq!(d.domains[1].test.len(), 12);
    }

    #[test]
    fn all_classes_present() {
        let d = spec().generate(3);
        for dom in &d.domains {
            let mut seen = vec![false; 3];
            for s in dom.train.iter().chain(&dom.test) {
                seen[s.label] = true;
            }
            assert!(
                seen.iter().all(|&x| x),
                "domain {} missing a class",
                dom.name
            );
        }
    }

    #[test]
    fn domain_shift_moves_class_means() {
        // The same class should sit in different places in shifted domains.
        let d = spec().generate(5);
        let mean_of = |dom: &DomainData, k: usize| -> Vec<f32> {
            let samples: Vec<&Sample> = dom.train.iter().filter(|s| s.label == k).collect();
            let mut m = vec![0.0f32; 8];
            for s in &samples {
                for (mi, &f) in m.iter_mut().zip(&s.features) {
                    *mi += f;
                }
            }
            for mi in &mut m {
                *mi /= samples.len() as f32;
            }
            m
        };
        let m0 = mean_of(&d.domains[0], 0);
        let m1 = mean_of(&d.domains[1], 0);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "domains did not shift: distance {dist}");
    }

    #[test]
    fn class_counts_override() {
        let mut s = spec();
        s.domains[0] = DomainSpec::new("d0", 0, 0.1, 0.0).with_class_counts(vec![10, 20, 30]);
        let d = s.generate(1);
        assert_eq!(d.domains[0].len(), 60);
        let count_k = |k: usize| {
            d.domains[0]
                .train
                .iter()
                .chain(&d.domains[0].test)
                .filter(|x| x.label == k)
                .count()
        };
        assert_eq!(count_k(0), 10);
        assert_eq!(count_k(2), 30);
    }

    #[test]
    fn label_noise_flips_some_labels() {
        let mut s = spec();
        s.domains[0].label_noise = 0.5;
        let clean = spec().generate(11);
        let noisy = s.generate(11);
        // Same seed/geometry, so compare label disagreement rates.
        let flips = clean.domains[0]
            .train
            .iter()
            .zip(&noisy.domains[0].train)
            .filter(|(a, b)| a.label != b.label)
            .count();
        assert!(flips > 0, "label noise had no effect");
    }
}
