//! # refil-data
//!
//! Synthetic domain-incremental datasets for the RefFiL reproduction.
//!
//! The paper evaluates on Digits-Five, OfficeCaltech10, PACS and a DomainNet
//! subset ("FedDomainNet"). Those image corpora are unavailable here, so this
//! crate generates structure-preserving synthetic analogues: shared class
//! prototypes observed under per-domain orthogonal rotations, shifts and
//! noise (see [`synth`] for the substitution rationale), plus the paper's
//! quantity-shift non-iid client partitioning.
//!
//! # Examples
//!
//! ```
//! use refil_data::{digits_five, PresetConfig};
//!
//! let dataset = digits_five(PresetConfig::small()).generate(42);
//! assert_eq!(dataset.num_domains(), 5);
//! assert_eq!(dataset.classes, 10);
//! ```

#![warn(missing_docs)]

mod batch;
pub mod loader;
mod partition;
mod presets;
#[cfg(test)]
mod proptests;
mod sample;
pub mod synth;

pub use batch::{collate, minibatches, Batch};
pub use partition::{partition_quantity_shift, QuantityShift};
pub use presets::{
    digits_five, fed_domain_net, office_caltech10, pacs, PresetConfig, DIGITS_FIVE_NEW_ORDER,
    FED_DOMAIN_NET_CLASSES, FED_DOMAIN_NET_COUNTS, FED_DOMAIN_NET_DOMAINS,
    FED_DOMAIN_NET_NEW_ORDER, OFFICE_CALTECH10_NEW_ORDER, PACS_NEW_ORDER,
};
pub use sample::{DomainData, FdilDataset, Sample};
pub use synth::{DatasetSpec, DomainSpec};
