//! Loading real feature data from CSV files.
//!
//! The synthetic generators drive the reproduction, but a downstream user
//! with actual per-domain feature dumps (e.g. embeddings extracted from the
//! real Digits-Five images) can load them here and run the identical
//! pipeline. Format: one sample per line, `label,f0,f1,...,fD-1`; lines
//! starting with `#` and blank lines are ignored. An optional header line is
//! skipped automatically when its first field is not an integer.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::sample::{DomainData, FdilDataset, Sample};
use crate::synth::shuffle;

/// Errors produced by the CSV loader.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number, message).
    Parse(usize, String),
    /// File-level structural problem.
    Structure(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "csv i/o failed: {e}"),
            Self::Parse(line, msg) => write!(f, "csv line {line}: {msg}"),
            Self::Structure(msg) => write!(f, "csv structure: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parses CSV text into samples.
///
/// # Errors
///
/// Returns [`LoadError::Parse`] for malformed lines and
/// [`LoadError::Structure`] for inconsistent widths or an empty file.
pub fn parse_csv_samples(text: &str) -> Result<Vec<Sample>, LoadError> {
    let mut samples = Vec::new();
    let mut width: Option<usize> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let first = fields.next().unwrap_or("").trim();
        let label: usize = match first.parse() {
            Ok(l) => l,
            Err(_) if samples.is_empty() && i == 0 => continue, // header line
            Err(_) => {
                return Err(LoadError::Parse(i + 1, format!("bad label {first:?}")));
            }
        };
        let features: Result<Vec<f32>, _> = fields
            .map(|f| {
                f.trim()
                    .parse::<f32>()
                    .map_err(|_| LoadError::Parse(i + 1, format!("bad feature {f:?}")))
            })
            .collect();
        let features = features?;
        if features.is_empty() {
            return Err(LoadError::Parse(i + 1, "no features".into()));
        }
        match width {
            None => width = Some(features.len()),
            Some(w) if w != features.len() => {
                return Err(LoadError::Structure(format!(
                    "line {}: width {} != first width {w}",
                    i + 1,
                    features.len()
                )));
            }
            _ => {}
        }
        samples.push(Sample { features, label });
    }
    if samples.is_empty() {
        return Err(LoadError::Structure("no samples in file".into()));
    }
    Ok(samples)
}

/// Loads one domain from a CSV file, splitting into train/test.
///
/// # Errors
///
/// Propagates I/O and parse failures; `test_fraction` must be in `[0, 1)`.
pub fn load_csv_domain(
    path: &Path,
    name: &str,
    test_fraction: f32,
    seed: u64,
) -> Result<DomainData, LoadError> {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction in [0,1)"
    );
    let text = fs::read_to_string(path)?;
    let mut samples = parse_csv_samples(&text)?;
    let mut rng = StdRng::seed_from_u64(seed);
    shuffle(&mut samples, &mut rng);
    let n_test = (((samples.len() as f32) * test_fraction).round() as usize)
        .clamp(1, samples.len().saturating_sub(1).max(1));
    let test = samples.split_off(samples.len() - n_test);
    Ok(DomainData {
        name: name.to_string(),
        train: samples,
        test,
    })
}

/// Assembles an [`FdilDataset`] from per-domain CSV files (in task order).
///
/// # Errors
///
/// Fails if any file fails to load, widths differ across domains, or a label
/// exceeds `classes`.
pub fn load_csv_dataset(
    name: &str,
    classes: usize,
    domain_files: &[(String, std::path::PathBuf)],
    test_fraction: f32,
    seed: u64,
) -> Result<FdilDataset, LoadError> {
    if domain_files.is_empty() {
        return Err(LoadError::Structure("no domain files".into()));
    }
    let mut domains = Vec::with_capacity(domain_files.len());
    let mut dim: Option<usize> = None;
    for (i, (dname, path)) in domain_files.iter().enumerate() {
        let dom = load_csv_domain(path, dname, test_fraction, seed ^ (i as u64 + 1))?;
        let w = dom
            .train
            .first()
            .or(dom.test.first())
            .map(|s| s.features.len())
            .unwrap_or(0);
        match dim {
            None => dim = Some(w),
            Some(d) if d != w => {
                return Err(LoadError::Structure(format!(
                    "domain {dname}: width {w} != {d}"
                )));
            }
            _ => {}
        }
        for s in dom.train.iter().chain(&dom.test) {
            if s.label >= classes {
                return Err(LoadError::Structure(format!(
                    "domain {dname}: label {} >= classes {classes}",
                    s.label
                )));
            }
        }
        domains.push(dom);
    }
    Ok(FdilDataset {
        name: name.to_string(),
        classes,
        feature_dim: dim.unwrap_or(0),
        domains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_csv(name: &str, contents: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("refil-csv-{name}-{}.csv", std::process::id()));
        fs::write(&path, contents).expect("write temp csv");
        path
    }

    #[test]
    fn parses_basic_csv() {
        let s = parse_csv_samples("0,1.0,2.0\n1,3.0,4.0\n").expect("parse");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].label, 0);
        assert_eq!(s[1].features, vec![3.0, 4.0]);
    }

    #[test]
    fn skips_header_comments_and_blanks() {
        let s = parse_csv_samples("label,f0\n# comment\n\n2,1.5\n").expect("parse");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].label, 2);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = parse_csv_samples("0,1.0,2.0\n1,3.0\n").expect_err("ragged");
        assert!(matches!(err, LoadError::Structure(_)), "{err}");
    }

    #[test]
    fn rejects_bad_values() {
        assert!(matches!(
            parse_csv_samples("0,abc\n"),
            Err(LoadError::Parse(1, _))
        ));
        assert!(matches!(
            parse_csv_samples("0,1.0\nx,2.0\n"),
            Err(LoadError::Parse(2, _))
        ));
        assert!(parse_csv_samples("").is_err());
    }

    #[test]
    fn load_domain_splits_train_test() {
        let path = tmp_csv(
            "dom",
            &(0..20)
                .map(|i| format!("{},{}.0,1.0\n", i % 2, i))
                .collect::<String>(),
        );
        let dom = load_csv_domain(&path, "d0", 0.25, 1).expect("load");
        assert_eq!(dom.len(), 20);
        assert_eq!(dom.test.len(), 5);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn load_dataset_checks_labels_and_widths() {
        let a = tmp_csv("a", "0,1.0,2.0\n1,3.0,4.0\n0,0.0,0.0\n1,1.0,1.0\n");
        let b = tmp_csv("b", "1,5.0,6.0\n0,7.0,8.0\n1,2.0,2.0\n0,3.0,3.0\n");
        let ds = load_csv_dataset(
            "real",
            2,
            &[("dom-a".into(), a.clone()), ("dom-b".into(), b.clone())],
            0.25,
            9,
        )
        .expect("load");
        assert_eq!(ds.num_domains(), 2);
        assert_eq!(ds.feature_dim, 2);

        // A label out of range must fail.
        let bad = tmp_csv("bad", "7,1.0,2.0\n0,0.0,1.0\n");
        let err = load_csv_dataset("x", 2, &[("d".into(), bad.clone())], 0.25, 0)
            .expect_err("label out of range");
        assert!(matches!(err, LoadError::Structure(_)));
        for p in [a, b, bad] {
            let _ = fs::remove_file(p);
        }
    }
}
