//! Synthetic analogues of the paper's four evaluation datasets.
//!
//! Each preset mirrors the real dataset's *structure* — class count, domain
//! count and names, per-domain sample counts (FedDomainNet additionally uses
//! the per-class-per-domain counts of the paper's Table 6) — while the inputs
//! themselves are synthetic domain-shifted feature vectors (see
//! [`crate::synth`]). Per-domain noise levels are chosen so the easy/hard
//! ordering matches the paper's per-domain accuracies (e.g. MNIST trivial,
//! SYN/SVHN hard; DomainNet domains uniformly hard).
//!
//! `scale` shrinks sample counts for CPU-tractable federated runs; `1.0`
//! reproduces the paper's counts.

use crate::synth::{DatasetSpec, DomainSpec};

/// Configuration shared by every preset.
#[derive(Debug, Clone, Copy)]
pub struct PresetConfig {
    /// Multiplier on the paper's sample counts (use `1.0` for full size).
    pub scale: f32,
    /// Feature dimensionality of the synthetic inputs.
    pub feature_dim: usize,
}

impl Default for PresetConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            feature_dim: 32,
        }
    }
}

impl PresetConfig {
    /// A configuration scaled for quick CPU experiments.
    pub fn small() -> Self {
        Self {
            scale: 0.02,
            feature_dim: 32,
        }
    }

    fn n(&self, paper_count: usize) -> usize {
        ((paper_count as f32 * self.scale).round() as usize).max(20)
    }
}

/// Digits-Five: 10 classes, 5 domains, 215 695 images in the paper.
///
/// Canonical task order (Table 3): MNIST, MNIST-M, USPS, SVHN, SYN.
pub fn digits_five(cfg: PresetConfig) -> DatasetSpec {
    DatasetSpec {
        name: "Digits-Five".into(),
        classes: 10,
        feature_dim: cfg.feature_dim,
        proto_scale: 2.0,
        within_std: 0.45,
        test_fraction: 0.2,
        signature_dim: 6,
        signature_scale: 0.3,
        domains: vec![
            DomainSpec::new("MNIST", cfg.n(55_000), 0.15, 0.05),
            DomainSpec::new("MNIST-M", cfg.n(55_000), 0.40, 0.30).with_collision(0.6),
            DomainSpec::new("USPS", cfg.n(7_438), 0.70, 0.60).with_collision(1.2),
            DomainSpec::new("SVHN", cfg.n(73_257), 0.95, 0.90).with_collision(1.8),
            DomainSpec::new("SYN", cfg.n(25_000), 1.15, 1.20)
                .with_collision(2.4)
                .with_label_noise(0.05),
        ],
    }
}

/// Task order used in the paper's "new domain order" runs (Table 4),
/// as indices into the canonical Digits-Five order.
pub const DIGITS_FIVE_NEW_ORDER: [usize; 5] = [3, 0, 4, 2, 1]; // SVHN, MNIST, SYN, USPS, MNIST-M

/// OfficeCaltech10: 10 classes, 4 domains, 2 533 images in the paper.
///
/// Canonical task order: Amazon, Caltech, Webcam, DSLR.
pub fn office_caltech10(cfg: PresetConfig) -> DatasetSpec {
    // This dataset is tiny, so counts are used as-is unless scaled up/down.
    let n = |c: usize| ((c as f32 * cfg.scale.max(0.25)).round() as usize).max(40);
    DatasetSpec {
        name: "OfficeCaltech10".into(),
        classes: 10,
        feature_dim: cfg.feature_dim,
        proto_scale: 1.6,
        within_std: 0.8,
        test_fraction: 0.25,
        signature_dim: 6,
        signature_scale: 0.3,
        domains: vec![
            DomainSpec::new("Amazon", n(958), 0.9, 0.10).with_label_noise(0.05),
            DomainSpec::new("Caltech", n(1_123), 1.1, 0.50)
                .with_collision(0.7)
                .with_label_noise(0.08),
            DomainSpec::new("Webcam", n(295), 1.3, 0.85)
                .with_collision(1.4)
                .with_label_noise(0.10),
            DomainSpec::new("DSLR", n(157), 1.5, 1.20)
                .with_collision(2.1)
                .with_label_noise(0.12),
        ],
    }
}

/// New order for OfficeCaltech10 (Table 4): Caltech, Amazon, DSLR, Webcam.
pub const OFFICE_CALTECH10_NEW_ORDER: [usize; 4] = [1, 0, 3, 2];

/// PACS: 7 classes, 4 domains, 9 991 images in the paper.
///
/// Canonical task order: Photo, Cartoon, Sketch, Art Painting.
pub fn pacs(cfg: PresetConfig) -> DatasetSpec {
    let n = |c: usize| ((c as f32 * cfg.scale.max(0.1)).round() as usize).max(40);
    DatasetSpec {
        name: "PACS".into(),
        classes: 7,
        feature_dim: cfg.feature_dim,
        proto_scale: 1.8,
        within_std: 0.7,
        test_fraction: 0.25,
        signature_dim: 6,
        signature_scale: 0.3,
        domains: vec![
            DomainSpec::new("Photo", n(1_670), 0.7, 0.10).with_label_noise(0.04),
            DomainSpec::new("Cartoon", n(2_344), 1.0, 0.50)
                .with_collision(0.8)
                .with_label_noise(0.06),
            DomainSpec::new("Sketch", n(3_929), 1.2, 0.85)
                .with_collision(1.6)
                .with_label_noise(0.08),
            DomainSpec::new("ArtPainting", n(2_048), 1.35, 1.20)
                .with_collision(2.4)
                .with_label_noise(0.10),
        ],
    }
}

/// New order for PACS (Table 4): Cartoon, Photo, Sketch, Art Painting.
pub const PACS_NEW_ORDER: [usize; 4] = [1, 0, 2, 3];

/// Canonical FedDomainNet domain short names in task order.
pub const FED_DOMAIN_NET_DOMAINS: [&str; 6] = [
    "Clipart",
    "Infograph",
    "Painting",
    "Quickdraw",
    "Real",
    "Sketch",
];

/// New order for FedDomainNet (Table 4):
/// Infograph, Sketch, Quickdraw, Real, Painting, Clipart.
pub const FED_DOMAIN_NET_NEW_ORDER: [usize; 6] = [1, 5, 3, 4, 2, 0];

/// The 48 FedDomainNet class names (paper Table 6).
pub const FED_DOMAIN_NET_CLASSES: [&str; 48] = [
    "teapot",
    "streetlight",
    "tiger",
    "whale",
    "stethoscope",
    "sword",
    "shoe",
    "bracelet",
    "headphones",
    "toaster",
    "golf club",
    "windmill",
    "cup",
    "map",
    "goatee",
    "eye",
    "train",
    "tractor",
    "bread",
    "ice cream",
    "sun",
    "tornado",
    "sea turtle",
    "fish",
    "guitar",
    "trombone",
    "strawberry",
    "watermelon",
    "snorkel",
    "yoga",
    "tree",
    "flower",
    "bird",
    "penguin",
    "mushroom",
    "broccoli",
    "zigzag",
    "triangle",
    "spoon",
    "hourglass",
    "sailboat",
    "submarine",
    "helicopter",
    "hot air balloon",
    "bee",
    "butterfly",
    "feather",
    "snowman",
];

/// Per-class per-domain sample counts from the paper's Table 6
/// (rows = classes in [`FED_DOMAIN_NET_CLASSES`] order; columns = domains in
/// [`FED_DOMAIN_NET_DOMAINS`] order: clp, inf, pnt, qdr, rel, skt).
pub const FED_DOMAIN_NET_COUNTS: [[usize; 6]; 48] = [
    [222, 209, 391, 500, 631, 327],
    [326, 113, 537, 500, 463, 268],
    [315, 285, 422, 500, 607, 386],
    [343, 432, 357, 500, 671, 272],
    [343, 107, 346, 500, 496, 237],
    [139, 124, 470, 500, 591, 384],
    [127, 291, 260, 500, 587, 645],
    [293, 123, 150, 500, 715, 300],
    [285, 224, 181, 500, 551, 188],
    [196, 337, 107, 500, 536, 267],
    [207, 169, 650, 500, 552, 695],
    [245, 372, 397, 500, 635, 245],
    [128, 52, 582, 500, 406, 396],
    [42, 206, 423, 500, 507, 193],
    [255, 236, 129, 500, 562, 219],
    [108, 168, 292, 500, 695, 489],
    [109, 373, 406, 500, 681, 240],
    [154, 316, 183, 500, 636, 263],
    [197, 232, 315, 500, 794, 276],
    [160, 187, 313, 500, 657, 184],
    [248, 352, 572, 500, 161, 258],
    [169, 329, 373, 500, 497, 211],
    [236, 190, 410, 500, 621, 254],
    [130, 195, 429, 500, 479, 373],
    [103, 204, 203, 500, 632, 183],
    [227, 195, 175, 500, 484, 191],
    [357, 308, 530, 500, 454, 198],
    [193, 401, 410, 500, 671, 128],
    [278, 81, 179, 500, 689, 397],
    [165, 447, 161, 500, 371, 251],
    [126, 511, 571, 500, 536, 555],
    [253, 140, 485, 500, 360, 336],
    [336, 208, 222, 500, 803, 306],
    [121, 201, 447, 500, 700, 209],
    [136, 298, 254, 500, 788, 252],
    [105, 229, 100, 500, 679, 181],
    [323, 412, 110, 500, 515, 144],
    [183, 364, 298, 500, 376, 303],
    [228, 127, 158, 500, 534, 406],
    [100, 100, 206, 500, 289, 134],
    [162, 119, 322, 500, 422, 361],
    [344, 183, 550, 500, 607, 207],
    [145, 216, 257, 500, 804, 200],
    [198, 48, 453, 500, 732, 170],
    [202, 233, 313, 500, 452, 144],
    [160, 162, 387, 500, 658, 249],
    [268, 432, 344, 500, 505, 336],
    [174, 123, 901, 500, 114, 712],
];

/// FedDomainNet: 48 classes, 6 domains, ~100 361 images in the paper,
/// with quantity skew across classes and domains per Table 6.
pub fn fed_domain_net(cfg: PresetConfig) -> DatasetSpec {
    let domain_names = FED_DOMAIN_NET_DOMAINS;
    // Per-domain difficulty: all DomainNet domains are hard (paper Avg ~28 %),
    // Quickdraw/Infograph hardest.
    let noise = [1.2f32, 1.5, 1.3, 1.6, 1.1, 1.35];
    let shift = [0.10f32, 0.35, 0.60, 0.85, 1.10, 1.30];
    let collision = [0.0f32, 0.6, 1.2, 1.8, 2.4, 3.0];
    let label_noise = [0.10f32, 0.14, 0.12, 0.16, 0.08, 0.12];
    let domains = (0..6)
        .map(|di| {
            let counts: Vec<usize> = FED_DOMAIN_NET_COUNTS
                .iter()
                .map(|row| ((row[di] as f32 * cfg.scale).round() as usize).max(2))
                .collect();
            DomainSpec::new(domain_names[di], 0, noise[di], shift[di])
                .with_collision(collision[di])
                .with_label_noise(label_noise[di])
                .with_class_counts(counts)
        })
        .collect();
    DatasetSpec {
        name: "FedDomainNet".into(),
        classes: 48,
        feature_dim: cfg.feature_dim.max(48),
        proto_scale: 1.5,
        within_std: 0.8,
        test_fraction: 0.25,
        signature_dim: 8,
        signature_scale: 0.3,
        domains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_five_structure() {
        let spec = digits_five(PresetConfig::small());
        assert_eq!(spec.classes, 10);
        assert_eq!(spec.domains.len(), 5);
        assert_eq!(spec.domains[0].name, "MNIST");
        assert_eq!(spec.domains[4].name, "SYN");
        // Difficulty ordering: MNIST easiest.
        assert!(spec.domains[0].noise < spec.domains[4].noise);
    }

    #[test]
    fn full_scale_counts_match_paper() {
        let spec = digits_five(PresetConfig::default());
        assert_eq!(spec.domains[0].samples, 55_000);
        assert_eq!(spec.domains[3].samples, 73_257);
        let oc = office_caltech10(PresetConfig::default());
        assert_eq!(oc.domains.iter().map(|d| d.samples).sum::<usize>(), 2_533);
        let p = pacs(PresetConfig::default());
        assert_eq!(p.domains.iter().map(|d| d.samples).sum::<usize>(), 9_991);
    }

    #[test]
    fn fed_domain_net_table6_totals() {
        // Uncleaned Table 6 column totals. The paper prints 16 729 for the
        // Painting column, but its own per-class entries sum to 16 731 (a
        // 2-sample inconsistency in the source table); we keep the per-class
        // values as printed.
        let totals: Vec<usize> = (0..6)
            .map(|di| FED_DOMAIN_NET_COUNTS.iter().map(|r| r[di]).sum())
            .collect();
        assert_eq!(totals, vec![9_864, 11_364, 16_731, 24_000, 26_906, 14_123]);
        assert_eq!(totals.iter().sum::<usize>(), 102_988);
    }

    #[test]
    fn fed_domain_net_generates_48_classes() {
        let spec = fed_domain_net(PresetConfig {
            scale: 0.02,
            feature_dim: 48,
        });
        assert_eq!(spec.classes, 48);
        assert_eq!(spec.domains.len(), 6);
        let ds = spec.generate(1);
        assert_eq!(ds.num_domains(), 6);
        let mut seen = vec![false; 48];
        for s in ds.domains[0].train.iter().chain(&ds.domains[0].test) {
            seen[s.label] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn new_orders_are_permutations() {
        let check = |o: &[usize]| {
            let mut s: Vec<usize> = o.to_vec();
            s.sort_unstable();
            assert_eq!(s, (0..o.len()).collect::<Vec<_>>());
        };
        check(&DIGITS_FIVE_NEW_ORDER);
        check(&OFFICE_CALTECH10_NEW_ORDER);
        check(&PACS_NEW_ORDER);
        check(&FED_DOMAIN_NET_NEW_ORDER);
    }

    #[test]
    fn small_config_is_tractable() {
        let spec = digits_five(PresetConfig::small());
        let total: usize = spec.domains.iter().map(|d| d.samples).sum();
        assert!(total < 6_000, "small preset too large: {total}");
    }
}
