//! Property-based tests of dataset generation and partitioning.

#![cfg(test)]

use proptest::prelude::*;

use crate::partition::{partition_quantity_shift, QuantityShift};
use crate::sample::Sample;
use crate::synth::{DatasetSpec, DomainSpec};

fn mk_samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| Sample {
            features: vec![i as f32],
            label: i % 4,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partition_conserves_every_sample(
        n in 1usize..200,
        clients in 1usize..12,
        sigma in 0.0f32..2.0,
        seed in 0u64..500,
    ) {
        let samples = mk_samples(n);
        let parts = partition_quantity_shift(
            samples.clone(),
            clients,
            QuantityShift::Lognormal(sigma),
            seed,
        );
        prop_assert_eq!(parts.len(), clients);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
        // Multiset equality on the (unique) feature values.
        let mut got: Vec<f32> = parts.iter().flatten().map(|s| s.features[0]).collect();
        got.sort_by(f32::total_cmp);
        let want: Vec<f32> = (0..n).map(|i| i as f32).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn partition_minimum_one_when_enough_samples(
        clients in 1usize..10,
        seed in 0u64..200,
    ) {
        let samples = mk_samples(clients * 3);
        let parts = partition_quantity_shift(
            samples,
            clients,
            QuantityShift::Lognormal(1.5),
            seed,
        );
        prop_assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn generated_dataset_has_declared_shape(
        classes in 2usize..6,
        per_domain in 40usize..120,
        feature_dim in 4usize..16,
        shift in 0.0f32..1.0,
        collision in 0.0f32..3.0,
        seed in 0u64..100,
    ) {
        let spec = DatasetSpec {
            name: "prop".into(),
            classes,
            feature_dim,
            proto_scale: 2.0,
            within_std: 0.4,
            test_fraction: 0.25,
            signature_dim: feature_dim / 4,
            signature_scale: 0.3,
            domains: vec![
                DomainSpec::new("a", per_domain, 0.2, 0.0),
                DomainSpec::new("b", per_domain, 0.4, shift).with_collision(collision),
            ],
        };
        let ds = spec.generate(seed);
        prop_assert_eq!(ds.classes, classes);
        prop_assert_eq!(ds.num_domains(), 2);
        for dom in &ds.domains {
            prop_assert_eq!(dom.len(), per_domain);
            prop_assert!(!dom.test.is_empty(), "no test split");
            for s in dom.train.iter().chain(&dom.test) {
                prop_assert_eq!(s.features.len(), feature_dim);
                prop_assert!(s.label < classes);
                prop_assert!(s.features.iter().all(|x| x.is_finite()));
            }
        }
    }

    #[test]
    fn reordering_preserves_content(seed in 0u64..100) {
        let spec = DatasetSpec {
            name: "ord".into(),
            classes: 3,
            feature_dim: 6,
            proto_scale: 2.0,
            within_std: 0.3,
            test_fraction: 0.2,
            signature_dim: 2,
            signature_scale: 0.3,
            domains: vec![
                DomainSpec::new("x", 30, 0.2, 0.1),
                DomainSpec::new("y", 30, 0.2, 0.3),
                DomainSpec::new("z", 30, 0.2, 0.5),
            ],
        };
        let ds = spec.generate(seed);
        let re = ds.reordered(&[2, 0, 1]);
        prop_assert_eq!(re.total_samples(), ds.total_samples());
        prop_assert_eq!(&re.domains[0].train, &ds.domains[2].train);
        prop_assert_eq!(&re.domains[1].test, &ds.domains[0].test);
    }
}
